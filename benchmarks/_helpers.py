"""Importable helpers shared by the benchmark modules.

These used to live in ``benchmarks/conftest.py``, but a top-level
``conftest.py`` is imported under the module name ``conftest`` — the same
name as ``tests/conftest.py`` — so collecting both directories in one pytest
run made ``from conftest import ...`` resolve to whichever file loaded first.
Keeping the helpers in a regular module with a unique name makes the imports
unambiguous no matter which directories a run collects.
"""

from __future__ import annotations

from typing import Dict, List


def attach_rows(benchmark, name: str, rows: List[Dict[str, object]]) -> None:
    """Attach regenerated table rows to the benchmark record (JSON-safe)."""
    safe_rows = []
    for row in rows:
        safe_rows.append({k: (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
                          for k, v in row.items()})
    benchmark.extra_info[name] = safe_rows
