"""E8 — ablation: why INBAC needs ``f`` backups and ``f`` acknowledgements.

Lemma 1 (backups) and Lemma 5 (quick acknowledgements) prove that any 2-delay
indulgent protocol must back up every vote at ``f`` processes and collect
``f`` acknowledgements — ``2fn`` messages in total.  This ablation makes the
lower bound tangible:

* it measures how many messages a (hypothetical) INBAC variant with an
  ``f - 1``-sized backup set saves on the nice path, and
* it replays the adversarial construction behind Lemma 1 against that
  weakened variant: with one backup too few, a network-failure schedule can
  show one process a complete ack while hiding it from everyone else, so the
  fast decision (commit) and the consensus-settled decision (abort) disagree.

The genuine INBAC, run under the very same schedule, stays in agreement —
which is exactly what the extra ``f``-th backup/acknowledgement buys.

Both batteries (nice-path message counts, Lemma 1 adversary replay) run as
:mod:`repro.exp` sweeps over the two protocol variants instead of hand-rolled
``Simulation`` loops.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import render_table
from repro.exp import GridSpec, run_sweep
from repro.protocols.base import logical_and
from repro.protocols.inbac import INBAC
from repro.sim.faults import DelayRule, FaultPlan


class WeakINBAC(INBAC):
    """INBAC with ``f - 1`` backups per vote: below the Lemma 1 requirement."""

    protocol_name = "INBAC-weak-backups"

    def backup_set(self):
        full = sorted(super().backup_set())
        return set(full[: max(1, self.f - 1)])

    def on_propose(self, value):
        # same schedule as INBAC, but votes go to the reduced backup set only
        self.val = 1 if value else 0
        self.vote = self.val
        for q in sorted(self.backup_set()):
            self.send(q, ("V", self.val))
        if 1 <= self.pid <= self.f + 1:
            self.set_timer(1)
        else:
            self.set_timer(2)
            self.phase = 1

    def _phase1_timeout_outsider(self):
        # fast-decide from however few acknowledgements cover all the votes
        self.phase = 2
        union = set()
        for _, c in self.collection1:
            union.update(c)
        all_votes = self._all_votes_from(union)
        if all_votes is not None and len(self.collection1) >= max(1, self.f - 1):
            self._record_branch("weak-fast-decide")
            self.decide_once(logical_and(all_votes.values()))
            return
        super()._phase1_timeout_outsider()


VARIANTS = [("INBAC (f backups)", INBAC), ("ablated (f-1 backups)", WeakINBAC)]


def measure_message_savings(n, f):
    sweep = run_sweep(GridSpec(protocols=VARIANTS, systems=[(n, f)]))
    assert not sweep.errors(), [t.error for t in sweep.errors()]
    rows = []
    for trial in sweep.trials:
        rows.append(
            {
                "variant": trial.protocol,
                "n": n,
                "f": f,
                "protocol_messages": trial.messages_main,
                "delays": trial.last_decision,
                "all_commit": "yes" if trial.all_committed else "no",
            }
        )
    return rows


def lemma1_adversary() -> FaultPlan:
    """The Lemma 1 style adversary (a pure network-failure schedule).

    The acknowledgements of backup ``P1`` reach only ``P5``; everything ``P5``
    says after it decides is delayed past every other decision.  No process
    crashes, so this is a legitimate network-failure execution in which an
    indulgent protocol must still solve NBAC.
    """
    rules = [DelayRule(src=1, dst=dst, after_time=1.0, delay=150.0) for dst in (2, 3, 4)]
    rules.append(DelayRule(src=5, after_time=2.0, delay=150.0))
    return FaultPlan(delay_rules=rules, description="Lemma 1 adversary")


def run_adversary_sweep(n=5, f=2):
    """Both variants under the very same Lemma 1 schedule, one sweep."""
    grid = GridSpec(
        protocols=VARIANTS,
        systems=[(n, f)],
        faults=[("Lemma 1 adversary", lemma1_adversary)],
        seeds=[2],
        max_time=500,
    )
    sweep = run_sweep(grid)
    assert not sweep.errors(), [t.error for t in sweep.errors()]
    weak = sweep.select(protocol="ablated (f-1 backups)")[0]
    full = sweep.select(protocol="INBAC (f backups)")[0]
    return weak, full


@pytest.mark.parametrize("n,f", [(5, 2), (8, 3)])
def test_ablation_backup_set_size(benchmark, n, f):
    rows = benchmark.pedantic(measure_message_savings, args=(n, f), rounds=2, iterations=1)
    full_messages = rows[0]["protocol_messages"]
    weak_messages = rows[1]["protocol_messages"]
    assert full_messages == 2 * f * n
    assert weak_messages < full_messages  # the ablation does save messages ...
    attach_rows(benchmark, f"ablation_n{n}_f{f}", rows)
    print()
    print(render_table(rows, title=f"E8 — backup-set ablation (n={n}, f={f})"))


def test_ablation_agreement_counter_example(benchmark):
    weak, full = benchmark.pedantic(run_adversary_sweep, rounds=1, iterations=1)
    # ... but it is unsafe: the Lemma 1 adversary makes the weakened variant
    # violate agreement, demonstrating that f backups/acks are necessary ...
    assert not weak.agreement, (
        "expected the weakened variant to violate agreement under the Lemma 1 "
        f"schedule, got decisions {weak.decisions}"
    )
    # ... while the genuine INBAC stays safe under the very same schedule
    assert full.agreement
    assert full.termination
    print()
    print("E8 — Lemma 1 adversary, ablated variant decisions:", weak.decisions)
    print("E8 — Lemma 1 adversary, genuine INBAC decisions:  ", full.decisions)
