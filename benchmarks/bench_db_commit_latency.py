"""E7 — end-to-end commit latency and message volume in the key-value store.

This is the paper's motivating scenario (Section 1): a distributed database
where the commit protocol dominates transaction latency.  The benchmark runs
the same bank-transfer workload over the partitioned store once per commit
protocol and compares commit latency (in message-delay units) and message
volume, plus a contended (Helios-style) workload that produces aborts.

Both batteries run as one :func:`repro.exp.run_sweep` each — the cluster
transaction battery is a *workload axis* of the grid, so the per-protocol
cluster runs fan out across worker processes like any other sweep.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import cluster_summary_rows, render_table
from repro.exp import GridSpec, run_sweep
from repro.workloads import bank_transfer_workload, hotspot_workload

PROTOCOLS = ["1NBAC", "2PC", "INBAC", "FasterPaxosCommit", "PaxosCommit", "3PC"]
PARTITIONS = 6


def run_shootout(workload, label):
    grid = GridSpec(
        protocols=PROTOCOLS,
        systems=[(PARTITIONS, 1)],
        workloads=[(label, workload)],
        seeds=[7],
        max_time=2000.0,
    )
    return cluster_summary_rows(run_sweep(grid))


def test_db_commit_latency_bank_transfers(benchmark):
    workload = bank_transfer_workload(
        num_transfers=12, num_partitions=PARTITIONS, seed=13
    )
    rows = benchmark.pedantic(run_shootout, args=(workload, "bank"), rounds=1, iterations=1)
    by_protocol = {r["protocol"]: r for r in rows}
    # every protocol completes the workload
    assert all(r["incomplete"] == 0 for r in rows)
    # latency ordering follows the protocols' message-delay structure
    assert by_protocol["1NBAC"]["mean_latency"] <= by_protocol["2PC"]["mean_latency"]
    assert by_protocol["2PC"]["mean_latency"] <= by_protocol["INBAC"]["mean_latency"]
    assert by_protocol["INBAC"]["mean_latency"] <= by_protocol["PaxosCommit"]["mean_latency"]
    assert by_protocol["INBAC"]["mean_latency"] <= by_protocol["3PC"]["mean_latency"]
    # 2PC moves the fewest messages, 1NBAC the most (all-to-all votes)
    assert by_protocol["2PC"]["messages"] <= min(
        by_protocol[p]["messages"] for p in ("INBAC", "PaxosCommit", "FasterPaxosCommit")
    )
    attach_rows(benchmark, "db_bank_transfers", rows)
    print()
    print(render_table(rows, title=f"E7 — bank transfers over {PARTITIONS} partitions"))


def test_db_commit_latency_contended_workload(benchmark):
    workload = hotspot_workload(
        num_transactions=24,
        num_partitions=PARTITIONS,
        inter_arrival=0.5,
        hot_keys=1,
        participants_per_txn=3,
        seed=21,
    )
    rows = benchmark.pedantic(run_shootout, args=(workload, "hotspot"), rounds=1, iterations=1)
    assert all(r["incomplete"] == 0 for r in rows)
    # contention produces aborts under every protocol (the Helios-style
    # "vote no on conflict" behaviour), and the commit/abort split is
    # identical across protocols because votes only depend on lock conflicts
    aborts = {r["protocol"]: r["aborted"] for r in rows}
    assert all(a > 0 for a in aborts.values())
    attach_rows(benchmark, "db_contended", rows)
    print()
    print(render_table(rows, title="E7 — contended (hotspot) workload"))
