"""E11 — adversarial schedule exploration across the whole protocol registry.

The paper quantifies Definition 1 over *all* admissible executions; this
battery turns that quantifier into a check.  Every registered protocol runs a
budget of explored schedules — seeded random walks over message deferrals and
crash injections, fanned out through the sweep engine's ``schedules`` axis —
and is judged against its own problem cell: a violation is a required
property failing for the execution class the schedule actually produced.

Expected outcome (and the assertions below): every protocol with a claimed
cell survives its battery with zero violations, while 2PC — the one blocking
protocol, with no cell — loses termination as soon as the walk crashes the
coordinator at the right phase boundary, and the violating schedule shrinks
to a counterexample of at most five decisions.
"""

from __future__ import annotations

from _helpers import attach_rows
from repro.analysis import render_table
from repro.explore import explore
from repro.exp import GridSpec, run_sweep
from repro.protocols.registry import all_protocols

N, F = 5, 2
BUDGET = 60


def run_batteries():
    rows = []
    reports = {}
    for name, info in sorted(all_protocols().items()):
        report = explore(
            name, n=N, f=F, budget=BUDGET, strategy="random-walk", seed=5,
            cell=info.cell, max_counterexamples=2,
        )
        reports[name] = report
        row = report.summary_row()
        row["cell"] = str(info.cell) if info.cell is not None else "-"
        rows.append(row)
    return rows, reports


def test_exploration_batteries(benchmark):
    rows, reports = benchmark.pedantic(run_batteries, rounds=1, iterations=1)
    by_protocol = {r["protocol"]: r for r in rows}

    # every protocol with a claimed cell delivers it on every explored
    # schedule — the paper's quantifier, checked rather than assumed
    for name, info in all_protocols().items():
        assert not reports[name].errors, (name, reports[name].errors[:1])
        if info.cell is not None:
            assert by_protocol[name]["violations"] == 0, by_protocol[name]

    # 2PC blocks: the walk finds the coordinator crash and shrinks it small
    assert by_protocol["2PC"]["violations"] > 0
    assert by_protocol["2PC"]["violated"] == "termination"
    assert by_protocol["2PC"]["min_counterexample"] <= 5

    attach_rows(benchmark, "exploration_batteries", rows)
    print()
    print(render_table(
        rows,
        title=f"E11 — schedule-exploration batteries "
              f"(n={N}, f={F}, {BUDGET} schedules each)",
    ))


def run_cluster_batteries():
    """E12 — the cluster-invariant battery: every commit protocol embedded in
    the db cluster survives crash-point enumeration over all partitions and
    the client coordinator with zero atomicity/durability/lock-safety
    violations."""
    rows = []
    reports = {}
    for name in ("2PC", "INBAC", "PaxosCommit", "3PC", "1NBAC"):
        report = explore(
            name, n=3, f=1, budget=16,
            workload=("uniform3", "uniform", {"transactions": 4}),
            preset="cluster-anomaly", max_time=150.0,
        )
        reports[name] = report
        rows.append(report.summary_row())
    return rows, reports


def test_cluster_invariant_batteries(benchmark):
    rows, reports = benchmark.pedantic(run_cluster_batteries, rounds=1, iterations=1)
    for name, report in reports.items():
        assert not report.errors, (name, report.errors[:1])
        assert report.violation_count == 0, (
            name, [v.describe() for v in report.violations],
        )
        assert report.meta["preset"] == "cluster-anomaly"

    attach_rows(benchmark, "cluster_invariant_batteries", rows)
    print()
    print(render_table(
        rows,
        title="E12 — cluster-invariant batteries "
              "(3 partitions + client, crash-point enumeration)",
    ))


def sweep_exploration_axis():
    """Violation counts folded in aggregate mode over the schedules axis."""
    agg = run_sweep(
        GridSpec(
            protocols=["2PC", "INBAC", "PaxosCommit"],
            systems=[(N, F)],
            schedules=[
                ("timestamp-order", "timestamp-order", {}),
                ("random-walk", "random-walk", {"crash_prob": 0.08}),
                ("delay-reorder", "delay-reorder", {"k": 3}),
            ],
            seeds=range(40),
        ),
        mode="aggregate",
    )
    assert agg.error_count == 0, agg.sample_errors
    return agg.aggregate_rows()


def test_exploration_axis_aggregates(benchmark):
    rows = benchmark.pedantic(sweep_exploration_axis, rounds=1, iterations=1)
    by_cell = {(r["protocol"], r["schedule"]): r for r in rows}

    # the identity strategy reproduces nominal behaviour for everyone
    for protocol in ("2PC", "INBAC", "PaxosCommit"):
        assert by_cell[(protocol, "timestamp-order")]["violations"] == 0

    # the indulgent protocols absorb every explored schedule
    for schedule in ("random-walk", "delay-reorder"):
        assert by_cell[("INBAC", schedule)]["violations"] == 0
        assert by_cell[("PaxosCommit", schedule)]["violations"] == 0

    # 2PC only breaks when crashes are on the menu
    assert by_cell[("2PC", "random-walk")]["violations"] > 0
    assert by_cell[("2PC", "delay-reorder")]["violations"] == 0

    attach_rows(benchmark, "exploration_axis", rows)
    print()
    print(render_table(rows, title="E11 — exploration axis, aggregate-mode folding"))
