"""E6 — Figure 1: the INBAC state transition after 2U.

Figure 1 of the paper is the decision diagram a process runs at time 2U:

* ``f`` correct acks containing all ``n`` votes  -> decide AND(votes);
* acks present but votes missing                -> cons-propose AND / 0;
* no ack from any backup (P > f)                -> ask for more acks, wait for
  ``>= n - f`` messages, then decide or cons-propose;
* processes P1..Pf always cons-propose at 2U when they cannot decide.

The benchmark drives INBAC through a battery of executions designed to hit
every branch, reports how often each branch was taken and asserts full branch
coverage — the executable equivalent of reproducing the figure.

The battery is a :func:`repro.exp.make_cases` scenario list (votes and fault
plan vary *together*, so it is not a cross product) run through
:func:`repro.exp.run_trials`; a collector extracts each process' branch log
inside the worker, since live process objects never cross the pool boundary.
"""

from __future__ import annotations

from collections import Counter

from _helpers import attach_rows
from repro.analysis import render_table
from repro.exp import make_cases, run_trials
from repro.protocols.inbac import (
    BRANCH_ASK_HELP,
    BRANCH_CONS_AND,
    BRANCH_CONS_ZERO,
    BRANCH_CONSENSUS_DECIDE,
    BRANCH_FAST_DECIDE,
    BRANCH_HELPED_CONS_AND,
    BRANCH_HELPED_CONS_ZERO,
    BRANCH_HELPED_FAST,
    INBAC,
)
from repro.sim.faults import DelayRule, FaultPlan

N, F = 5, 2


def _is_vote_payload(payload) -> bool:
    return payload[0] == "V"


SCENARIOS = [
    ("nice execution", [1] * N, None),
    ("one no vote", [1, 1, 0, 1, 1], None),
    ("backup P1 crashes at 0", [1] * N, FaultPlan.crash(1, at=0.0)),
    ("both backups crash at 0", [1] * N, FaultPlan.crashes_at({1: 0.0, 2: 0.0})),
    (
        "acks from P1 delayed",
        [1] * N,
        FaultPlan(delay_rules=[DelayRule(src=1, after_time=0.5, delay=40.0)]),
    ),
    (
        "all acks to P4 delayed",
        [1] * N,
        FaultPlan(delay_rules=[DelayRule(dst=4, after_time=0.5, delay=40.0)]),
    ),
    (
        "votes to backups delayed",
        [1] * N,
        FaultPlan(delay_rules=[DelayRule(predicate=_is_vote_payload, delay=30.0)]),
    ),
    (
        "crash plus delayed help",
        [1] * N,
        FaultPlan.crashes_at({1: 0.0, 2: 0.0}).merged_with(
            FaultPlan.delay_messages(src=3, delay=25.0, after_time=1.5)
        ),
    ),
]


def collect_branches(trial, result):
    """Worker-side collector: pull each process' Figure 1 branch log."""
    return {
        "branches": {
            pid: list(result.process(pid).branch_history) for pid in range(1, trial.n + 1)
        }
    }


def run_all_scenarios():
    trials = make_cases(
        [
            {
                "protocol": INBAC,
                "n": N,
                "f": F,
                "votes": (label, votes),
                "fault": (label, plan),
                "seed": 3,
            }
            for label, votes, plan in SCENARIOS
        ],
        max_time=500,
    )
    sweep = run_trials(trials, collector=collect_branches)
    assert not sweep.errors(), [t.error for t in sweep.errors()]

    branch_counts = Counter()
    rows = []
    for trial in sweep.trials:
        per_scenario = Counter()
        for branches in trial.extra["branches"].values():
            for branch in branches:
                branch_counts[branch] += 1
                per_scenario[branch] += 1
        rows.append(
            {
                "scenario": trial.fault_label,
                "decisions": str(sorted(set(trial.decisions.values()))),
                "branches": ", ".join(sorted(per_scenario)),
            }
        )
    return branch_counts, rows


def test_figure1_state_transition_coverage(benchmark):
    branch_counts, rows = benchmark.pedantic(run_all_scenarios, rounds=2, iterations=1)
    # every branch of Figure 1 is exercised by the scenario battery
    required = {
        BRANCH_FAST_DECIDE,
        BRANCH_CONS_AND,
        BRANCH_CONS_ZERO,
        BRANCH_ASK_HELP,
        BRANCH_CONSENSUS_DECIDE,
    }
    missing = required - set(branch_counts)
    assert not missing, f"Figure 1 branches never taken: {missing}"
    helped = {BRANCH_HELPED_FAST, BRANCH_HELPED_CONS_AND, BRANCH_HELPED_CONS_ZERO}
    assert helped & set(branch_counts), "the ask-for-more-acks path never completed"
    # the nice execution uses only the fast branch
    assert rows[0]["branches"] == BRANCH_FAST_DECIDE

    attach_rows(benchmark, "figure1_scenarios", rows)
    summary = [{"branch": b, "times_taken": c} for b, c in sorted(branch_counts.items())]
    attach_rows(benchmark, "figure1_branch_histogram", summary)
    print()
    print(render_table(rows, title="Figure 1 — scenarios driving the INBAC state machine"))
    print()
    print(render_table(summary, title="Figure 1 — branch histogram"))
