"""E10 — large-scenario grids the sweep engine makes cheap.

The paper evaluates at small n; the ROADMAP pushes the reproduction towards
production scale.  This battery exercises the scenario axes that only became
tractable with :mod:`repro.exp` sweeps, all in streaming ``mode="aggregate"``
so memory stays bounded by the grid's cell count:

* **system scale** — n into the hundreds (message complexity grows with the
  paper's formulas, delays stay optimal);
* **f/n resilience ratio** — INBAC's 2fn-message backup cost vs the f-free
  2PC as the resilience fraction climbs;
* **heavy-tailed delays** — ``LognormalDelay`` axes with seed-replicated
  latency distributions (p50/p99 across hundreds of trials);
* **crash storms** — many staggered crashes right at the resilience budget;
  indulgent protocols must keep all of A/V/T.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import render_table
from repro.exp import GridSpec, named_delay, run_sweep
from repro.sim.faults import FaultPlan


def sweep_scale_grid():
    """INBAC vs 2PC vs the message-optimal protocol, n up to 200."""
    agg = run_sweep(
        GridSpec(
            protocols=["INBAC", "2PC", "(2n-2+f)NBAC"],
            systems=[(50, 5), (100, 5), (200, 5)],
            # the chain protocol's nice execution takes ~2n delay bounds, so
            # n=200 needs head-room well past the default 500
            max_time=1000,
        ),
        mode="aggregate",
    )
    assert agg.error_count == 0, agg.sample_errors
    return agg.aggregate_rows()


def test_scale_to_hundreds_of_processes(benchmark):
    rows = benchmark.pedantic(sweep_scale_grid, rounds=1, iterations=1)
    by_cell = {(r["protocol"], r["n"]): r for r in rows}
    for n in (50, 100, 200):
        # the paper's formulas keep holding at two orders of magnitude
        # beyond its own tables: 2fn for INBAC, 2n-2+f for the msg-optimal
        assert by_cell[("INBAC", n)]["mean_messages"] == 2 * 5 * n
        assert by_cell[("(2n-2+f)NBAC", n)]["mean_messages"] == 2 * n - 2 + 5
        assert by_cell[("INBAC", n)]["mean_delays"] == 2.0
        assert by_cell[("INBAC", n)]["properties"] == "AVT"
    attach_rows(benchmark, "scale_hundreds", rows)
    print()
    print(render_table(rows, title="E10 — scale grid (n up to 200, f=5)"))


def sweep_resilience_ratio():
    """f/n from 1/30 to 29/30 at fixed n: the cost of resilience."""
    agg = run_sweep(
        GridSpec(
            protocols=["INBAC", "2PC"],
            systems=[(30, f) for f in (1, 3, 7, 15, 29)],
            max_time=400,
        ),
        mode="aggregate",
    )
    assert agg.error_count == 0, agg.sample_errors
    return agg.aggregate_rows()


def test_resilience_ratio_sweep(benchmark):
    rows = benchmark.pedantic(sweep_resilience_ratio, rounds=1, iterations=1)
    inbac = sorted(
        (r for r in rows if r["protocol"] == "INBAC"), key=lambda r: r["f"]
    )
    two_pc = sorted(
        (r for r in rows if r["protocol"] == "2PC"), key=lambda r: r["f"]
    )
    # INBAC pays 2fn messages: strictly increasing in f, always 2 delays
    messages = [r["mean_messages"] for r in inbac]
    assert messages == sorted(messages) and len(set(messages)) == len(messages)
    assert all(r["mean_messages"] == 2 * r["f"] * 30 for r in inbac)
    assert all(r["mean_delays"] == 2.0 for r in inbac)
    # 2PC is blind to f: same cost at every resilience level
    assert len({r["mean_messages"] for r in two_pc}) == 1
    attach_rows(benchmark, "resilience_ratio", rows)
    print()
    print(render_table(rows, title="E10 — f/n resilience ratio sweep (n=30)"))


def sweep_lognormal_latency():
    """Seed-replicated latency distributions under heavy-tailed delays."""
    agg = run_sweep(
        GridSpec(
            protocols=["2PC", "INBAC", "PaxosCommit"],
            systems=[(8, 2)],
            delays=[named_delay("lognormal", label="lognormal", median=0.3, sigma=0.6, u=1.0)],
            seeds=range(200),
            max_time=400,
        ),
        mode="aggregate",
    )
    assert agg.error_count == 0, agg.sample_errors
    return agg.aggregate_rows()


def test_lognormal_delay_distributions(benchmark):
    rows = benchmark.pedantic(sweep_lognormal_latency, rounds=1, iterations=1)
    by_protocol = {r["protocol"]: r for r in rows}
    for row in rows:
        assert row["trials"] == 200
        assert row["properties"] == "AVT"
        assert row["p50_latency"] <= row["p99_latency"]
    # 2PC's chain commits faster than the bound when delays run below it;
    # its decisions stay within the 2U the synchronous analysis allows
    assert by_protocol["2PC"]["p99_latency"] <= 2.0
    # INBAC outsiders decide at their 2U timer regardless of how fast the
    # network runs, so the heavy tail never pushes p99 past the bound either
    assert by_protocol["INBAC"]["p99_latency"] <= 2.0
    attach_rows(benchmark, "lognormal_latency", rows)
    print()
    print(render_table(rows, title="E10 — lognormal delay sweep (200 seeds, n=8, f=2)"))


def crash_storm(width: int, n: int = 20):
    """``width`` staggered crashes in the first two delay bounds.

    The storm takes out the *highest* pids: the paper's protocols anchor
    their special roles (INBAC's backups, the consensus leaders) on the low
    pids, and a plan that crashes all of P1..Pf is outside what any of them
    — or the lower bounds — promise to survive.
    """
    return FaultPlan.crashes_at(
        {pid: 0.5 * (pid % 4) for pid in range(n - width + 1, n + 1)}
    )


def sweep_crash_storms():
    # f = 9 < n/2: the embedded consensus modules need a live majority to
    # terminate, so the resilience budget for indulgent protocols tops out
    # just below half the system — exactly the classic consensus bound
    agg = run_sweep(
        GridSpec(
            protocols=["INBAC", "PaxosCommit", "FasterPaxosCommit", "(2n-2+f)NBAC"],
            systems=[(20, 9)],
            faults=[
                ("storm-4", crash_storm(4)),
                ("storm-7", crash_storm(7)),
                ("storm-9", crash_storm(9)),
            ],
            seeds=[0, 1],
            max_time=400,
        ),
        mode="aggregate",
    )
    assert agg.error_count == 0, agg.sample_errors
    return agg


def test_crash_storms_at_resilience_budget(benchmark):
    agg = benchmark.pedantic(sweep_crash_storms, rounds=1, iterations=1)
    rows = agg.aggregate_rows()
    # every storm is a legitimate crash-failure execution (9 = f crashes at
    # most), so all four indulgent/synchronous protocols must keep A/V/T
    for row in rows:
        assert row["class"] == "crash-failure"
        assert row["properties"] == "AVT", row
    robustness = {r["protocol"]: r for r in agg.robustness_rows()}
    assert all(r["crash-failure"] == "AVT" for r in robustness.values())
    attach_rows(benchmark, "crash_storms", rows)
    print()
    print(render_table(rows, title="E10 — crash storms at the resilience budget (n=20, f=9)"))
