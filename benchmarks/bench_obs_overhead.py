"""Observability overhead benchmark: watching must be (almost) free.

Measures aggregate-mode sweep throughput at n in {20, 100} across three
observation levels:

* ``off`` — ``run_sweep`` with no progress callback, the baseline every
  other variant is compared against.  This is the exact code path an
  unobserved sweep takes (the engine never imports ``repro.obs`` when
  ``progress is None``).
* ``metrics`` — a :class:`~repro.obs.MetricsProgressReporter`: counters and
  gauges only, the cheapest consumer.  The acceptance bar lives here:
  metrics-on throughput must stay within ``MAX_METRICS_OVERHEAD`` of off.
* ``events+jsonl`` — a :class:`~repro.obs.JsonlProgressReporter`: every
  progress event serialised to a JSON line, the full event-tracing variant.
  Reported, not gated — file I/O cost is allowed to show.

Every variant must produce the *same* ``SweepAggregate`` fingerprint: the
observability contract is that obs-on and obs-off runs are byte-identical,
and this benchmark re-checks it on every measured point before trusting any
rate.  Results go to ``BENCH_obs_overhead.json`` (``--out`` /
``REPRO_BENCH_OUT`` override; ``--quick`` runs the small configuration).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from typing import Dict, List, Optional

from _helpers import attach_rows
from repro.analysis import render_table
from repro.exp import GridSpec, run_sweep
from repro.obs import JsonlProgressReporter, MetricsProgressReporter

#: (n, f, trials) per measured point — same n/5 resilience ratio the
#: throughput benchmark sweeps, sized so a full battery stays under a minute
FULL_CONFIGS = ((20, 4, 150), (100, 20, 16))
QUICK_CONFIGS = ((20, 4, 40),)

#: the acceptance bar: metrics-on throughput within 5% of obs-off at n=HEADLINE_N
HEADLINE_N = 100
MAX_METRICS_OVERHEAD = 0.05

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "BENCH_obs_overhead.json")

VARIANT_LABELS = ("off", "metrics", "events+jsonl")


def grid(n: int, f: int, trials: int) -> GridSpec:
    return GridSpec(
        protocols=["INBAC"], systems=[(n, f)], seeds=range(trials), max_time=1000
    )


def _make_progress(label: str, scratch_dir: str, sequence: int):
    """A fresh progress consumer per run (reporters hold open state)."""
    if label == "off":
        return None
    if label == "metrics":
        return MetricsProgressReporter()
    if label == "events+jsonl":
        path = os.path.join(scratch_dir, f"progress-{sequence:04d}.jsonl")
        return JsonlProgressReporter(path)
    raise ValueError(f"unknown variant {label!r}")


def _measure_once(n, f, trials, workers, label, scratch_dir, sequence):
    """One timed aggregate sweep under one observation level."""
    progress = _make_progress(label, scratch_dir, sequence)
    start = time.perf_counter()
    agg = run_sweep(
        grid(n, f, trials),
        workers=workers,
        mode="aggregate",
        trace_level="counters",
        fold="chunk",
        progress=progress,
    )
    elapsed = time.perf_counter() - start
    assert agg.error_count == 0, agg.sample_errors
    return trials / elapsed, agg.aggregate_fingerprint()


def measure(n, f, trials, workers, label, scratch_dir, repeats=3):
    """Best-of-``repeats`` throughput (fingerprint identical across runs)."""
    best, fingerprint = 0.0, None
    for sequence in range(repeats):
        rate, fingerprint = _measure_once(
            n, f, trials, workers, label, scratch_dir, sequence
        )
        best = max(best, rate)
    return best, fingerprint


def run_battery(configs, workers: Optional[int] = 1, repeats: int = 3) -> List[Dict]:
    """Measure every observation level at every (n, f, trials) point.

    Asserts, per point, that all three variants produce byte-identical
    ``SweepAggregate`` fingerprints — observation must never change bytes.
    """
    rows: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_obs_") as scratch_dir:
        for n, f, trials in configs:
            rates: Dict[str, float] = {}
            fingerprints: Dict[str, str] = {}
            for label in VARIANT_LABELS:
                rates[label], fingerprints[label] = measure(
                    n, f, trials, workers, label, scratch_dir, repeats=repeats
                )
            distinct = set(fingerprints.values())
            assert len(distinct) == 1, (
                f"fingerprints diverged across observation levels at n={n}: "
                f"{fingerprints}"
            )
            rows.append(
                {
                    "n": n,
                    "f": f,
                    "trials": trials,
                    **{f"{label} t/s": round(rate, 1) for label, rate in rates.items()},
                    "metrics overhead %": round(
                        100.0 * (1.0 - rates["metrics"] / rates["off"]), 2
                    ),
                    "events overhead %": round(
                        100.0 * (1.0 - rates["events+jsonl"] / rates["off"]), 2
                    ),
                    "fingerprint": next(iter(distinct))[:16],
                }
            )
    return rows


def write_baseline(rows: List[Dict], out_path: str, workers, quick: bool) -> Dict:
    headline = next((r for r in rows if r["n"] == HEADLINE_N), rows[-1])
    baseline = {
        "benchmark": "obs_overhead",
        "quick": quick,
        "workers": workers,
        "headline": {
            "n": headline["n"],
            "metrics_overhead_pct": headline["metrics overhead %"],
            "max_allowed_pct": 100.0 * MAX_METRICS_OVERHEAD,
        },
        "configs": rows,
    }
    with open(out_path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def test_obs_overhead(benchmark):
    rows = benchmark.pedantic(
        lambda: run_battery(FULL_CONFIGS, workers=1), rounds=1, iterations=1
    )
    out_path = os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    baseline = write_baseline(rows, out_path, workers=1, quick=False)
    attach_rows(benchmark, "obs_overhead", rows)
    print()
    print(render_table(rows, title="Observability overhead (trials/sec by observation level)"))
    print(f"baseline written to {out_path}")
    headline = baseline["headline"]
    assert headline["metrics_overhead_pct"] <= headline["max_allowed_pct"], baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration (fingerprint checks only, "
                             "no overhead assertion)")
    parser.add_argument("--out", default=os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT),
                        help="where to write the JSON baseline")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per sweep (default: 1, serial)")
    args = parser.parse_args()

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    rows = run_battery(configs, workers=args.workers, repeats=2 if args.quick else 3)
    baseline = write_baseline(rows, args.out, workers=args.workers, quick=args.quick)
    print(render_table(rows, title="Observability overhead (trials/sec by observation level)"))
    print(f"baseline written to {args.out}")
    if not args.quick:
        headline = baseline["headline"]
        assert headline["metrics_overhead_pct"] <= headline["max_allowed_pct"], (
            f"metrics-on observation above the "
            f"{headline['max_allowed_pct']:.0f}% overhead bar: {headline}"
        )


if __name__ == "__main__":
    main()
