"""Crash-recovery benchmark: MTTR and commit-throughput dip/restore.

For every (protocol x crash point x retry policy) cell the benchmark runs a
staged multi-partition workload against a 3-partition cluster in which P2
crashes mid-run and rejoins from its write-ahead log
(``FaultPlan.crash_recover``), on BOTH backends:

* the asyncio runtime (wall clock) measures **MTTR** — the observed downtime
  between the crash and the rejoin, in units of U and in milliseconds — and
  the **commit dip/restore**: committed transactions in the pre-crash,
  outage and post-rejoin windows of the schedule (the outage window dips
  because transactions touching the crashed partition abort; the post
  window restores because the rejoined partition serves again);
* the discrete-event simulator runs the identical config as the
  deterministic oracle, pinning the committed set, the abort count and the
  exact planned downtime the wall clock must approximate.

A final determinism probe sweeps the recovery grid axes (``"rejoin"`` fault,
``"flaky-link"`` delay) through the experiment engine twice and records the
aggregate fingerprint — byte-equality across the two sweeps is asserted, so
the baseline itself witnesses that the recovery axes stay inside the
fingerprint contract (see docs/determinism.md).

Results go to ``benchmarks/BENCH_recovery.json`` (``--out`` /
``REPRO_BENCH_OUT`` override; ``--quick`` runs the small smoke grid).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from _helpers import attach_rows
from repro.analysis import render_table
from repro.db import ClusterConfig, RetryPolicy, run_cluster
from repro.db.cluster import ClusterReport
from repro.db.transaction import Operation, Transaction
from repro.exp import GridSpec, run_sweep
from repro.protocols.base import COMMIT
from repro.runtime import DEFAULT_CLUSTER_UNIT_SECONDS
from repro.sim.faults import FaultPlan
from repro.workloads.transactions import bank_transfer_workload

#: (crash_at, rejoin_at) in units, chosen so exactly one staged transaction
#: lands inside the outage window (the dip) and the rest are clear of the
#: window boundaries by several commit latencies
CRASH_POINTS: Dict[str, Tuple[float, float]] = {
    "mid-run": (20.0, 40.0),
    "late": (45.0, 65.0),
}

RETRY_POLICIES: Dict[str, Optional[RetryPolicy]] = {
    "no-retry": None,
    "retry-3x": RetryPolicy(max_attempts=3, timeout_units=15.0),
}

FULL_GRID = {
    "protocols": ("2PC", "INBAC"),
    "crash_points": ("mid-run", "late"),
    "retries": ("no-retry", "retry-3x"),
}
QUICK_GRID = {
    "protocols": ("INBAC",),
    "crash_points": ("mid-run",),
    "retries": ("no-retry", "retry-3x"),
}

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "BENCH_recovery.json")


def staged_workload() -> List[Transaction]:
    """Five two-partition transactions spread across the crash timeline."""
    return [
        Transaction.of(
            "t0",
            [Operation.write(1, "a", 10), Operation.write(2, "b", 20)],
            submit_time=0.0,
        ),
        Transaction.of(
            "t1",
            [Operation.write(2, "b", 21), Operation.write(3, "c", 30)],
            submit_time=8.0,
        ),
        # lands inside the mid-run outage: P2 is down, so it aborts
        Transaction.of(
            "t2",
            [Operation.write(1, "a", 11), Operation.write(2, "d", 40)],
            submit_time=26.0,
        ),
        # lands inside the late outage
        Transaction.of(
            "t3",
            [Operation.write(2, "b", 22), Operation.write(3, "e", 50)],
            submit_time=55.0,
        ),
        Transaction.of(
            "t4",
            [Operation.write(1, "a", 12), Operation.write(2, "f", 60)],
            submit_time=75.0,
        ),
    ]


def cell_config(
    protocol: str, crash_point: str, retry: str, seed: int
) -> ClusterConfig:
    crash_at, rejoin_at = CRASH_POINTS[crash_point]
    return ClusterConfig(
        num_partitions=3,
        commit_protocol=protocol,
        commit_f=1,
        seed=seed,
        max_time=400.0,
        fault_plan=FaultPlan.crash_recover(2, at=crash_at, rejoin_at=rejoin_at),
        retry_policy=RETRY_POLICIES[retry],
    )


def window_commits(
    report: ClusterReport, crash_at: float, rejoin_at: float
) -> Tuple[int, int, int]:
    """Committed transactions by submission window: pre / outage / post."""
    pre = during = post = 0
    for outcome in report.outcomes:
        if outcome.decision != COMMIT:
            continue
        if outcome.submit_time < crash_at:
            pre += 1
        elif outcome.submit_time < rejoin_at:
            during += 1
        else:
            post += 1
    return pre, during, post


def measure_cell(
    protocol: str, crash_point: str, retry: str, unit: float, seed: int
) -> Dict[str, object]:
    crash_at, rejoin_at = CRASH_POINTS[crash_point]

    oracle = run_cluster(
        cell_config(protocol, crash_point, retry, seed),
        staged_workload(),
        backend="sim",
    )
    start = time.perf_counter()
    measured = run_cluster(
        cell_config(protocol, crash_point, retry, seed),
        staged_workload(),
        backend="asyncio",
    )
    wall_seconds = time.perf_counter() - start

    # whether the transaction submitted into the outage window completes
    # without retry is protocol-dependent (2PC's coordinator timeout aborts
    # it; INBAC leaves it in-doubt until resubmission), but a retry policy
    # restores completeness for every protocol: the resubmission after the
    # rejoin drives the stuck transaction to a decision and releases the
    # locks that would otherwise cascade into later aborts
    for backend, report in (("sim", oracle), ("asyncio", measured)):
        if RETRY_POLICIES[retry] is not None:
            assert report.incomplete == 0, (backend, report.summary_row())
        assert report.invariants is not None and report.invariants.holds, (
            backend,
            report.invariants and report.invariants.violations,
        )
        [event] = report.recovery_events
        assert event.pid == 2 and event.rejoined_at > event.crashed_at, event
    assert measured.incomplete == oracle.incomplete, (
        measured.summary_row(), oracle.summary_row(),
    )

    committed = lambda r: {o.txn_id for o in r.outcomes if o.decision == COMMIT}
    # the oracle pins semantics: the wall clock must commit the same set
    assert committed(measured) == committed(oracle), (
        protocol,
        crash_point,
        retry,
        committed(measured),
        committed(oracle),
    )

    sim_event = oracle.recovery_events[0]
    wall_event = measured.recovery_events[0]
    pre, during, post = window_commits(measured, crash_at, rejoin_at)
    return {
        "committed": len(committed(measured)),
        "aborted": measured.aborted,
        "incomplete": measured.incomplete,
        "commits_pre": pre,
        "commits_during_outage": during,
        "commits_post_rejoin": post,
        "mttr_units_wall": wall_event.downtime,
        "mttr_ms_wall": wall_event.downtime * unit * 1000.0,
        "mttr_units_sim": sim_event.downtime,
        "replayed_at_rejoin": wall_event.replayed_transactions,
        "retries": sum(measured.retry_counts.values()),
        "sim_retries": sum(oracle.retry_counts.values()),
        "wall_seconds": wall_seconds,
    }


def recovery_fingerprint_probe(seed: int) -> str:
    """Sweep the recovery axes twice; return the (stable) fingerprint."""
    grid = lambda: GridSpec(
        protocols=["INBAC", "2PC"],
        systems=[(3, 1)],
        delays=[None, "flaky-link"],
        faults=[None, "rejoin"],
        workloads=[
            ("bank", bank_transfer_workload(
                num_transfers=4, num_partitions=3, seed=seed
            ))
        ],
        seeds=[seed],
        max_time=2000.0,
    )
    first = run_sweep(grid(), workers=1, mode="aggregate")
    second = run_sweep(grid(), workers=1, mode="aggregate")
    assert first.error_count == 0
    assert first.aggregate_fingerprint() == second.aggregate_fingerprint(), (
        "recovery-axis sweep fingerprint is not reproducible"
    )
    return first.aggregate_fingerprint()


def run_battery(
    grid: Dict[str, object],
    unit: float = DEFAULT_CLUSTER_UNIT_SECONDS,
    seed: int = 2017,
) -> List[Dict]:
    rows: List[Dict] = []
    for protocol in grid["protocols"]:
        for crash_point in grid["crash_points"]:
            for retry in grid["retries"]:
                measured = measure_cell(protocol, crash_point, retry, unit, seed)
                rows.append(
                    {
                        "protocol": protocol,
                        "crash point": crash_point,
                        "retry": retry,
                        "committed": measured["committed"],
                        "aborted": measured["aborted"],
                        "incomplete": measured["incomplete"],
                        "pre/out/post": "{}/{}/{}".format(
                            measured["commits_pre"],
                            measured["commits_during_outage"],
                            measured["commits_post_rejoin"],
                        ),
                        "MTTR U": round(measured["mttr_units_wall"], 2),
                        "MTTR ms": round(measured["mttr_ms_wall"], 1),
                        "sim MTTR U": round(measured["mttr_units_sim"], 2),
                        "replayed": measured["replayed_at_rejoin"],
                        "retries": measured["retries"],
                        "sim retries": measured["sim_retries"],
                    }
                )
    return rows


def write_baseline(
    rows: List[Dict], out_path: str, unit: float, quick: bool, seed: int
) -> Dict:
    baseline = {
        "benchmark": "recovery",
        "quick": quick,
        "unit_seconds_per_U": unit,
        "recovery_axis_fingerprint": recovery_fingerprint_probe(seed),
        "rows": rows,
    }
    with open(out_path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def test_recovery(benchmark):
    rows = benchmark.pedantic(
        lambda: run_battery(FULL_GRID), rounds=1, iterations=1
    )
    out_path = os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    write_baseline(
        rows, out_path, unit=DEFAULT_CLUSTER_UNIT_SECONDS, quick=False,
        seed=2017,
    )
    attach_rows(benchmark, "recovery", rows)
    print()
    print(render_table(rows, title="Crash recovery: MTTR and commit dip/restore"))
    print(f"baseline written to {out_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke grid")
    parser.add_argument("--out",
                        default=os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT),
                        help="where to write the JSON baseline")
    parser.add_argument("--unit", type=float,
                        default=DEFAULT_CLUSTER_UNIT_SECONDS,
                        help="wall-clock seconds per unit of simulated time U")
    args = parser.parse_args()

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_battery(grid, unit=args.unit)
    write_baseline(rows, args.out, unit=args.unit, quick=args.quick, seed=2017)
    print(render_table(rows, title="Crash recovery: MTTR and commit dip/restore"))
    print(f"baseline written to {args.out}")


if __name__ == "__main__":
    main()
