"""E9 — robustness matrix: which properties each protocol keeps under which failures.

Reproduces the qualitative bottom row of Table 5 ("Sync. NBAC" / "Blocking" /
"Indulgent") by sweeping every registered protocol through batteries of
failure-free, crash-failure and network-failure executions and recording which
of agreement / validity / termination survive each class.

The battery is one :class:`repro.exp.GridSpec` — every protocol in the
registry x eight fault plans x three vote patterns — fanned out over worker
processes by :func:`repro.exp.run_sweep`; trials are grouped back into
execution classes by the class each fault plan actually induces.  The vote
axis uses registry-named patterns (no hand-enumerated vectors): the
``one-no:3`` pattern scales with ``n``, and ``mixed:0.3`` draws a fresh
weighted vote vector per trial from the trial's derived seed.
"""

from __future__ import annotations

from _helpers import attach_rows
from repro.analysis import render_table, robustness_matrix_rows
from repro.exp import GridSpec, run_sweep
from repro.protocols.registry import all_protocols
from repro.sim.faults import DelayRule, FaultPlan

N, F = 5, 2


def _is_tuple_payload(payload) -> bool:
    return isinstance(payload, tuple)


FAULT_AXIS = [
    ("failure-free", None),
    ("crash P1@0", FaultPlan.crash(1, at=0.0)),
    ("crash P1@1", FaultPlan.crash(1, at=1.0)),
    ("crash P3@0", FaultPlan.crash(3, at=0.0)),
    ("crash P1@0+P4@1", FaultPlan.crashes_at({1: 0.0, 4: 1.0})),
    ("late from P1", FaultPlan.delay_messages(src=1, delay=40.0)),
    ("late to P5", FaultPlan.delay_messages(dst=5, delay=40.0, after_time=0.5)),
    ("late tuples from P2", FaultPlan(delay_rules=[
        DelayRule(predicate=_is_tuple_payload, delay=30.0,
                  after_time=0.5, src=2)])),
]

VOTE_AXIS = ["all-yes", "one-no:3", "mixed:0.3"]


def build_matrix():
    grid = GridSpec(
        protocols=sorted(all_protocols()),
        systems=[(N, F)],
        faults=FAULT_AXIS,
        votes=VOTE_AXIS,
        seeds=[1],
        max_time=400,
    )
    sweep = run_sweep(grid)
    assert not sweep.errors(), [t.error for t in sweep.errors()]
    return robustness_matrix_rows(sweep)


def test_robustness_matrix(benchmark):
    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    by_protocol = {r["protocol"]: r for r in rows}

    # every protocol solves NBAC in failure-free executions
    assert all(r["failure-free"] == "AVT" for r in rows)

    # indulgent protocols keep all three properties in every class
    for name in ("INBAC", "(2n-2+f)NBAC", "PaxosCommit", "FasterPaxosCommit"):
        assert by_protocol[name]["crash-failure"] == "AVT"
        assert by_protocol[name]["network-failure"] == "AVT"

    # 2PC is blocking: termination is lost as soon as the coordinator can crash
    assert "T" not in by_protocol["2PC"]["crash-failure"]
    assert "A" in by_protocol["2PC"]["crash-failure"]
    assert "V" in by_protocol["2PC"]["network-failure"]

    # the synchronous NBAC protocols keep AVT under crashes but shed
    # properties under network failures (they are not indulgent)
    assert by_protocol["1NBAC"]["crash-failure"] == "AVT"
    assert by_protocol["(n-1+f)NBAC"]["crash-failure"] == "AVT"
    assert by_protocol["(2n-2)NBAC"]["crash-failure"] == "AVT"

    # every protocol's claimed cell is at most what it actually delivered
    for name, info in all_protocols().items():
        if info.cell is None:
            continue
        delivered_cf = set(by_protocol[name]["crash-failure"])
        delivered_nf = set(by_protocol[name]["network-failure"])
        assert {p.value for p in info.cell.cf} <= delivered_cf
        assert {p.value for p in info.cell.nf} <= delivered_nf

    attach_rows(benchmark, "robustness_matrix", rows)
    print()
    print(render_table(rows, title=f"E9 — robustness matrix (n={N}, f={F})"))
