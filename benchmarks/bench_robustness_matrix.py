"""E9 — robustness matrix: which properties each protocol keeps under which failures.

Reproduces the qualitative bottom row of Table 5 ("Sync. NBAC" / "Blocking" /
"Indulgent") by running every registered protocol through batteries of
failure-free, crash-failure and network-failure executions and recording which
of agreement / validity / termination survive each class.
"""

from __future__ import annotations

import pytest

from conftest import attach_rows
from repro.analysis import render_table
from repro.core.checker import robustness_row
from repro.protocols.registry import all_protocols
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.runner import Simulation

N, F = 5, 2

PLANS = {
    "failure-free": [FaultPlan.failure_free()],
    "crash-failure": [
        FaultPlan.crash(1, at=0.0),
        FaultPlan.crash(1, at=1.0),
        FaultPlan.crash(3, at=0.0),
        FaultPlan.crashes_at({1: 0.0, 4: 1.0}),
    ],
    "network-failure": [
        FaultPlan.delay_messages(src=1, delay=40.0),
        FaultPlan.delay_messages(dst=5, delay=40.0, after_time=0.5),
        FaultPlan(delay_rules=[DelayRule(predicate=lambda p: isinstance(p, tuple), delay=30.0,
                                         after_time=0.5, src=2)]),
    ],
}

VOTES = [[1] * N, [1, 1, 0, 1, 1]]


def build_matrix():
    rows = []
    for name, info in sorted(all_protocols().items()):
        traces_by_class = {}
        for cls_name, plans in PLANS.items():
            traces = []
            for plan in plans:
                for votes in VOTES:
                    sim = Simulation(n=N, f=F, process_class=info.cls, fault_plan=plan,
                                     max_time=400, seed=1)
                    traces.append(sim.run(votes).trace)
            traces_by_class[cls_name] = traces
        held = robustness_row(traces_by_class)
        rows.append(
            {
                "protocol": name,
                "failure-free": held["failure-free"],
                "crash-failure": held["crash-failure"],
                "network-failure": held["network-failure"],
                "claimed_cell": str(info.cell) if info.cell else "-",
            }
        )
    return rows


def test_robustness_matrix(benchmark):
    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    by_protocol = {r["protocol"]: r for r in rows}

    # every protocol solves NBAC in failure-free executions
    assert all(r["failure-free"] == "AVT" for r in rows)

    # indulgent protocols keep all three properties in every class
    for name in ("INBAC", "(2n-2+f)NBAC", "PaxosCommit", "FasterPaxosCommit"):
        assert by_protocol[name]["crash-failure"] == "AVT"
        assert by_protocol[name]["network-failure"] == "AVT"

    # 2PC is blocking: termination is lost as soon as the coordinator can crash
    assert "T" not in by_protocol["2PC"]["crash-failure"]
    assert "A" in by_protocol["2PC"]["crash-failure"]
    assert "V" in by_protocol["2PC"]["network-failure"]

    # the synchronous NBAC protocols keep AVT under crashes but shed
    # properties under network failures (they are not indulgent)
    assert by_protocol["1NBAC"]["crash-failure"] == "AVT"
    assert by_protocol["(n-1+f)NBAC"]["crash-failure"] == "AVT"
    assert by_protocol["(2n-2)NBAC"]["crash-failure"] == "AVT"

    # every protocol's claimed cell is at most what it actually delivered
    for name, info in all_protocols().items():
        if info.cell is None:
            continue
        delivered_cf = set(by_protocol[name]["crash-failure"])
        delivered_nf = set(by_protocol[name]["network-failure"])
        assert {p.value for p in info.cell.cf} <= delivered_cf
        assert {p.value for p in info.cell.nf} <= delivered_nf

    attach_rows(benchmark, "robustness_matrix", rows)
    print()
    print(render_table(rows, title=f"E9 — robustness matrix (n={N}, f={F})"))
