"""Runtime-throughput benchmark: real commits on the asyncio transport.

For every (protocol x partitions x clients) point the benchmark boots an
:class:`~repro.runtime.AsyncClusterService`, splits a bank-transfer workload
across ``clients`` concurrent client coroutines (each submitting its share
sequentially, as a real session would), and measures

* wall-clock commit throughput (transactions/sec),
* p50 / p99 commit latency, both in units of U and in milliseconds,
* message volume at the transport.

Next to each runtime point the same (protocol, partitions) pair is run on the
discrete-event simulator through the experiment engine — the deterministic
oracle.  The oracle pins *semantics* (every transaction completes, the
invariant battery holds, commit latency in units is in the same regime); the
runtime side adds what the simulator cannot measure: real wall-clock numbers
under real concurrency, including lock contention between concurrent clients
that the simulator's planned workload never produces.

Results go to ``benchmarks/BENCH_runtime_throughput.json`` (``--out`` /
``REPRO_BENCH_OUT`` override; ``--quick`` runs the small smoke grid).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from typing import Dict, List, Optional, Sequence

from _helpers import attach_rows
from repro.analysis import render_table
from repro.db.cluster import ClusterConfig
from repro.exp import GridSpec, run_sweep
from repro.protocols.base import COMMIT
from repro.runtime import AsyncClusterService, DEFAULT_CLUSTER_UNIT_SECONDS
from repro.workloads.transactions import bank_transfer_workload

#: protocol x partitions x clients grids; transfers scale with the client
#: count so every client has work
FULL_GRID = {
    "protocols": ("2PC", "3PC", "INBAC", "PaxosCommit"),
    "partitions": (3, 4),
    "clients": (1, 8),
    "transfers": 12,
}
QUICK_GRID = {
    "protocols": ("2PC", "INBAC"),
    "partitions": (3,),
    "clients": (1, 4),
    "transfers": 6,
}

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "BENCH_runtime_throughput.json"
)


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    index = max(0, int(round(q * len(sorted_values))) - 1)
    return sorted_values[index]


# --------------------------------------------------------------------------- #
# the runtime side: wall clock, concurrent clients
# --------------------------------------------------------------------------- #
def measure_runtime(
    protocol: str,
    partitions: int,
    clients: int,
    transfers: int,
    unit: float,
    seed: int,
) -> Dict[str, object]:
    workload = bank_transfer_workload(
        num_transfers=transfers, num_partitions=partitions, seed=seed
    )
    shares: List[List] = [[] for _ in range(clients)]
    for index, txn in enumerate(workload.transactions):
        shares[index % clients].append(txn)

    async def drive():
        service = AsyncClusterService(
            ClusterConfig(
                num_partitions=partitions,
                commit_protocol=protocol,
                seed=seed,
                max_time=2000.0,
            ),
            unit=unit,
        )
        await service.start()

        async def client_session(share):
            outcomes = []
            for txn in share:
                outcomes.append(await service.submit(txn, timeout_units=500.0))
            return outcomes

        start = time.perf_counter()
        per_client = await asyncio.gather(
            *(client_session(share) for share in shares)
        )
        elapsed = time.perf_counter() - start
        report = await service.shutdown()
        return per_client, report, elapsed

    per_client, report, elapsed = asyncio.run(drive())
    outcomes = [o for share in per_client for o in share]
    assert all(o is not None for o in outcomes), (
        f"{protocol} x{partitions}p x{clients}c: a fault-free transaction "
        "never completed"
    )
    assert report.invariants is not None and report.invariants.holds, (
        report.invariants and report.invariants.violations
    )
    latencies = sorted(
        o.commit_latency for o in outcomes if o.commit_latency is not None
    )
    committed = sum(1 for o in outcomes if o.decision == COMMIT)
    return {
        "completed": len(outcomes),
        "committed": committed,
        "aborted": len(outcomes) - committed,
        "throughput_txn_per_s": len(outcomes) / elapsed if elapsed > 0 else 0.0,
        "p50_latency_units": percentile(latencies, 0.50),
        "p99_latency_units": percentile(latencies, 0.99),
        "p50_latency_ms": _ms(percentile(latencies, 0.50), unit),
        "p99_latency_ms": _ms(percentile(latencies, 0.99), unit),
        "messages": report.messages_total,
        "wall_seconds": elapsed,
    }


def _ms(latency_units: Optional[float], unit: float) -> Optional[float]:
    return None if latency_units is None else latency_units * unit * 1000.0


# --------------------------------------------------------------------------- #
# the sim side: the deterministic oracle via the experiment engine
# --------------------------------------------------------------------------- #
def measure_sim_oracle(
    protocol: str, partitions: int, transfers: int, seed: int
) -> Dict[str, object]:
    workload = bank_transfer_workload(
        num_transfers=transfers, num_partitions=partitions, seed=seed
    )
    sweep = run_sweep(
        GridSpec(
            protocols=[protocol],
            systems=[(partitions, 1)],
            workloads=[("bank", workload)],
            seeds=[seed],
            max_time=2000.0,
        ),
        workers=1,
    )
    assert not sweep.errors(), sweep.errors()[0].error
    trial = sweep.trials[0]
    assert trial.termination, f"sim oracle left pending transactions: {trial}"
    latencies = sorted(trial.decision_latencies)
    return {
        "sim_committed": sum(
            1 for d in trial.decisions.values() if d == COMMIT
        ),
        "sim_completed": len(trial.decisions),
        "sim_p50_latency_units": percentile(latencies, 0.50),
        "sim_messages": trial.messages_total,
    }


# --------------------------------------------------------------------------- #
# the battery
# --------------------------------------------------------------------------- #
def run_battery(
    grid: Dict[str, object],
    unit: float = DEFAULT_CLUSTER_UNIT_SECONDS,
    seed: int = 2017,
) -> List[Dict]:
    rows: List[Dict] = []
    transfers = grid["transfers"]
    for protocol in grid["protocols"]:
        for partitions in grid["partitions"]:
            oracle = measure_sim_oracle(protocol, partitions, transfers, seed)
            for clients in grid["clients"]:
                measured = measure_runtime(
                    protocol, partitions, clients, transfers, unit, seed
                )
                # semantics parity with the oracle: every transaction reaches
                # an outcome on both runtimes
                assert measured["completed"] == oracle["sim_completed"]
                # a single sequential client has no cross-client contention:
                # its commit count matches the planned-workload oracle
                if clients == 1:
                    assert measured["committed"] == oracle["sim_committed"], (
                        protocol,
                        partitions,
                        measured,
                        oracle,
                    )
                rows.append(
                    {
                        "protocol": protocol,
                        "partitions": partitions,
                        "clients": clients,
                        "txns": transfers,
                        "committed": measured["committed"],
                        "aborted": measured["aborted"],
                        "thru t/s": round(measured["throughput_txn_per_s"], 1),
                        "p50 ms": _round(measured["p50_latency_ms"]),
                        "p99 ms": _round(measured["p99_latency_ms"]),
                        "p50 U": _round(measured["p50_latency_units"]),
                        "sim p50 U": _round(oracle["sim_p50_latency_units"]),
                        "msgs": measured["messages"],
                        "sim msgs": oracle["sim_messages"],
                    }
                )
    return rows


def _round(value: Optional[float], digits: int = 2) -> Optional[float]:
    return None if value is None else round(value, digits)


def write_baseline(
    rows: List[Dict], out_path: str, unit: float, quick: bool
) -> Dict:
    baseline = {
        "benchmark": "runtime_throughput",
        "quick": quick,
        "unit_seconds_per_U": unit,
        "rows": rows,
    }
    with open(out_path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def test_runtime_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: run_battery(FULL_GRID), rounds=1, iterations=1
    )
    out_path = os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    write_baseline(rows, out_path, unit=DEFAULT_CLUSTER_UNIT_SECONDS, quick=False)
    attach_rows(benchmark, "runtime_throughput", rows)
    print()
    print(
        render_table(
            rows,
            title="Runtime commit throughput (asyncio transport, wall clock)",
        )
    )
    print(f"baseline written to {out_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke grid")
    parser.add_argument("--out",
                        default=os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT),
                        help="where to write the JSON baseline")
    parser.add_argument("--unit", type=float,
                        default=DEFAULT_CLUSTER_UNIT_SECONDS,
                        help="wall-clock seconds per unit of simulated time U")
    args = parser.parse_args()

    grid = QUICK_GRID if args.quick else FULL_GRID
    rows = run_battery(grid, unit=args.unit)
    write_baseline(rows, args.out, unit=args.unit, quick=args.quick)
    print(
        render_table(
            rows,
            title="Runtime commit throughput (asyncio transport, wall clock)",
        )
    )
    print(f"baseline written to {args.out}")


if __name__ == "__main__":
    main()
