"""Sweep-throughput benchmark: the fast-path simulation core, measured.

Measures trials/sec for aggregate-mode sweeps at n in {20, 100, 200} across
four core configurations:

* ``legacy`` — an emulation of the pre-fast-path core: full trace records,
  the O(messages) reversed delivery scan in ``_dispatch``, the O(n)-per-event
  all-correct-decided predicate, and per-trial result IPC.  This is the
  baseline the speedup claim is made against.
* ``full+trial`` — today's core at ``trace_level="full"`` with per-trial
  streaming folds (O(1) bookkeeping already in effect).
* ``counters+trial`` — the counters trace level, still folding per trial.
* ``counters+heap`` — the aggregate-mode configuration forced onto the
  binary-heap event queue, isolating what the bucket queue itself buys.
* ``counters+chunk`` — the aggregate-mode default: counters level, chunk
  folds, and the bucket queue + batched sampling picked automatically.

Every configuration must produce the *same* ``SweepAggregate`` fingerprint —
the fast path buys speed, never different bytes — and the measured rates are
written to ``BENCH_sweep_throughput.json`` as the repo's perf baseline
(``--out`` / ``REPRO_BENCH_OUT`` override the path; ``--quick`` runs the
small smoke configuration).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

from _helpers import attach_rows
from repro.analysis import render_table
from repro.exp import GridSpec, run_sweep
from repro.sim import runner as sim_runner
from repro.sim.events import MessageDeliveryEvent
from repro.sim.runner import Scheduler

#: (n, f, trials) per measured point — f = n/5 throughout, the resilience
#: ratio the large-scale grids sweep; INBAC's 2fn-message nice executions
#: then give each point a message volume that grows quadratically with n,
#: which is exactly the regime the legacy core's O(messages) delivery scan
#: collapsed in
FULL_CONFIGS = ((20, 4, 150), (100, 20, 16), (200, 40, 4))
QUICK_CONFIGS = ((20, 4, 40), (100, 20, 4))

#: the acceptance bar: fast path >= 2x the legacy core at n=100
HEADLINE_N = 100
MIN_HEADLINE_SPEEDUP = 2.0

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "BENCH_sweep_throughput.json")


class _LegacyScheduler(Scheduler):
    """The pre-fast-path event bookkeeping, reinstated for the baseline.

    Faithful to the pre-optimisation core: ``post_message`` records the
    message without any msg-id map insert, delivery marking scans
    ``trace.messages`` in reverse until it finds the record (O(messages) per
    delivery), and the all-correct-decided stop is a predicate re-evaluated
    over every correct pid on every event — exactly the costs the fast-path
    core replaced with an msg-id map and a decremented counter.
    """

    def __init__(self, *args, **kwargs):
        kwargs["trace_level"] = "full"
        # the pre-fast-path core had no bucket queue or batched sampling:
        # pin the baseline to the binary heap so the comparison stays honest
        kwargs["event_queue"] = "heap"
        super().__init__(*args, **kwargs)

    def post_message(self, src, dst, payload, module="main"):
        from repro.errors import SimulationError
        from repro.sim.events import PRIORITY_DELIVERY

        if dst < 1 or dst > self.n:
            raise SimulationError(f"message to unknown process P{dst}")
        send_time = self.clock.now
        self._msg_counter += 1
        msg_id = self._msg_counter
        if src == dst:
            recv_time = send_time
            counted = False
        else:
            delay = self.network.transit_delay(src, dst, payload, send_time, msg_id)
            recv_time = send_time + delay
            counted = True
        self.trace.record_send(
            msg_id=msg_id,
            src=src,
            dst=dst,
            payload=payload,
            send_time=send_time,
            recv_time=recv_time,
            counted=counted,
            module=module,
        )
        self._push(
            MessageDeliveryEvent(
                time=recv_time,
                priority=PRIORITY_DELIVERY,
                seq=self._next_seq(),
                src=src,
                dst=dst,
                payload=payload,
                send_time=send_time,
                msg_id=msg_id,
            )
        )

    def _dispatch(self, event):
        if isinstance(event, MessageDeliveryEvent):
            process = self.processes.get(event.dst)
            if process is None or process.crashed:
                return
            for record in reversed(self.trace.messages):
                if record.msg_id == event.msg_id:
                    record.delivered = True
                    break
            process.deliver(event.src, event.payload)
            return
        super()._dispatch(event)

    def stop_when_all_correct_decided(self):
        correct = [
            pid for pid in range(1, self.n + 1) if pid not in self.fault_plan.crashes
        ]
        self.set_stop_predicate(
            lambda s: all(pid in s.trace.decisions for pid in correct)
        )


class _HeapScheduler(Scheduler):
    """Today's core with the bucket queue disabled (heap forced).

    Differs from the default only in the event-queue choice, so comparing it
    against ``counters+chunk`` isolates the bucket queue + batched sampling
    contribution from the earlier bookkeeping optimisations.
    """

    def __init__(self, *args, **kwargs):
        kwargs["event_queue"] = "heap"
        super().__init__(*args, **kwargs)


def grid(n: int, f: int, trials: int) -> GridSpec:
    return GridSpec(
        protocols=["INBAC"], systems=[(n, f)], seeds=range(trials), max_time=1000
    )


def _measure_once(n, f, trials, workers, trace_level, fold, scheduler_cls=None):
    """One timed aggregate sweep; returns (trials/sec, fingerprint)."""
    previous = sim_runner.Scheduler
    if scheduler_cls is not None:
        sim_runner.Scheduler = scheduler_cls
    try:
        start = time.perf_counter()
        agg = run_sweep(
            grid(n, f, trials),
            workers=workers,
            mode="aggregate",
            trace_level=trace_level,
            fold=fold,
        )
        elapsed = time.perf_counter() - start
    finally:
        sim_runner.Scheduler = previous
    assert agg.error_count == 0, agg.sample_errors
    return trials / elapsed, agg.aggregate_fingerprint()


def measure(n, f, trials, workers, trace_level, fold, scheduler_cls=None, repeats=2):
    """Best-of-``repeats`` throughput (and the fingerprint, identical each run)."""
    best, fingerprint = 0.0, None
    for _ in range(repeats):
        rate, fingerprint = _measure_once(
            n, f, trials, workers, trace_level, fold, scheduler_cls
        )
        best = max(best, rate)
    return best, fingerprint


#: label -> (trace_level, fold, scheduler_cls)
VARIANTS = {
    "legacy": ("full", "trial", _LegacyScheduler),
    "full+trial": ("full", "trial", None),
    "counters+trial": ("counters", "trial", None),
    "counters+heap": ("counters", "chunk", _HeapScheduler),
    "counters+chunk": ("counters", "chunk", None),
}


def run_battery(configs, workers: Optional[int] = 1, repeats: int = 2) -> List[Dict]:
    """Measure every variant at every (n, f, trials) point.

    Asserts, per point, that all five variants produce byte-identical
    ``SweepAggregate`` fingerprints — the determinism half of the benchmark.
    """
    rows: List[Dict] = []
    for n, f, trials in configs:
        fingerprints: Dict[str, str] = {}
        rates: Dict[str, float] = {}
        for label, (level, fold, scheduler_cls) in VARIANTS.items():
            rates[label], fingerprints[label] = measure(
                n, f, trials, workers, level, fold, scheduler_cls, repeats=repeats
            )
        distinct = set(fingerprints.values())
        assert len(distinct) == 1, (
            f"fingerprints diverged across core configurations at n={n}: {fingerprints}"
        )
        rows.append(
            {
                "n": n,
                "f": f,
                "trials": trials,
                **{f"{label} t/s": round(rate, 1) for label, rate in rates.items()},
                "speedup": round(rates["counters+chunk"] / rates["legacy"], 2),
                "fingerprint": next(iter(distinct))[:16],
            }
        )
    return rows


def write_baseline(rows: List[Dict], out_path: str, workers, quick: bool) -> Dict:
    headline = next((r for r in rows if r["n"] == HEADLINE_N), rows[-1])
    baseline = {
        "benchmark": "sweep_throughput",
        "quick": quick,
        "workers": workers,
        "headline": {
            "n": headline["n"],
            "speedup_counters_chunk_vs_legacy": headline["speedup"],
            "minimum_required": MIN_HEADLINE_SPEEDUP,
        },
        "configs": rows,
    }
    with open(out_path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def test_sweep_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: run_battery(FULL_CONFIGS, workers=1), rounds=1, iterations=1
    )
    out_path = os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT)
    baseline = write_baseline(rows, out_path, workers=1, quick=False)
    attach_rows(benchmark, "sweep_throughput", rows)
    print()
    print(render_table(rows, title="Sweep throughput: legacy core vs fast path (trials/sec)"))
    print(f"baseline written to {out_path}")
    # the perf half of the acceptance bar: counters + chunk folds at n=100
    # must at least double the legacy core's throughput
    headline = baseline["headline"]
    assert headline["speedup_counters_chunk_vs_legacy"] >= MIN_HEADLINE_SPEEDUP, baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration (fingerprint checks only, "
                             "no speedup assertion)")
    parser.add_argument("--out", default=os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT),
                        help="where to write the JSON baseline")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per sweep (default: 1, serial)")
    args = parser.parse_args()

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    rows = run_battery(configs, workers=args.workers, repeats=1 if args.quick else 2)
    baseline = write_baseline(rows, args.out, workers=args.workers, quick=args.quick)
    print(render_table(rows, title="Sweep throughput: legacy core vs fast path (trials/sec)"))
    print(f"baseline written to {args.out}")
    if not args.quick:
        headline = baseline["headline"]
        assert headline["speedup_counters_chunk_vs_legacy"] >= MIN_HEADLINE_SPEEDUP, (
            f"fast path below the {MIN_HEADLINE_SPEEDUP}x bar: {headline}"
        )


if __name__ == "__main__":
    main()
