"""E1 — Table 1: tight lower bounds for all 27 atomic-commit problems.

Regenerates the full table of delay/message lower bounds and, for every cell
that has a matching protocol (Tables 2 and 3), verifies by measurement that
the protocol meets the bound in nice executions.  The measurements run as one
:func:`repro.exp.run_sweep` over every matching protocol (fanned out across
worker processes) instead of a hand-rolled per-protocol loop.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import build_table1, measurement_grid, render_table, table1_protocols
from repro.exp import run_sweep

PARAMS = [(5, 2), (8, 3)]


def build(n, f):
    sweep = run_sweep(measurement_grid(table1_protocols(), n, f))
    return build_table1(n, f, sweep=sweep)


@pytest.mark.parametrize("n,f", PARAMS)
def test_table1_lower_bounds(benchmark, n, f):
    rows = benchmark.pedantic(build, args=(n, f), rounds=2, iterations=1)
    assert len(rows) == 27
    measured_messages = [r for r in rows if "meets_message_bound" in r]
    measured_delays = [r for r in rows if "meets_delay_bound" in r]
    assert measured_messages and all(r["meets_message_bound"] == "yes" for r in measured_messages)
    assert measured_delays and all(r["meets_delay_bound"] == "yes" for r in measured_delays)
    attach_rows(benchmark, f"table1_n{n}_f{f}", rows)
    print()
    print(render_table(
        rows,
        columns=["CF", "NF", "delay_bound", "message_bound", "message_bound_value",
                 "matching_protocol", "measured_messages"],
        title=f"Table 1 — lower bounds and matching protocols (n={n}, f={f})",
    ))
