"""E2 — Table 2: delay-optimal protocols meet their cells' delay bounds.

The four protocols are measured by one :func:`repro.exp.run_sweep` over the
nice-execution measurement grid.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import build_table2, measurement_grid, render_table, table2_protocols
from repro.exp import run_sweep

PARAMS = [(3, 1), (5, 2), (8, 3), (16, 5)]


def build(n, f):
    sweep = run_sweep(measurement_grid(table2_protocols(), n, f))
    return build_table2(n, f, sweep=sweep)


@pytest.mark.parametrize("n,f", PARAMS)
def test_table2_delay_optimal_protocols(benchmark, n, f):
    rows = benchmark.pedantic(build, args=(n, f), rounds=3, iterations=1)
    assert len(rows) == 4
    assert all(r["optimal"] == "yes" for r in rows)
    # the headline entries: 0NBAC / 1NBAC / avNBAC decide after 1 delay,
    # INBAC (indulgent atomic commit) after 2
    by_protocol = {r["protocol"]: r for r in rows}
    assert by_protocol["INBAC"]["measured_delays"] == 2
    assert by_protocol["1NBAC"]["measured_delays"] == 1
    assert by_protocol["0NBAC"]["measured_delays"] == 1
    assert by_protocol["avNBAC-delay"]["measured_delays"] == 1
    attach_rows(benchmark, f"table2_n{n}_f{f}", rows)
    print()
    print(render_table(rows, title=f"Table 2 — delay-optimal protocols (n={n}, f={f})"))
