"""E3 — Table 3: message-optimal protocols meet their cells' message bounds.

The six protocols are measured by one :func:`repro.exp.run_sweep` over the
nice-execution measurement grid.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import build_table3, measurement_grid, render_table, table3_protocols
from repro.exp import run_sweep

PARAMS = [(3, 1), (5, 2), (8, 3), (12, 6)]


def build(n, f):
    sweep = run_sweep(measurement_grid(table3_protocols(), n, f))
    return build_table3(n, f, sweep=sweep)


@pytest.mark.parametrize("n,f", PARAMS)
def test_table3_message_optimal_protocols(benchmark, n, f):
    rows = benchmark.pedantic(build, args=(n, f), rounds=3, iterations=1)
    assert len(rows) == 6
    assert all(r["optimal"] == "yes" for r in rows)
    by_protocol = {r["protocol"]: r for r in rows}
    assert by_protocol["0NBAC"]["measured_messages"] == 0
    assert by_protocol["(n-1+f)NBAC"]["measured_messages"] == n - 1 + f
    assert by_protocol["(2n-2)NBAC"]["measured_messages"] == 2 * n - 2
    assert by_protocol["(2n-2+f)NBAC"]["measured_messages"] == 2 * n - 2 + f
    assert by_protocol["avNBAC"]["measured_messages"] == 2 * n - 2
    assert by_protocol["aNBAC"]["measured_messages"] == n - 1 + f
    attach_rows(benchmark, f"table3_n{n}_f{f}", rows)
    print()
    print(render_table(rows, title=f"Table 3 — message-optimal protocols (n={n}, f={f})"))
