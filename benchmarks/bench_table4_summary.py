"""E4 — Table 4: indulgent atomic commit vs synchronous NBAC complexity.

The four measured protocols run as one :func:`repro.exp.run_sweep` over the
nice-execution measurement grid.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import build_table4, measurement_grid, render_table, table4_protocols
from repro.exp import run_sweep

PARAMS = [(5, 2), (8, 3), (10, 4)]


def build(n, f):
    sweep = run_sweep(measurement_grid(table4_protocols(), n, f))
    return build_table4(n, f, sweep=sweep)


@pytest.mark.parametrize("n,f", PARAMS)
def test_table4_summary(benchmark, n, f):
    rows = benchmark.pedantic(build, args=(n, f), rounds=3, iterations=1)
    indulgent, sync, prior = rows
    # indulgent atomic commit: 2 delays, 2n-2+f messages (tight, Theorem 2)
    assert indulgent["bound_delays"] == 2
    assert indulgent["measured_delays"] == 2
    assert indulgent["bound_messages"] == 2 * n - 2 + f
    assert indulgent["measured_messages"] == 2 * n - 2 + f
    # synchronous NBAC: 1 delay, n-1+f messages (closing the open question)
    assert sync["bound_delays"] == 1
    assert sync["measured_delays"] == 1
    assert sync["bound_messages"] == n - 1 + f
    assert sync["measured_messages"] == n - 1 + f
    # prior work only knew 2n-2 for f = n-1
    assert prior["bound_messages"] == 2 * n - 2
    attach_rows(benchmark, f"table4_n{n}_f{f}", rows)
    print()
    print(render_table(rows, title=f"Table 4 — indulgent atomic commit vs sync NBAC (n={n}, f={f})"))
