"""E5 — Table 5: INBAC vs (n-1+f)NBAC vs 1NBAC vs 2PC vs PaxosCommit vs
Faster PaxosCommit, measured in nice executions.

The six protocols are measured by one :func:`repro.exp.run_sweep` over the
nice-execution measurement grid.  The message counts must match the paper's
formulas exactly; the delay counts match for every protocol except the chain
protocol, whose accounting convention differs by one unit (documented in
repro.analysis.formulas).  The comparative *shape* the paper highlights is
asserted explicitly:

* INBAC and 2PC have the same number of message delays;
* for f = 1, INBAC uses exactly 2 messages more than 2PC;
* for f >= 2, PaxosCommit beats INBAC on messages, INBAC beats it on delays;
* Faster PaxosCommit matches INBAC's delays but needs more messages.
"""

from __future__ import annotations

import pytest

from _helpers import attach_rows
from repro.analysis import build_table5, measurement_grid, render_table
from repro.analysis.compare import compare_measured_to_paper
from repro.exp import run_sweep
from repro.protocols.registry import table5_protocols

PARAMS = [(4, 1), (6, 2), (9, 2), (12, 3)]


def build(n, f):
    sweep = run_sweep(measurement_grid(table5_protocols(), n, f))
    return build_table5(n, f, sweep=sweep)


@pytest.mark.parametrize("n,f", PARAMS)
def test_table5_protocol_shootout(benchmark, n, f):
    rows, comparisons = benchmark.pedantic(build, args=(n, f), rounds=3, iterations=1)
    assert len(rows) == 6
    by_protocol = {r["protocol"]: r for r in rows}

    # message counts reproduce the paper's column entries exactly
    message_rows = [c for c in comparisons if c.metric == "messages"]
    summary = compare_measured_to_paper(message_rows)
    assert summary["exact_matches"] == summary["total"], summary["mismatches"]

    inbac = by_protocol["INBAC"]
    two_pc = by_protocol["2PC"]
    paxos = by_protocol["PaxosCommit"]
    faster = by_protocol["FasterPaxosCommit"]

    assert inbac["measured_delays"] == two_pc["measured_delays"] == 2
    if f == 1:
        assert inbac["measured_messages"] - two_pc["measured_messages"] == 2
    if f >= 2 and n >= 3:
        assert paxos["measured_messages"] < inbac["measured_messages"]
        assert inbac["measured_delays"] < paxos["measured_delays"]
    assert faster["measured_delays"] == inbac["measured_delays"]
    assert faster["measured_messages"] >= inbac["measured_messages"]
    # the consensus module is silent in every nice execution
    assert all(r["consensus_messages"] == 0 for r in rows)

    attach_rows(benchmark, f"table5_n{n}_f{f}", rows)
    print()
    print(render_table(rows, title=f"Table 5 — protocol comparison (n={n}, f={f})"))
