"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (experiments
E1-E9 in DESIGN.md).  Each bench measures the wall-clock cost of producing the
artefact with ``pytest-benchmark`` *and* attaches the regenerated rows to
``benchmark.extra_info`` so that ``--benchmark-json`` output contains the
reproduced numbers, not just timings.  The key assertions about the paper's
shape (who wins, by how much, where the crossovers are) are made inline.
"""

from __future__ import annotations

from typing import Dict, List


def attach_rows(benchmark, name: str, rows: List[Dict[str, object]]) -> None:
    """Attach regenerated table rows to the benchmark record (JSON-safe)."""
    safe_rows = []
    for row in rows:
        safe_rows.append({k: (v if isinstance(v, (int, float, str, bool, type(None))) else str(v))
                          for k, v in row.items()})
    benchmark.extra_info[name] = safe_rows
