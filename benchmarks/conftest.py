"""Benchmark-harness conftest.

Every benchmark regenerates one of the paper's tables or figures (experiments
E1-E9 in DESIGN.md).  Each bench measures the wall-clock cost of producing the
artefact with ``pytest-benchmark`` *and* attaches the regenerated rows to
``benchmark.extra_info`` so that ``--benchmark-json`` output contains the
reproduced numbers, not just timings.  The key assertions about the paper's
shape (who wins, by how much, where the crossovers are) are made inline.

Shared helpers live in :mod:`benchmarks._helpers` (imported by the bench
modules as ``from _helpers import ...``), NOT here: a top-level conftest is
imported under the module name ``conftest``, which collides with
``tests/conftest.py`` when both directories are collected in one run.
"""
