"""Adversarial schedule search: find and shrink a 2PC blocking counterexample.

The paper's Definition 1 requires *termination*: every correct process
eventually decides.  Two-phase commit famously fails it — if the coordinator
crashes after collecting votes but before broadcasting the outcome, the
participants block forever.  Instead of hand-writing that scenario, this
example lets ``repro.explore`` *find* it: a seeded random walk over message
deferrals and crash points searches the space of admissible executions,
collects the schedules that violate termination, and greedily shrinks one to
a minimal counterexample.  The same budget run against INBAC (indulgent,
within its resilience bound) finds nothing.

Run:  PYTHONPATH=src python examples/adversarial_search.py
"""

from __future__ import annotations

from repro.explore import ScheduleTrace, explore, replay_trial
from repro.exp.spec import GridSpec


def main() -> None:
    print("=== searching 2PC for termination violations (random walk) ===")
    report = explore(
        "2PC", n=5, f=2, budget=60, strategy="random-walk", seed=3,
        properties=("termination",),
    )
    print(
        f"schedules explored: {report.schedules_run}, "
        f"violations found: {report.violation_count}"
    )
    assert report.found, "the random walk must expose 2PC's blocking scenario"

    violation = report.violations_of("termination")[0]
    print()
    print(violation.describe())
    assert violation.shrunk is not None and len(violation.shrunk) <= 5

    # --- replay the minimal counterexample and confirm determinism -------- #
    grid = GridSpec(
        protocols=["2PC"], systems=[(5, 2)],
        schedules=[("random-walk", "random-walk", {})],
        seeds=[violation.base_seed], trace_level="full",
    )
    trial = grid.trials()[0]
    replayed = replay_trial(trial, violation.shrunk)
    assert replayed.extra["trace_fingerprint"] == violation.shrunk_fingerprint
    assert not replayed.termination
    print()
    print("replayed the shrunk schedule: identical trace fingerprint",
          replayed.extra["trace_fingerprint"][:16], "...")
    undecided = [
        pid for pid in range(1, 6)
        if pid not in replayed.decisions and pid not in replayed.crashes
    ]
    print(f"blocked participants (correct but never decided): {undecided}")

    # the stored counterexample survives serialisation
    wire = violation.shrunk.to_json()
    assert ScheduleTrace.from_json(wire) == violation.shrunk
    print(f"counterexample serialises to {len(wire)} bytes of JSON")

    # --- the same search finds nothing against INBAC ---------------------- #
    print()
    print("=== same budget against INBAC (indulgent, f within bound) ===")
    inbac = explore("INBAC", n=5, f=2, budget=60, strategy="random-walk", seed=3)
    print(
        f"schedules explored: {inbac.schedules_run}, "
        f"violations found: {inbac.violation_count}"
    )
    assert not inbac.found


if __name__ == "__main__":
    main()
