#!/usr/bin/env python
"""Streaming (aggregate-only) sweeps: big grids in bounded memory.

The paper's tables average over many executions per cell; pushing that to
production scale means sweeps of 10^5-10^6 trials, which do not fit in memory
as per-trial records.  ``run_sweep(..., mode="aggregate")`` folds every trial
into per-coordinate accumulators (counts, commit rates, message means, exact
p50/p99 latency digests) the moment it finishes, and the resulting table is
byte-identical to what the in-memory mode aggregates from the full trial
list — which this script demonstrates by running the same small grid both
ways and comparing fingerprints, then scaling the seed axis up in streaming
mode only.

Aggregate mode is also the fast path: it defaults to the scheduler's
``counters`` trace level (no per-message records allocated) and, in parallel
runs, to worker-side chunk folds (one accumulator bundle shipped per
contiguous trial chunk instead of one result per trial) — without changing a
single output byte, which the fingerprint comparison below exercises.

Run with:  python examples/aggregate_sweep.py [--seeds N] [--workers W]
"""

from __future__ import annotations

import argparse
import tracemalloc

from repro.analysis import render_table
from repro.exp import GridSpec, run_sweep
from repro.sim.network import UniformDelay


def grid(seeds: int) -> GridSpec:
    return GridSpec(
        protocols=["INBAC", "2PC", "PaxosCommit"],
        systems=[(5, 2)],
        delays=[("uniform", lambda seed: UniformDelay(0.3, 1.0, seed=seed))],
        seeds=range(seeds),
        max_time=400,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=400,
                        help="seed-axis replications per grid cell (default: 400)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per CPU)")
    args = parser.parse_args()

    # 1. byte-identical: the same small grid, in-memory vs streaming
    check = 40
    full = run_sweep(grid(check), workers=args.workers)
    streamed = run_sweep(grid(check), workers=args.workers, mode="aggregate")
    assert streamed.aggregate_rows() == full.aggregate_rows()
    assert streamed.aggregate_fingerprint() == full.aggregate_fingerprint()
    print(f"aggregate mode reproduces the in-memory tables byte-for-byte "
          f"({check} seeds/cell, fingerprint {full.aggregate_fingerprint()[:16]}...)")
    print()

    # 2. scale the seed axis, streaming only
    tracemalloc.start()
    agg = run_sweep(grid(args.seeds), workers=args.workers, mode="aggregate")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert agg.error_count == 0, agg.sample_errors
    print(render_table(
        agg.aggregate_rows(),
        columns=["protocol", "n", "f", "trials", "commit_rate",
                 "mean_delays", "p50_latency", "p99_latency", "mean_messages"],
        title=f"Latency/message distributions over {len(agg)} streamed trials",
    ))
    print()
    print(f"{len(agg)} trials folded into {agg.cell_count} cell accumulators; "
          f"peak traced memory {peak / 1e6:.1f} MB "
          f"(trace level: {agg.meta['trace_level']}, fold: {agg.meta['fold']})")


if __name__ == "__main__":
    main()
