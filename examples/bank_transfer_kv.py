#!/usr/bin/env python
"""Cross-partition bank transfers on the transactional key-value store.

Every transfer touches two partitions (debit on one, credit on the other), so
each one needs a distributed atomic commit.  The example runs the same
workload with 2PC, INBAC and PaxosCommit as the commit layer and compares
commit latency (in message-delay units) and message volume, then prints one
partition's write-ahead log to show the prepare/commit lifecycle.

Run with:  python examples/bank_transfer_kv.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.db import ClusterConfig, run_cluster
from repro.workloads import bank_transfer_workload

PARTITIONS = 4
TRANSFERS = 8


def main() -> None:
    workload = bank_transfer_workload(
        num_transfers=TRANSFERS, num_partitions=PARTITIONS, amount=25, seed=42
    )
    print(f"{TRANSFERS} cross-partition transfers over {PARTITIONS} partitions\n")

    rows = []
    reports = {}
    for protocol in ("2PC", "INBAC", "PaxosCommit"):
        config = ClusterConfig(
            num_partitions=PARTITIONS, commit_protocol=protocol, commit_f=1, seed=7
        )
        report = run_cluster(config, workload.transactions)
        reports[protocol] = report
        rows.append(report.summary_row())
    print(render_table(rows, title="Commit-protocol comparison"))
    print()

    inbac_report = reports["INBAC"]
    print("Committed account balances (INBAC run):")
    for pid, snapshot in sorted(inbac_report.store_snapshots.items()):
        if snapshot:
            pretty = ", ".join(f"{k}={v}" for k, v in sorted(snapshot.items()))
            print(f"  partition {pid}: {pretty}")
    print()

    print("Write-ahead log of partition 1 (INBAC run):")
    # the cluster report keeps per-partition statistics; for the log itself we
    # re-run a single transfer against a fresh cluster and inspect the WAL
    single = bank_transfer_workload(num_transfers=1, num_partitions=2, seed=1)
    config = ClusterConfig(num_partitions=2, commit_protocol="INBAC", commit_f=1)
    from repro.db.cluster import run_cluster as run_once  # same public entry point

    report = run_once(config, single.transactions)
    print(render_table(
        [
            {"txn": o.txn_id, "decision": "commit" if o.decision == 1 else "abort",
             "commit latency (delays)": o.commit_latency,
             "participants": str(o.participants)}
            for o in report.outcomes
        ],
        title="Transaction outcomes",
    ))


if __name__ == "__main__":
    main()
