"""Hunting transaction anomalies in the simulated cluster.

PR 4 taught `repro.explore` to search bare protocol executions; this example
drives the same adversary through the full `repro.db` stack.  Every explored
schedule runs a complete cluster — client coordinator, partition servers with
locks/WAL/store, and the commit protocol embedded per transaction — and is
judged against the *cluster-invariant battery* (`repro.db.invariants`):

* atomicity  — no partition applies a transaction another partition aborted;
* durability — replaying a partition's WAL reconstructs exactly its
  committed snapshot (crash-frozen partitions included);
* lock safety — no two exclusive holders, and decided transactions hold
  no locks.

The ``cluster-anomaly`` preset enumerates crash points over every partition
*and* the client coordinator.  A correct commit protocol passes the battery
on every admissible schedule; a protocol with a split-brain bug (the
coordinator sends different outcomes to different participants once a vote
goes missing) is caught, and the offending schedule is shrunk to a 1-minimal
counterexample that replays byte-identically from ``(strategy, seed,
decisions)``.

Run:  PYTHONPATH=src python examples/cluster_anomaly_hunt.py
"""

from __future__ import annotations

import sys
from pathlib import Path

# the injected-bug fixture lives in the test tree (one copy, shared with the
# test suite and smoke stage 9)
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from broken_protocols import SplitBrainCommit
from repro.explore import ScheduleTrace, explore, replay_trial
from repro.exp.spec import GridSpec

N, F, BUDGET = 3, 1, 24
WORKLOAD = ("uniform3", "uniform", {"transactions": 4})


def main() -> None:
    print("=== cluster-anomaly hunt against a split-brain 2PC variant ===")
    report = explore(
        ("SplitBrain2PC", SplitBrainCommit), n=N, f=F, budget=BUDGET,
        workload=WORKLOAD, preset="cluster-anomaly",
        max_time=150.0,
    )
    print(
        f"schedules explored: {report.schedules_run}, "
        f"violations found: {report.violation_count}"
    )
    assert report.found, "the crash-point enumeration must expose the bug"

    violation = report.violations_of("agreement")[0]  # atomicity lives here
    print()
    print(violation.describe())
    assert violation.shrunk is not None and len(violation.shrunk) == 1

    # --- replay the 1-minimal counterexample, byte-identically ------------ #
    grid = GridSpec(
        protocols=[("SplitBrain2PC", SplitBrainCommit)],
        systems=[(N, F)],
        workloads=[WORKLOAD],
        schedules=[("cp", "crash-point", {})],
        seeds=[violation.base_seed],
        max_time=150.0,
        trace_level="full",
    )
    stored = ScheduleTrace.from_json(violation.shrunk.to_json())
    replayed = replay_trial(grid.trials()[0], stored)
    assert replayed.extra["trace_fingerprint"] == violation.shrunk_fingerprint
    assert not replayed.agreement
    print()
    print("replayed the shrunk schedule: identical trace fingerprint",
          replayed.extra["trace_fingerprint"][:16], "...")
    print("invariant violations on replay:")
    for line in replayed.extra.get("invariant_violations", []):
        print(f"  {line}")

    # --- the same hunt finds nothing against correct protocols ------------ #
    print()
    print("=== same budget against the real commit protocols ===")
    for protocol in ("2PC", "INBAC", "PaxosCommit"):
        clean = explore(
            protocol, n=N, f=F, budget=BUDGET,
            workload=WORKLOAD, preset="cluster-anomaly", max_time=150.0,
        )
        assert not clean.errors, clean.errors[:1]
        assert not clean.found, [v.describe() for v in clean.violations]
        print(
            f"{protocol:>12}: {clean.schedules_run} schedules, "
            f"0 invariant violations"
        )


if __name__ == "__main__":
    main()
