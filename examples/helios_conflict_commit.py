#!/usr/bin/env python
"""Helios-style conflict detection feeding an atomic-commit round.

The paper's introduction motivates atomic commit with Helios: each datacenter
tracks the read/write sets of in-flight transactions, votes to abort any
transaction involved in a local conflict, and a distributed commit protocol
aggregates the votes.  This example shows both halves:

1. the per-datacenter vote, computed by :class:`repro.db.ConflictDetector`
   over overlapping transaction footprints, and
2. the commit round itself, run with INBAC among the datacenters, including a
   contended workload on the full simulated cluster where conflicting
   transactions really do abort.

Run with:  python examples/helios_conflict_commit.py
"""

from __future__ import annotations

from repro import INBAC, Simulation
from repro.analysis import render_table
from repro.db import ClusterConfig, ConflictDetector, run_cluster
from repro.workloads import hotspot_workload

DATACENTERS = 4


def per_datacenter_votes() -> None:
    print("Step 1 — each datacenter votes based on the conflicts it sees locally\n")
    # two in-flight transactions: tx-A writes a key that tx-B reads in DC2
    footprints = {
        1: {"tx-A": ({"x1"}, {"y1"}), "tx-B": ({"z1"}, {"w1"})},   # disjoint in DC1
        2: {"tx-A": (set(), {"hot"}), "tx-B": ({"hot"}, set())},   # conflict in DC2
        3: {"tx-A": ({"a3"}, set())},                               # only tx-A present
        4: {"tx-B": (set(), {"b4"})},                               # only tx-B present
    }
    rows = []
    votes_for_a = {}
    for dc, txns in footprints.items():
        detector = ConflictDetector()
        for txn_id, (reads, writes) in txns.items():
            detector.begin(txn_id, reads=reads, writes=writes)
        vote = detector.vote("tx-A") if "tx-A" in txns else 1
        votes_for_a[dc] = vote
        rows.append(
            {
                "datacenter": dc,
                "in-flight": ", ".join(sorted(txns)),
                "conflicts of tx-A": ", ".join(detector.conflicts_of("tx-A")) or "none",
                "vote for tx-A": vote,
            }
        )
    print(render_table(rows))
    print()

    print("Step 2 — the datacenters run INBAC on those votes\n")
    sim = Simulation(n=DATACENTERS, f=1, process_class=INBAC)
    result = sim.run([votes_for_a[dc] for dc in sorted(votes_for_a)])
    decision = set(result.decisions().values()).pop()
    print(f"  votes = {votes_for_a}  ->  global decision for tx-A: "
          f"{'commit' if decision == 1 else 'abort'}")
    print(f"  decided in {result.trace.last_decision_time():.0f} message delays, "
          f"{result.trace.message_count()} messages exchanged\n")


def contended_cluster_run() -> None:
    print("Step 3 — a contended workload on the full simulated cluster\n")
    workload = hotspot_workload(
        num_transactions=20,
        num_partitions=DATACENTERS,
        hot_keys=1,
        hot_probability=0.85,
        participants_per_txn=2,
        inter_arrival=0.5,
        seed=11,
    )
    config = ClusterConfig(num_partitions=DATACENTERS, commit_protocol="INBAC", commit_f=1)
    report = run_cluster(config, workload.transactions)
    print(render_table([report.summary_row()], title="Cluster summary (INBAC commit layer)"))
    print()
    aborted = [o.txn_id for o in report.outcomes if o.completed and o.decision == 0]
    print(f"  transactions aborted because a datacenter detected a conflict: {len(aborted)}")
    print(f"  ({', '.join(aborted[:8])}{', ...' if len(aborted) > 8 else ''})")


if __name__ == "__main__":
    per_datacenter_votes()
    contended_cluster_run()
