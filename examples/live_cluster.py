#!/usr/bin/env python
"""A live partitioned KV cluster on the asyncio runtime.

The same protocol, partition and coordinator classes the deterministic
simulator executes are booted here on ``repro.runtime`` — an asyncio
transport with real queues and real time — and serve *concurrent* client
traffic: several bank-transfer sessions submit transactions at once, so
commits contend on account locks exactly the way a planned simulator
workload never does.

The example runs the workload under 2PC, INBAC and PaxosCommit and prints
wall-clock p50/p99 commit latency and throughput per protocol; then it
re-runs one cluster and crashes a partition mid-stream, showing that
transactions touching the dead partition hang (and are reported pending)
while the invariant battery — atomicity across WALs and stores, durability,
lock safety — still holds on the surviving state.

Run with:  python examples/live_cluster.py
"""

from __future__ import annotations

import asyncio
from typing import List, Optional

from repro.analysis import render_table
from repro.db import ClusterConfig
from repro.runtime import AsyncClusterService
from repro.workloads import bank_transfer_workload

PARTITIONS = 3
TRANSFERS = 8
CLIENT_SESSIONS = 4
UNIT = 0.005  # wall-clock seconds per message-delay unit U


def percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    return ordered[max(0, int(round(q * len(ordered))) - 1)]


async def serve_concurrent(protocol: str):
    """Split the workload across concurrent client sessions; return a row."""
    workload = bank_transfer_workload(
        num_transfers=TRANSFERS, num_partitions=PARTITIONS, amount=10, seed=42
    )
    shares: List[list] = [[] for _ in range(CLIENT_SESSIONS)]
    for index, txn in enumerate(workload.transactions):
        shares[index % CLIENT_SESSIONS].append(txn)

    service = AsyncClusterService(
        ClusterConfig(
            num_partitions=PARTITIONS, commit_protocol=protocol, seed=7,
            max_time=2000.0,
        ),
        unit=UNIT,
    )
    await service.start()

    async def session(share):
        return [await service.submit(txn, timeout_units=500.0) for txn in share]

    loop = asyncio.get_event_loop()
    start = loop.time()
    per_session = await asyncio.gather(*(session(s) for s in shares))
    elapsed = loop.time() - start
    report = await service.shutdown()

    outcomes = [o for share in per_session for o in share if o is not None]
    latencies_ms = [
        o.commit_latency * UNIT * 1000.0
        for o in outcomes
        if o.commit_latency is not None
    ]
    assert report.invariants is not None and report.invariants.holds
    return {
        "protocol": protocol,
        "sessions": CLIENT_SESSIONS,
        "committed": report.committed,
        "aborted": report.aborted,
        "thru t/s": round(len(outcomes) / elapsed, 1) if elapsed else 0.0,
        "p50 ms": round(percentile(latencies_ms, 0.50), 2),
        "p99 ms": round(percentile(latencies_ms, 0.99), 2),
        "msgs": report.messages_total,
    }


async def crash_mid_run():
    """Kill partition 2 halfway through a 2PC stream; audit the survivors."""
    workload = bank_transfer_workload(
        num_transfers=TRANSFERS, num_partitions=PARTITIONS, amount=10, seed=5
    )
    service = AsyncClusterService(
        ClusterConfig(
            num_partitions=PARTITIONS, commit_protocol="2PC", seed=5,
            max_time=2000.0,
        ),
        unit=UNIT,
    )
    await service.start()
    results = []
    for index, txn in enumerate(workload.transactions):
        if index == TRANSFERS // 2:
            service.crash_partition(2)
        results.append(await service.submit(txn, timeout_units=30.0))
    report = await service.shutdown()
    return results, report


def main() -> None:
    print(
        f"{TRANSFERS} bank transfers over {PARTITIONS} partitions, "
        f"{CLIENT_SESSIONS} concurrent client sessions, unit = {UNIT * 1000:.0f} ms/U\n"
    )
    rows = [
        asyncio.run(serve_concurrent(protocol))
        for protocol in ("2PC", "INBAC", "PaxosCommit")
    ]
    print(render_table(rows, title="Live commit throughput (asyncio runtime, wall clock)"))
    print()

    print(f"Crashing partition 2 after transfer {TRANSFERS // 2} (2PC)...")
    results, report = asyncio.run(crash_mid_run())
    completed = sum(1 for r in results if r is not None)
    print(f"  execution class : {report.execution_class}")
    print(f"  completed       : {completed}/{len(results)} "
          f"({report.committed} committed, {report.aborted} aborted)")
    print(f"  left pending    : {sorted(report.pending_transactions)}")
    assert report.invariants is not None
    print(f"  invariant battery on surviving state: "
          f"{'HOLDS' if report.invariants.holds else report.invariants.violations}")


if __name__ == "__main__":
    main()
