#!/usr/bin/env python
"""Regenerate the paper's headline tables from the command line.

Prints Table 5 (the protocol comparison), Table 2/3 (delay- and
message-optimal protocols) and a robustness summary for a chosen ``(n, f)``.

The robustness summary is one :func:`repro.exp.run_sweep` over every
registered protocol x two fault plans — fanned out across worker processes
(``--workers``), with results identical to a serial run.

Run with:  python examples/protocol_shootout.py [n] [f] [--workers W]
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    build_table2,
    build_table3,
    build_table5,
    properties_by_fault_rows,
    render_table,
)
from repro.exp import GridSpec, run_sweep
from repro.protocols.registry import all_protocols
from repro.sim.faults import FaultPlan


def robustness_summary(n: int, f: int, workers: int | None = None):
    grid = GridSpec(
        protocols=sorted(all_protocols()),
        systems=[(n, f)],
        faults=[
            ("crash of P1 at 0", FaultPlan.crash(1, at=0.0)),
            ("late messages from P1", FaultPlan.delay_messages(src=1, delay=40.0)),
        ],
        max_time=400,
    )
    sweep = run_sweep(grid, workers=workers)
    return properties_by_fault_rows(sweep)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n", nargs="?", type=int, default=6)
    parser.add_argument("f", nargs="?", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the robustness sweep (default: one per CPU)")
    args = parser.parse_args()
    n, f = args.n, args.f

    rows5, _ = build_table5(n, f)
    print(render_table(rows5, title=f"Table 5 — protocol comparison (n={n}, f={f})"))
    print()
    print(render_table(build_table2(n, f), title=f"Table 2 — delay-optimal protocols (n={n}, f={f})"))
    print()
    print(render_table(build_table3(n, f), title=f"Table 3 — message-optimal protocols (n={n}, f={f})"))
    print()
    print(render_table(
        robustness_summary(n, f, workers=args.workers),
        title="Properties that survive a crash / a network failure (A/V/T)",
    ))


if __name__ == "__main__":
    main()
