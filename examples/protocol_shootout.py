#!/usr/bin/env python
"""Regenerate the paper's headline tables from the command line.

Prints Table 5 (the protocol comparison), Table 2/3 (delay- and
message-optimal protocols) and a robustness summary for a chosen ``(n, f)``.

Run with:  python examples/protocol_shootout.py [n] [f]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    build_table2,
    build_table3,
    build_table5,
    render_table,
)
from repro.core.checker import check_nbac
from repro.protocols.registry import all_protocols
from repro.sim.faults import FaultPlan
from repro.sim.runner import Simulation


def robustness_summary(n: int, f: int):
    rows = []
    plans = {
        "crash of P1 at 0": FaultPlan.crash(1, at=0.0),
        "late messages from P1": FaultPlan.delay_messages(src=1, delay=40.0),
    }
    for name, info in sorted(all_protocols().items()):
        row = {"protocol": name}
        for label, plan in plans.items():
            sim = Simulation(n=n, f=f, process_class=info.cls, fault_plan=plan, max_time=400)
            report = check_nbac(sim.run([1] * n).trace)
            row[label] = report.satisfied_labels() or "∅"
        rows.append(row)
    return rows


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    f = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    rows5, _ = build_table5(n, f)
    print(render_table(rows5, title=f"Table 5 — protocol comparison (n={n}, f={f})"))
    print()
    print(render_table(build_table2(n, f), title=f"Table 2 — delay-optimal protocols (n={n}, f={f})"))
    print()
    print(render_table(build_table3(n, f), title=f"Table 3 — message-optimal protocols (n={n}, f={f})"))
    print()
    print(render_table(
        robustness_summary(n, f),
        title="Properties that survive a crash / a network failure (A/V/T)",
    ))


if __name__ == "__main__":
    main()
