#!/usr/bin/env python
"""Quickstart: measure how fast a distributed transaction can commit.

Runs the *nice execution* (failure-free, everyone votes yes) of the paper's
INBAC protocol and of the classical baselines, prints their best-case
complexity, and then shows INBAC surviving a crash and a network failure —
the "indulgence" that 2PC lacks.

Run with:  python examples/quickstart.py

To compare protocols across many system sizes, delay regimes and fault plans
at once, use the experiment-sweep engine instead of hand-rolled loops — it
fans trials out over worker processes, and parallel runs reproduce serial
aggregates exactly::

    from repro.exp import GridSpec, run_sweep
    from repro.analysis import render_table
    from repro.sim.faults import FaultPlan

    sweep = run_sweep(GridSpec(
        protocols=["INBAC", "2PC", "PaxosCommit"],   # or omit: whole registry
        systems=[(5, 2), (8, 3), (12, 3)],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.0))],
        seeds=[0, 1, 2],
    ), workers=4)
    print(render_table(sweep.aggregate_rows()))
"""

from __future__ import annotations

from repro import (
    INBAC,
    FaultPlan,
    PaxosCommit,
    Simulation,
    TwoPhaseCommit,
    check_nbac,
    nice_execution_complexity,
    run_nice_execution,
)
from repro.analysis import render_table


def best_case_comparison(n: int = 6, f: int = 2) -> None:
    print(f"Best-case (nice execution) complexity with n={n}, f={f}\n")
    rows = []
    for cls in (TwoPhaseCommit, INBAC, PaxosCommit):
        result = run_nice_execution(cls, n=n, f=f)
        stats = nice_execution_complexity(result.trace)
        rows.append(
            {
                "protocol": cls.protocol_name,
                "message delays": stats.message_delays,
                "messages": stats.messages,
                "all committed": all(v == 1 for v in result.decisions().values()),
            }
        )
    print(render_table(rows))
    print()


def what_happens_under_failures(n: int = 5, f: int = 2) -> None:
    print("What happens when things go wrong?\n")
    scenarios = [
        ("2PC, coordinator crashes after collecting votes", TwoPhaseCommit, FaultPlan.crash(1, at=1.0)),
        ("INBAC, a backup process crashes at time 0", INBAC, FaultPlan.crash(1, at=0.0)),
        ("INBAC, acknowledgements delayed beyond the bound", INBAC,
         FaultPlan.delay_messages(src=1, delay=40.0, after_time=0.5)),
    ]
    rows = []
    for label, cls, plan in scenarios:
        sim = Simulation(n=n, f=f, process_class=cls, fault_plan=plan, max_time=400)
        result = sim.run([1] * n)
        report = check_nbac(result.trace)
        rows.append(
            {
                "scenario": label,
                "decided": f"{len(result.decisions())}/{n - len(result.trace.crashes)} correct",
                "agreement": report.agreement.holds,
                "validity": report.validity.holds,
                "termination": report.termination.holds,
            }
        )
    print(render_table(rows))
    print()
    print("2PC blocks (termination lost) when its coordinator fails; INBAC — the")
    print("paper's indulgent protocol — keeps all three properties while matching")
    print("2PC's two message delays in the common case.")


if __name__ == "__main__":
    best_case_comparison()
    what_happens_under_failures()
