#!/usr/bin/env python
"""Fold every ``benchmarks/BENCH_*.json`` baseline into one trajectory report.

Each benchmark writes its own JSON baseline with its own schema — sweep
throughput keeps ``configs`` + a ``headline`` speedup, the runtime and
recovery benchmarks keep ``rows`` + a sim-unit calibration — so this report
is deliberately generic: for every baseline file it extracts the benchmark
name, the quick flag, the measured-point count, any top-level scalar
headline metrics, and every fingerprint it can find (top-level or per-row),
then renders one summary table plus a per-benchmark detail table.

Output is deterministic (sorted files, sorted keys, no timestamps) so the
markdown and JSON artifacts diff cleanly across commits — the point is a
*trajectory*: re-run the benchmarks, re-run this script, and the diff shows
how the numbers moved.

Stdlib-only on purpose: the smoke suite runs it without PYTHONPATH games.

Usage::

    python scripts/bench_report.py                      # markdown to stdout
    python scripts/bench_report.py --out report.md --json report.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

DEFAULT_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")

#: keys that hold the per-point measurement rows, in lookup order
ROW_KEYS = ("rows", "configs")


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def _fingerprints(payload: Dict) -> List[str]:
    """Every fingerprint-ish value in the baseline, deduped, sorted."""
    found = set()
    for key, value in payload.items():
        if "fingerprint" in key and isinstance(value, str):
            found.add(value)
    for row_key in ROW_KEYS:
        for row in payload.get(row_key, ()):
            if isinstance(row, dict):
                for key, value in row.items():
                    if "fingerprint" in key and isinstance(value, str):
                        found.add(value)
    return sorted(found)


def _headline(payload: Dict) -> Dict[str, object]:
    """Top-level scalar metrics plus a flattened ``headline`` dict if present."""
    metrics: Dict[str, object] = {}
    for key, value in sorted(payload.items()):
        if key in ("benchmark", "quick") or key in ROW_KEYS:
            continue
        if _is_scalar(value):
            metrics[key] = value
        elif key == "headline" and isinstance(value, dict):
            for sub_key, sub_value in sorted(value.items()):
                if _is_scalar(sub_value):
                    metrics[f"headline.{sub_key}"] = sub_value
    return metrics


def summarise_file(path: str) -> Dict[str, object]:
    """One baseline file -> one generic summary record."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: baseline is not a JSON object")
    rows: List[Dict] = []
    row_key: Optional[str] = None
    for candidate in ROW_KEYS:
        if isinstance(payload.get(candidate), list):
            rows = [r for r in payload[candidate] if isinstance(r, dict)]
            row_key = candidate
            break
    return {
        "file": os.path.basename(path),
        "benchmark": payload.get("benchmark", os.path.basename(path)),
        "quick": bool(payload.get("quick", False)),
        "points": len(rows),
        "row_key": row_key,
        "headline": _headline(payload),
        "fingerprints": _fingerprints(payload),
        "rows": rows,
    }


def collect(directory: str) -> List[Dict[str, object]]:
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    return [summarise_file(path) for path in paths]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _markdown_table(rows: List[Dict], columns: List[str]) -> List[str]:
    lines = ["| " + " | ".join(columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(col, "")) for col in columns) + " |")
    return lines


def render_markdown(summaries: List[Dict[str, object]]) -> str:
    lines: List[str] = ["# Benchmark trajectory report", ""]
    if not summaries:
        lines.append("No `BENCH_*.json` baselines found.")
        return "\n".join(lines) + "\n"

    overview = []
    for s in summaries:
        headline = s["headline"]
        headline_text = "; ".join(f"{k}={_fmt(v)}" for k, v in headline.items()) or "-"
        overview.append({
            "benchmark": s["benchmark"],
            "file": s["file"],
            "points": s["points"],
            "quick": s["quick"],
            "headline": headline_text,
        })
    lines.extend(_markdown_table(overview, ["benchmark", "file", "points", "quick", "headline"]))
    lines.append("")

    for s in summaries:
        lines.append(f"## {s['benchmark']}")
        lines.append("")
        if s["fingerprints"]:
            lines.append("fingerprints: " + ", ".join(f"`{fp[:16]}`" for fp in s["fingerprints"]))
            lines.append("")
        rows = s["rows"]
        if rows:
            columns: List[str] = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            lines.extend(_markdown_table(rows, sorted(columns)))
        else:
            lines.append("(no measured rows)")
        lines.append("")
    return "\n".join(lines)


def build_report(directory: str) -> Tuple[str, Dict[str, object]]:
    summaries = collect(directory)
    markdown = render_markdown(summaries)
    payload = {
        "report": "bench_trajectory",
        "benchmarks": [
            {k: v for k, v in s.items() if k != "rows"} for s in summaries
        ],
        "total_points": sum(s["points"] for s in summaries),
    }
    return markdown, payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=DEFAULT_DIR,
                        help="directory holding BENCH_*.json baselines")
    parser.add_argument("--out", default=None,
                        help="write the markdown report here (default: stdout)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the machine-readable summary here")
    args = parser.parse_args(argv)

    markdown, payload = build_report(args.dir)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(markdown)
    else:
        sys.stdout.write(markdown)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not payload["benchmarks"]:
        print("bench_report: no baselines found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
