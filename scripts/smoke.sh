#!/usr/bin/env bash
# Smoke check: everything a PR must keep working, in one command.
#
#   bash scripts/smoke.sh
#
# Runs, in order:
#   1. the tier-1 test suite exactly as ROADMAP.md specifies (collection
#      regressions — e.g. the benchmarks/tests conftest collision — fail here);
#   2. a sanity check that `pytest benchmarks` actually *collects* the
#      bench_*.py experiments instead of silently reporting "no tests ran";
#   3. one fast benchmark end-to-end;
#   4. all four examples.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> [1/4] tier-1 tests (pytest from the repo root)"
python -m pytest -x -q

echo "==> [2/4] benchmark collection (must be > 0 tests)"
collected=$(python -m pytest benchmarks --collect-only -q 2>/dev/null | grep -c '::' || true)
if [ "${collected}" -eq 0 ]; then
    echo "ERROR: 'pytest benchmarks' collected zero tests" >&2
    exit 1
fi
echo "    collected ${collected} benchmark tests"

echo "==> [3/4] one fast benchmark"
python -m pytest benchmarks/bench_table2_delay_optimal.py -q --benchmark-disable

echo "==> [4/4] examples"
for example in quickstart protocol_shootout bank_transfer_kv helios_conflict_commit; do
    echo "--- examples/${example}.py"
    python "examples/${example}.py" > /dev/null
done

echo "smoke: OK"
