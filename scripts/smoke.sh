#!/usr/bin/env bash
# Smoke check: everything a PR must keep working, in one command.
#
#   bash scripts/smoke.sh
#
# Runs, in order:
#   1. the tier-1 test suite exactly as ROADMAP.md specifies (collection
#      regressions — e.g. the benchmarks/tests conftest collision — fail here);
#   2. a sanity check that `pytest benchmarks` actually *collects* the
#      bench_*.py experiments instead of silently reporting "no tests ran";
#   3. a check that every benchmark runs on the repro.exp sweep engine
#      (no hand-rolled protocol x grid loops may sneak back in);
#   4. one small aggregate-mode sweep, asserting it reproduces the in-memory
#      path's aggregate tables byte-for-byte — across trace levels and fold
#      strategies;
#   5. one fast benchmark end-to-end;
#   6. all examples;
#   7. a small sweep-throughput perf smoke: the fast-path core must emit its
#      JSON baseline and every core configuration (legacy emulation, trace
#      levels, fold paths) must produce identical aggregate fingerprints;
#   8. a profile-first smoke: a profiled n=200 sweep (REPRO_PROFILE=1) must
#      dump cProfile data and `python -m repro.obs.profile` must fold it into
#      a top-10 cumulative hot-spot report — the evidence any future perf PR
#      starts from;
#   9. a schedule-exploration smoke: a small adversarial budget over INBAC
#      (zero violations within the resilience bound) and 2PC (the known
#      coordinator-crash termination violation, shrunk to <= 5 decisions),
#      plus a replay-determinism check of one stored ScheduleTrace;
#  10. a cluster-exploration smoke: a tiny cluster-anomaly budget must leave
#      the cluster-invariant battery (atomicity / durability / lock safety)
#      clean for a real commit protocol, while the deliberately broken
#      split-brain coordinator from the test tree is caught and shrunk to a
#      1-minimal counterexample;
#  11. the determinism & spawn-safety static-analysis pass (python -m
#      repro.lint) must exit 0 over src/benchmarks/tests, and the runtime
#      determinism sanitizer must run the reference sweep clean plus the
#      cross-PYTHONHASHSEED fingerprint diff (see docs/determinism.md);
#  12. a bounded runtime round-trip: every registered commit protocol must
#      commit one real transaction over the asyncio transport (repro.runtime,
#      wall clock, hard timeout), and the packaging discovery must ship every
#      subpackage (import repro.runtime from an emulated installed layout);
#  13. a crash-recovery smoke: kill one partition mid-run and rejoin it from
#      its write-ahead log on BOTH backends (sim via FaultPlan.crash_recover,
#      asyncio via the live service), asserting the rejoined run still
#      commits with the invariant battery clean, plus the policy check that
#      the lint scope table exempts DET002 only under src/repro/runtime/ and
#      src/repro/obs/;
#  14. an observability smoke: a sweep streamed through a jsonl progress
#      reporter must fingerprint-match the unobserved run and emit a
#      well-formed event stream, the Chrome trace export must carry every
#      commit phase, and scripts/bench_report.py must fold every BENCH_*.json
#      baseline into one trajectory summary.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> [1/14] tier-1 tests (pytest from the repo root)"
python -m pytest -x -q

echo "==> [2/14] benchmark collection (must be > 0 tests)"
collected=$(python -m pytest benchmarks --collect-only -q 2>/dev/null | grep -c '::' || true)
if [ "${collected}" -eq 0 ]; then
    echo "ERROR: 'pytest benchmarks' collected zero tests" >&2
    exit 1
fi
echo "    collected ${collected} benchmark tests"

echo "==> [3/14] every benchmark is ported onto repro.exp"
for bench in benchmarks/bench_*.py; do
    if ! grep -q "from repro\.exp import" "${bench}"; then
        echo "ERROR: ${bench} does not import repro.exp (hand-rolled sweep loop?)" >&2
        exit 1
    fi
done
echo "    all $(ls benchmarks/bench_*.py | wc -l | tr -d ' ') benchmarks import repro.exp"

echo "==> [4/14] aggregate-mode sweep reproduces the in-memory aggregates"
python - <<'EOF'
from repro.exp import GridSpec, run_sweep

grid = lambda: GridSpec(
    protocols=["INBAC", "2PC"],
    systems=[(5, 2)],
    delays=["uniform"],  # registry-named: spawn-safe, lint-clean
    seeds=range(20),
)
full = run_sweep(grid(), workers=1)
agg = run_sweep(grid(), workers=1, mode="aggregate")
assert agg.aggregate_rows() == full.aggregate_rows(), "aggregate rows diverged"
assert agg.aggregate_fingerprint() == full.aggregate_fingerprint(), "fingerprints diverged"
assert agg.error_count == 0
# the cross-level / cross-fold equalities the fast-path core guarantees
for trace_level in ("full", "counters"):
    for fold in ("trial", "chunk"):
        variant = run_sweep(grid(), workers=2, mode="aggregate",
                            trace_level=trace_level, fold=fold)
        assert variant.aggregate_fingerprint() == full.aggregate_fingerprint(), (
            f"fingerprint diverged at trace_level={trace_level}, fold={fold}"
        )
print(f"    {len(agg)} trials -> {agg.cell_count} cells, fingerprint ok "
      f"(both trace levels x both folds)")
EOF

echo "==> [5/14] one fast benchmark"
python -m pytest benchmarks/bench_table2_delay_optimal.py -q --benchmark-disable

echo "==> [6/14] examples"
for example in examples/*.py; do
    echo "--- ${example}"
    python "${example}" > /dev/null
done

echo "==> [7/14] sweep-throughput perf smoke (fast-path core baseline)"
bench_out=$(mktemp)
python benchmarks/bench_sweep_throughput.py --quick --out "${bench_out}" > /dev/null
python - "${bench_out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as handle:
    baseline = json.load(handle)
assert baseline["benchmark"] == "sweep_throughput"
assert baseline["configs"], "no measured configurations in the baseline"
for config in baseline["configs"]:
    # run_battery already asserted the cross-variant fingerprint equality;
    # re-assert the emitted record is complete
    assert config["fingerprint"], config
    for column in ("legacy t/s", "full+trial t/s", "counters+trial t/s",
                   "counters+heap t/s", "counters+chunk t/s", "speedup"):
        assert config[column] > 0, (column, config)
print(f"    baseline emitted with {len(baseline['configs'])} configs, "
      f"fingerprints identical across core variants")
EOF
rm -f "${bench_out}"

echo "==> [8/14] profile-first smoke (cProfile top-10 hot spots, n=200)"
# measure before optimising: profile the heavy grid point the throughput
# work targets and print where the cycles actually go.  REPRO_PROFILE dumps
# one .prof per unit of work; the report folds them all.
profile_dir=$(mktemp -d)
REPRO_PROFILE=1 REPRO_PROFILE_DIR="${profile_dir}" python - <<'EOF'
from repro.exp import GridSpec, run_sweep

grid = GridSpec(protocols=["INBAC"], systems=[(200, 40)], seeds=range(2),
                max_time=1000)
agg = run_sweep(grid, workers=1, mode="aggregate")
assert agg.error_count == 0, agg.sample_errors
EOF
python -m repro.obs.profile "${profile_dir}" --sort cumulative --limit 10
rm -rf "${profile_dir}"

echo "==> [9/14] schedule-exploration smoke (adversarial search + replay)"
python - <<'EOF'
from repro.explore import ScheduleTrace, explore, replay_trial
from repro.exp.spec import GridSpec

# INBAC is indulgent: no admissible schedule within the resilience bound
# may break any of agreement / validity / termination
inbac = explore("INBAC", n=5, f=2, budget=40, strategy="random-walk", seed=7)
assert not inbac.errors, inbac.errors[:1]
assert inbac.violation_count == 0, [v.describe() for v in inbac.violations]

# 2PC blocks: the walk must find the coordinator-crash termination
# violation and shrink it to a tiny counterexample
twopc = explore("2PC", n=5, f=2, budget=40, strategy="random-walk", seed=7)
assert not twopc.errors, twopc.errors[:1]
violations = twopc.violations_of("termination")
assert violations, "2PC termination violation not found within the budget"
shrunk = violations[0].shrunk
assert shrunk is not None and len(shrunk) <= 5, shrunk

# replay determinism: the stored ScheduleTrace survives serialisation and
# reproduces the identical trace fingerprint
grid = GridSpec(protocols=["2PC"], systems=[(5, 2)],
                schedules=[("random-walk", "random-walk", {})],
                seeds=[violations[0].base_seed], trace_level="full")
stored = ScheduleTrace.from_json(shrunk.to_json())
replays = [replay_trial(grid.trials()[0], stored) for _ in range(2)]
fingerprints = {r.extra["trace_fingerprint"] for r in replays}
assert fingerprints == {violations[0].shrunk_fingerprint}, fingerprints
print(f"    INBAC: 0 violations in {inbac.schedules_run} schedules; "
      f"2PC: {twopc.violation_count} violations, counterexample of "
      f"{len(shrunk)} decision(s) replays deterministically")
EOF

echo "==> [10/14] cluster-exploration smoke (invariant battery + injected bug)"
python - <<'EOF'
import sys
sys.path.insert(0, "tests")  # the injected-bug fixture lives in the test tree

from broken_protocols import SplitBrainCommit
from repro.explore import explore

WORKLOAD = ("uniform3", "uniform", {"transactions": 4})

# the real protocol survives crash-point enumeration over every partition
# and the client coordinator with a clean invariant battery
clean = explore("INBAC", n=3, f=1, budget=16, workload=WORKLOAD,
                preset="cluster-anomaly", max_time=150.0)
assert not clean.errors, clean.errors[:1]
assert clean.violation_count == 0, [v.describe() for v in clean.violations]

# the split-brain fixture must be caught (atomicity: one partition applies a
# transaction another aborted) and shrunk to a single crash decision
broken = explore(("SplitBrain2PC", SplitBrainCommit), n=3, f=1, budget=16,
                 workload=WORKLOAD, preset="cluster-anomaly", max_time=150.0)
assert not broken.errors, broken.errors[:1]
hits = broken.violations_of("agreement")
assert hits, "the split-brain atomicity bug was not found"
assert any("committed on partitions" in d for d in hits[0].details), hits[0]
assert hits[0].shrunk is not None and len(hits[0].shrunk) == 1, hits[0].shrunk
print(f"    INBAC: battery clean over {clean.schedules_run} schedules; "
      f"SplitBrain2PC: {broken.violation_count} violations, shrunk to "
      f"{len(hits[0].shrunk)} decision")
EOF

echo "==> [11/14] determinism lint + runtime sanitizer"
python -m repro.lint src benchmarks tests --sanitize

echo "==> [12/14] runtime round-trip (asyncio transport, hard timeout)"
python - <<'EOF2'
import signal

# a hard wall-clock ceiling for the whole stage: a runtime deadlock must
# fail the smoke, not hang it
def _expired(signum, frame):
    raise TimeoutError("runtime round-trip exceeded the 120 s stage budget")

signal.signal(signal.SIGALRM, _expired)
signal.alarm(120)

from repro.protocols.base import COMMIT
from repro.protocols.registry import protocol_names
from repro.runtime import run_commit

n, f = 4, 1
for name in protocol_names():
    # the timer-driven protocols only terminate while the synchronous-model
    # assumption holds on the wall clock; a loop stall under host load
    # violates it, so a bounded retry is the correct harness response
    for _ in range(3):
        result = run_commit(name, n, f, [1] * n, timeout_units=200.0)
        if not result.timed_out:
            break
    assert not result.timed_out, f"{name} timed out on the asyncio runtime"
    assert result.errors == [], (name, result.errors)
    assert result.all_agree and result.decision == COMMIT, (name, result.decisions)
    assert len(result.decisions) == n, (name, result.decisions)
signal.alarm(0)
print(f"    {len(protocol_names())} protocols committed for real over AsyncEnv")
EOF2
python -m pytest tests/test_packaging.py -q

echo "==> [13/14] crash recovery: kill-and-rejoin one partition per backend"
python - <<'EOF3'
import signal

# a hard wall-clock ceiling: a recovery deadlock must fail the smoke, not
# hang it
def _expired(signum, frame):
    raise TimeoutError("crash-recovery smoke exceeded the 120 s stage budget")

signal.signal(signal.SIGALRM, _expired)
signal.alarm(120)

from repro.db import ClusterConfig, run_cluster
from repro.db.transaction import Operation, Transaction
from repro.protocols.base import COMMIT
from repro.sim.faults import FaultPlan

TXNS = [
    Transaction.of("t-early",
                   [Operation.write(1, "a", 10), Operation.write(2, "b", 20)],
                   submit_time=0.0),
    Transaction.of("t-after-rejoin",
                   [Operation.write(2, "b", 21), Operation.write(3, "c", 30)],
                   submit_time=60.0),
]
committed = lambda report: {
    o.txn_id for o in report.outcomes if o.decision == COMMIT
}

for backend in ("sim", "asyncio"):
    config = ClusterConfig(
        num_partitions=3, commit_protocol="INBAC", commit_f=1, seed=5,
        max_time=400.0,
        fault_plan=FaultPlan.crash_recover(2, at=20.0, rejoin_at=40.0),
    )
    report = run_cluster(config, TXNS, backend=backend)
    assert committed(report) == {"t-early", "t-after-rejoin"}, (
        backend, committed(report))
    assert report.invariants is not None and report.invariants.holds, backend
    [event] = report.recovery_events
    assert event.pid == 2 and event.rejoined_at > event.crashed_at, event
    assert event.replayed_transactions >= 1, event

# the lint scope table is policy: DET002 is the only scoped rule, exempt
# only under the runtime and observability packages (both exist to read the
# wall clock; OBS001 keeps the obs package out of deterministic layers)
from repro.lint.rules import SCOPE_EXEMPTIONS

assert SCOPE_EXEMPTIONS == {
    "DET002": ("src/repro/runtime/", "src/repro/obs/")
}, SCOPE_EXEMPTIONS
signal.alarm(0)
print("    both backends rejoined P2 from its WAL and kept committing; "
      "lint scope policy pinned")
EOF3

echo "==> [14/14] observability: progress stream, trace export, bench report"
obs_dir=$(mktemp -d)
python - "${obs_dir}" <<'EOF4'
import json
import sys

from repro.exp import GridSpec, run_sweep
from repro.obs import read_jsonl

obs_dir = sys.argv[1]
grid = lambda: GridSpec(
    protocols=["INBAC", "2PC"],
    systems=[(5, 2)],
    delays=["uniform"],
    seeds=range(10),
)
plain = run_sweep(grid(), workers=1, mode="aggregate", fold="chunk")
progress_path = f"{obs_dir}/progress.jsonl"
observed = run_sweep(grid(), workers=1, mode="aggregate", fold="chunk",
                     progress=f"jsonl:{progress_path}")
# observation never changes bytes: the hard constraint of the obs package
assert observed.aggregate_fingerprint() == plain.aggregate_fingerprint(), (
    "observed sweep fingerprint diverged from the unobserved run")
assert observed.meta == plain.meta

records = read_jsonl(progress_path)
assert records[0]["phase"] == "start", records[:1]
assert records[-1]["phase"] == "summary", records[-1:]
chunks = [r for r in records if r["phase"] == "chunk"]
assert chunks, "no chunk-progress events in the stream"
assert records[-1]["trials_done"] == records[-1]["trials_total"] == 20
assert all(r["event"] == "sweep.progress" for r in records)
print(f"    progress stream: {len(records)} events "
      f"({len(chunks)} chunks), fingerprint identical to the unobserved run")
EOF4

python -m repro.obs.export --chrome "${obs_dir}/trace.json" > /dev/null
python - "${obs_dir}" <<'EOF5'
import json
import sys

from repro.obs.tracing import TXN_PHASES

with open(f"{sys.argv[1]}/trace.json") as handle:
    trace = json.load(handle)
spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
names = {e["name"] for e in spans}
missing = set(TXN_PHASES) - names
assert not missing, f"trace export missing commit phases: {missing}"
print(f"    chrome trace: {len(spans)} spans covering all of {TXN_PHASES}")
EOF5

python scripts/bench_report.py --out "${obs_dir}/report.md" --json "${obs_dir}/report.json"
python - "${obs_dir}" <<'EOF6'
import json
import sys

with open(f"{sys.argv[1]}/report.json") as handle:
    report = json.load(handle)
names = {entry["benchmark"] for entry in report["benchmarks"]}
for expected in ("sweep_throughput", "obs_overhead"):
    assert expected in names, (expected, sorted(names))
assert report["total_points"] > 0
print(f"    bench report folded {len(names)} baselines, "
      f"{report['total_points']} measured points")
EOF6
rm -rf "${obs_dir}"

echo "smoke: OK"
