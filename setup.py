"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (where PEP 660 editable installs
are unavailable, e.g. offline containers) can still do a development install
with ``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
