"""Setuptools entry point — the project's single source of packaging truth.

There is deliberately no ``pyproject.toml``: offline containers without the
``wheel`` package (no PEP 517 build isolation) must still be able to install
with ``pip install -e . --no-build-isolation`` or ``python setup.py develop``,
so everything lives here.

Packages are *discovered*, never listed by hand: ``find_packages(where="src")``
picks up every ``__init__.py``-bearing directory under ``src/``, so a new
subpackage (as ``repro.runtime`` and ``repro.env`` once were) ships the moment
it exists.  ``tests/test_packaging.py`` installs the discovered set into a
scratch site-packages layout and asserts ``import repro.runtime`` works from
it — a hand-maintained list would fail that test the day it went stale.
"""

from setuptools import find_packages, setup

setup(
    name="repro-inbac",
    version="0.7.0",
    description=(
        "Reproduction of Guerraoui & Wang, 'How fast can a distributed "
        "transaction commit?' (PODS 2017): commit protocols, a deterministic "
        "discrete-event simulator, an asyncio transport runtime, and a "
        "transactional key-value cluster driven by both."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    zip_safe=False,
)
