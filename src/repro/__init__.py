"""repro — reproduction of "How Fast can a Distributed Transaction Commit?".

Guerraoui & Wang, PODS 2017.

The package provides:

* a deterministic discrete-event simulator of synchronous / eventually
  synchronous message-passing systems (:mod:`repro.sim`);
* the paper's atomic-commit problem framework — properties, robustness
  lattice, the Table 1 lower bounds and the two complexity measures
  (:mod:`repro.core`);
* implementations of every protocol the paper defines or compares against,
  including INBAC (:mod:`repro.protocols`), on top of a Paxos-based uniform
  consensus substrate (:mod:`repro.consensus`);
* a partitioned transactional key-value store whose commit layer is pluggable
  with any of those protocols (:mod:`repro.db`), plus workload generators
  (:mod:`repro.workloads`);
* closed-form complexity formulas, table renderers and measured-vs-paper
  comparison helpers used by the benchmarks (:mod:`repro.analysis`);
* a declarative, parallel experiment-sweep engine for cross-product
  comparisons over protocol x (n, f) x delay model x fault plan x votes x
  seed (:mod:`repro.exp`).

Quickstart
----------
>>> from repro import run_nice_execution, INBAC, nice_execution_complexity
>>> result = run_nice_execution(INBAC, n=5, f=2)
>>> stats = nice_execution_complexity(result.trace)
>>> stats.message_delays, stats.messages
(2.0, 20)
"""

from repro.core import (
    PropertyPair,
    check_nbac,
    delay_lower_bound,
    is_nice_execution,
    message_lower_bound,
    nice_execution_complexity,
    table1_bounds,
)
from repro.errors import (
    ConfigurationError,
    LockConflict,
    ProtocolViolationError,
    ReproError,
    SimulationError,
    StorageError,
    TransactionAborted,
)
from repro.protocols import (
    ABORT,
    ANBAC,
    COMMIT,
    INBAC,
    AvNBACDelayOptimal,
    AvNBACMessageOptimal,
    FasterPaxosCommit,
    NMinus1PlusFNBAC,
    OneNBAC,
    PaxosCommit,
    ThreePhaseCommit,
    TwoNMinus2NBAC,
    TwoNMinus2PlusFNBAC,
    TwoPhaseCommit,
    ZeroNBAC,
    all_protocols,
    get_protocol,
    table5_protocols,
)
from repro.exp import GridSpec, SweepResult, run_sweep
from repro.sim import FaultPlan, FixedDelay, Simulation, SimulationResult, Trace
from repro.sim.runner import run_nice_execution

# Arm the runtime determinism sanitizer when REPRO_SANITIZE=1.  Running this
# at import time means spawn workers (which re-import repro) re-arm
# automatically; when the flag is unset this is a single dict lookup.
from repro.lint.sanitizer import maybe_install as _maybe_install_sanitizer

_maybe_install_sanitizer()

__version__ = "1.0.0"

__all__ = [
    "ABORT",
    "ANBAC",
    "AvNBACDelayOptimal",
    "AvNBACMessageOptimal",
    "COMMIT",
    "ConfigurationError",
    "FasterPaxosCommit",
    "FaultPlan",
    "FixedDelay",
    "GridSpec",
    "INBAC",
    "LockConflict",
    "NMinus1PlusFNBAC",
    "OneNBAC",
    "PaxosCommit",
    "PropertyPair",
    "ProtocolViolationError",
    "ReproError",
    "Simulation",
    "SimulationResult",
    "SimulationError",
    "StorageError",
    "SweepResult",
    "ThreePhaseCommit",
    "Trace",
    "TransactionAborted",
    "TwoNMinus2NBAC",
    "TwoNMinus2PlusFNBAC",
    "TwoPhaseCommit",
    "ZeroNBAC",
    "all_protocols",
    "check_nbac",
    "delay_lower_bound",
    "get_protocol",
    "is_nice_execution",
    "message_lower_bound",
    "nice_execution_complexity",
    "run_nice_execution",
    "run_sweep",
    "table1_bounds",
    "table5_protocols",
    "__version__",
]
