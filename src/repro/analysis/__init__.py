"""Analysis helpers: closed-form complexity, table rendering and comparison.

* :mod:`repro.analysis.formulas` — the paper's published complexity formulas
  (Tables 1, 4 and 5) as functions of ``n`` and ``f``.
* :mod:`repro.analysis.tables` — builders that regenerate the paper's tables,
  either purely from the formulas or by actually running the protocols in the
  simulator and measuring.
* :mod:`repro.analysis.compare` — measured-vs-paper comparison records.
* :mod:`repro.analysis.render` — plain-text table rendering used by the
  examples and benchmarks.
* :mod:`repro.analysis.sweeps` — reshaping of :mod:`repro.exp` sweep results
  into report tables (robustness matrix, per-fault property summaries).
"""

from repro.analysis.compare import ComparisonRow, compare_measured_to_paper
from repro.analysis.formulas import (
    paper_table4,
    paper_table5_delays,
    paper_table5_messages,
    protocol_paper_formulas,
)
from repro.analysis.render import render_table
from repro.analysis.sweeps import (
    cluster_summary_rows,
    properties_by_fault_rows,
    robustness_matrix_rows,
)
from repro.analysis.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    measure_nice_execution,
    measurement_grid,
    table1_protocols,
    table2_protocols,
    table3_protocols,
    table4_protocols,
)

__all__ = [
    "ComparisonRow",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "cluster_summary_rows",
    "compare_measured_to_paper",
    "measure_nice_execution",
    "measurement_grid",
    "paper_table4",
    "paper_table5_delays",
    "paper_table5_messages",
    "properties_by_fault_rows",
    "protocol_paper_formulas",
    "render_table",
    "robustness_matrix_rows",
    "table1_protocols",
    "table2_protocols",
    "table3_protocols",
    "table4_protocols",
]
