"""Measured-vs-paper comparison records used by EXPERIMENTS.md and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class ComparisonRow:
    """One (protocol, n, f, metric) comparison of a measured value to the paper's."""

    experiment: str
    protocol: str
    n: int
    f: int
    metric: str
    measured: float
    paper: Optional[float]

    @property
    def matches(self) -> bool:
        """Exact match (the simulator reproduces the abstract model exactly)."""
        if self.paper is None:
            return True
        return abs(self.measured - self.paper) < 1e-9

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "metric": self.metric,
            "measured": self.measured,
            "paper": self.paper,
            "match": "yes" if self.matches else "no",
        }


def compare_measured_to_paper(rows: List[ComparisonRow]) -> Dict[str, object]:
    """Aggregate a list of comparisons into a short summary."""
    total = len(rows)
    exact = sum(1 for r in rows if r.matches)
    mismatches = [r for r in rows if not r.matches]
    return {
        "total": total,
        "exact_matches": exact,
        "mismatches": [r.as_dict() for r in mismatches],
        "match_rate": (exact / total) if total else 1.0,
    }
