"""The paper's published complexity formulas (Tables 4 and 5).

Table 5 compares the protocols "assuming that each protocol starts when n
processes send messages spontaneously" (footnote 13); under that convention
the paper removes one delay from 2PC and two delays from the PaxosCommit
variants relative to their original descriptions, and ``n - 1`` messages from
each of the three.  The formulas below are the table entries as printed.

The simulator's own accounting (registry ``expected_*`` formulas) agrees with
the printed message counts for every protocol; for the two chain protocols
(aNBAC, (n-1+f)NBAC and the (2n-2[+f]) family) the measured *delay* count is
one unit larger than the paper's because the paper counts delays from the
first chain message rather than from the spontaneous start.  The benchmarks
report both numbers side by side.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError


def _check(n: int, f: int) -> None:
    if n < 2 or not 1 <= f <= n - 1:
        raise ConfigurationError(f"invalid parameters n={n}, f={f}")


# --------------------------------------------------------------------------- #
# Table 5 — INBAC vs (n-1+f)NBAC vs 1NBAC vs 2PC vs PaxosCommit vs Faster PC
# --------------------------------------------------------------------------- #
_TABLE5_DELAYS: Dict[str, Callable[[int, int], float]] = {
    "1NBAC": lambda n, f: 1,
    "(n-1+f)NBAC": lambda n, f: 2 * f + n - 1,
    "INBAC": lambda n, f: 2,
    "2PC": lambda n, f: 2,
    "PaxosCommit": lambda n, f: 3,
    "FasterPaxosCommit": lambda n, f: 2,
}

_TABLE5_MESSAGES: Dict[str, Callable[[int, int], int]] = {
    "1NBAC": lambda n, f: n * n - n,
    "(n-1+f)NBAC": lambda n, f: f + n - 1,
    "INBAC": lambda n, f: 2 * f * n,
    "2PC": lambda n, f: 2 * n - 2,
    "PaxosCommit": lambda n, f: n * f + 2 * n - 2,
    "FasterPaxosCommit": lambda n, f: 2 * f * n + 2 * n - 2 * f - 2,
}

_TABLE5_PROBLEM: Dict[str, str] = {
    "1NBAC": "Sync. NBAC",
    "(n-1+f)NBAC": "Sync. NBAC",
    "INBAC": "Indulgent",
    "2PC": "Blocking",
    "PaxosCommit": "Indulgent",
    "FasterPaxosCommit": "Indulgent",
}


def paper_table5_delays(protocol: str, n: int, f: int) -> float:
    """The #delays entry of Table 5 for ``protocol``."""
    _check(n, f)
    return _TABLE5_DELAYS[protocol](n, f)


def paper_table5_messages(protocol: str, n: int, f: int) -> int:
    """The #messages entry of Table 5 for ``protocol``."""
    _check(n, f)
    return _TABLE5_MESSAGES[protocol](n, f)


def paper_table5_problem(protocol: str) -> str:
    """The "atomic commit (problem solved)" row of Table 5."""
    return _TABLE5_PROBLEM[protocol]


def protocol_paper_formulas() -> Dict[str, Tuple[Callable, Callable]]:
    """``{protocol: (delays(n, f), messages(n, f))}`` for the Table 5 columns."""
    return {
        name: (_TABLE5_DELAYS[name], _TABLE5_MESSAGES[name]) for name in _TABLE5_DELAYS
    }


# --------------------------------------------------------------------------- #
# Table 4 — indulgent atomic commit and synchronous NBAC, this paper vs prior
# --------------------------------------------------------------------------- #
def paper_table4(n: int, f: int) -> Dict[str, Dict[str, object]]:
    """Table 4: tight bounds for indulgent atomic commit and synchronous NBAC."""
    _check(n, f)
    return {
        "indulgent atomic commit (this paper)": {
            "delays": 2,
            "messages": 2 * n - 2 + f,
            "note": "message bound holds for f >= 2",
        },
        "synchronous NBAC (this paper)": {
            "delays": 1,
            "messages": n - 1 + f,
            "note": "",
        },
        "synchronous NBAC (Dwork-Skeen et al.)": {
            "delays": None,
            "messages": 2 * n - 2,
            "note": "known only for f = n - 1",
        },
    }


# --------------------------------------------------------------------------- #
# Theorem 5 — messages needed by any 2-delay indulgent protocol
# --------------------------------------------------------------------------- #
def two_delay_message_lower_bound(n: int, f: int) -> int:
    """Theorem 5: any 2-delay protocol for the (AVT, A)-or-stronger problems
    exchanges at least ``2 f n`` messages in nice executions."""
    _check(n, f)
    return 2 * f * n


def one_delay_message_lower_bound(n: int, f: int) -> int:
    """Section 3.2 remark: a 1-delay protocol with validity under crashes
    needs at least ``n (n - 1)`` messages."""
    _check(n, f)
    return n * (n - 1)
