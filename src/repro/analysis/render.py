"""Plain-text table rendering for benchmarks, examples and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Column order follows ``columns`` when given, else the key order of the
    first row.  Missing values render as ``-``.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols: List[str] = list(columns) if columns else list(rows[0].keys())
    table = [[_format_cell(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(str(c)), max(len(line[i]) for line in table)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def render_matrix(
    cells: Dict[tuple, object],
    row_labels: Iterable[str],
    col_labels: Iterable[str],
    corner: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a 2-D matrix keyed by ``(row_label, col_label)`` (Table 1 style)."""
    row_labels = list(row_labels)
    col_labels = list(col_labels)
    rows = []
    for r in row_labels:
        row = {corner or "row": r}
        for c in col_labels:
            row[c] = cells.get((r, c), "")
        rows.append(row)
    return render_table(rows, columns=[corner or "row"] + col_labels, title=title)
