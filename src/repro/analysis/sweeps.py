"""Turn :mod:`repro.exp` sweep results into the repo's report tables.

The sweep engine returns structured per-trial records; the helpers here join
them with registry metadata and reshape them into the row dicts that
:func:`repro.analysis.render.render_table` prints — the robustness matrix of
experiment E9, and the per-fault property summary used by the protocol
shoot-out example.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import SimulationError
from repro.exp.results import SweepResult, held_label


def robustness_matrix_rows(sweep: SweepResult) -> List[Dict[str, Any]]:
    """The E9 robustness matrix, joined with each protocol's claimed cell.

    One row per protocol; one column per execution class observed in the
    sweep, holding the ``A``/``V``/``T`` properties that held in *every*
    trial of that class; plus the Table 1 cell the registry claims for the
    protocol (``-`` for unregistered protocols such as ablation variants).
    """
    from repro.protocols.registry import all_protocols

    registry = all_protocols()
    rows = []
    for row in sweep.robustness_rows():
        info = registry.get(row["protocol"])
        cell = str(info.cell) if info is not None and info.cell is not None else "-"
        rows.append({**row, "claimed_cell": cell})
    return rows


def properties_by_fault_rows(sweep: SweepResult) -> List[Dict[str, Any]]:
    """One row per protocol, one column per fault plan in the sweep.

    Each cell is the compact label of the properties that held in every trial
    of that (protocol, fault plan) pair — the shape of the shoot-out
    example's "what survives a crash / a network failure" summary.
    """
    by_protocol: Dict[str, Dict[str, list]] = {}
    fault_labels: List[str] = []
    for trial in sweep.trials:
        per_fault = by_protocol.setdefault(trial.protocol, {})
        per_fault.setdefault(trial.fault_label, []).append(trial)
        if trial.fault_label not in fault_labels:
            fault_labels.append(trial.fault_label)
    rows = []
    for protocol in sorted(by_protocol):
        row: Dict[str, Any] = {"protocol": protocol}
        for label in fault_labels:
            trials = by_protocol[protocol].get(label, [])
            if not trials:
                row[label] = "-"
                continue
            row[label] = held_label(trials) or "∅"
        rows.append(row)
    return rows


def cluster_summary_rows(sweep: SweepResult) -> List[Dict[str, Any]]:
    """One :meth:`~repro.db.cluster.ClusterReport.summary_row` per cluster trial.

    Cluster trials (those run with a workload axis) carry their report's
    summary in ``TrialResult.extra``; this pulls them back out in trial order
    — the shape the database benchmarks render and assert on.
    """
    rows = []
    for trial in sweep.trials:
        if trial.workload_label == "-":
            continue
        if trial.error is not None:
            raise SimulationError(
                f"cluster trial for {trial.protocol} x {trial.workload_label} "
                f"failed:\n{trial.error}"
            )
        rows.append(dict(trial.extra))
    return rows
