"""Builders that regenerate the paper's tables.

Each ``build_table*`` function returns a list of dict rows (render with
:func:`repro.analysis.render.render_table`) and, where applicable, combines
the paper's closed-form entries with *measured* values obtained by actually
running the protocols' nice executions in the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.compare import ComparisonRow
from repro.analysis.formulas import (
    paper_table4,
    paper_table5_delays,
    paper_table5_messages,
    paper_table5_problem,
)
from repro.core.lattice import PropertyPair, all_cells, prop_label
from repro.core.metrics import NiceExecutionComplexity, nice_execution_complexity
from repro.core.table1 import cell_bound
from repro.protocols.registry import all_protocols, get_protocol, table5_protocols
from repro.sim.runner import run_nice_execution

# Which registered protocol matches each optimal cell, as in Tables 2 and 3.
TABLE2_DELAY_OPTIMAL: Dict[Tuple[str, str], str] = {
    ("AV", "AV"): "avNBAC-delay",
    ("AT", "AT"): "0NBAC",
    ("AVT", "VT"): "1NBAC",
    ("AVT", "AVT"): "INBAC",
}

TABLE3_MESSAGE_OPTIMAL: Dict[Tuple[str, str], str] = {
    ("AT", "AT"): "0NBAC",
    ("AV", "A"): "aNBAC",
    ("AVT", "T"): "(n-1+f)NBAC",
    ("AV", "AV"): "avNBAC",
    ("AVT", "VT"): "(2n-2)NBAC",
    ("AVT", "AVT"): "(2n-2+f)NBAC",
}


def measure_nice_execution(protocol: str, n: int, f: int, seed: int = 0) -> NiceExecutionComplexity:
    """Run a nice execution of a registered protocol and measure its complexity."""
    info = get_protocol(protocol)
    result = run_nice_execution(info.cls, n=n, f=f, seed=seed)
    complexity = nice_execution_complexity(result.trace)
    return complexity


# --------------------------------------------------------------------------- #
# Table 1 — the 27 lower bounds, with measured confirmation where we have a
# matching protocol
# --------------------------------------------------------------------------- #
def build_table1(n: int, f: int, measure: bool = True) -> List[Dict[str, object]]:
    """One row per non-empty cell of Table 1."""
    rows: List[Dict[str, object]] = []
    matching = dict(TABLE3_MESSAGE_OPTIMAL)
    for cell in all_cells():
        bound = cell_bound(cell)
        cf, nf = cell.label()
        row: Dict[str, object] = {
            "CF": cf,
            "NF": nf,
            "delay_bound": bound.delays,
            "message_bound": bound.messages_symbolic,
            "message_bound_value": bound.messages_for(n, f),
        }
        protocol_name = matching.get((cf, nf))
        if protocol_name is not None and measure:
            measured = measure_nice_execution(protocol_name, n, f)
            row["matching_protocol"] = protocol_name
            row["measured_messages"] = measured.messages
            row["meets_message_bound"] = (
                "yes" if measured.messages == bound.messages_for(n, f) else "no"
            )
        delay_protocol = TABLE2_DELAY_OPTIMAL.get((cf, nf))
        if delay_protocol is not None and measure:
            measured = measure_nice_execution(delay_protocol, n, f)
            row["delay_protocol"] = delay_protocol
            row["measured_delays"] = measured.message_delays
            row["meets_delay_bound"] = (
                "yes" if measured.message_delays == bound.delays else "no"
            )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 2 — delay-optimal protocols
# --------------------------------------------------------------------------- #
def build_table2(n: int, f: int) -> List[Dict[str, object]]:
    rows = []
    for (cf, nf), protocol in TABLE2_DELAY_OPTIMAL.items():
        cell = PropertyPair.of(cf, nf)
        bound = cell_bound(cell)
        measured = measure_nice_execution(protocol, n, f)
        rows.append(
            {
                "cell": f"({cf}, {nf})",
                "protocol": protocol,
                "delay_bound": bound.delays,
                "measured_delays": measured.message_delays,
                "measured_messages": measured.messages,
                "optimal": "yes" if measured.message_delays == bound.delays else "no",
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 3 — message-optimal protocols
# --------------------------------------------------------------------------- #
def build_table3(n: int, f: int) -> List[Dict[str, object]]:
    rows = []
    for (cf, nf), protocol in TABLE3_MESSAGE_OPTIMAL.items():
        cell = PropertyPair.of(cf, nf)
        bound = cell_bound(cell)
        measured = measure_nice_execution(protocol, n, f)
        rows.append(
            {
                "cell": f"({cf}, {nf})",
                "protocol": protocol,
                "message_bound": bound.messages_symbolic,
                "message_bound_value": bound.messages_for(n, f),
                "measured_messages": measured.messages,
                "measured_delays": measured.message_delays,
                "optimal": "yes"
                if measured.messages == bound.messages_for(n, f)
                else "no",
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 4 — indulgent atomic commit vs synchronous NBAC
# --------------------------------------------------------------------------- #
def build_table4(n: int, f: int) -> List[Dict[str, object]]:
    paper = paper_table4(n, f)
    inbac = measure_nice_execution("INBAC", n, f)
    nf_nbac = measure_nice_execution("(n-1+f)NBAC", n, f)
    one_nbac = measure_nice_execution("1NBAC", n, f)
    msg_opt = measure_nice_execution("(2n-2+f)NBAC", n, f)
    rows = [
        {
            "problem": "indulgent atomic commit",
            "bound_delays": paper["indulgent atomic commit (this paper)"]["delays"],
            "bound_messages": paper["indulgent atomic commit (this paper)"]["messages"],
            "delay_optimal_protocol": "INBAC",
            "measured_delays": inbac.message_delays,
            "message_optimal_protocol": "(2n-2+f)NBAC",
            "measured_messages": msg_opt.messages,
        },
        {
            "problem": "synchronous NBAC",
            "bound_delays": paper["synchronous NBAC (this paper)"]["delays"],
            "bound_messages": paper["synchronous NBAC (this paper)"]["messages"],
            "delay_optimal_protocol": "1NBAC",
            "measured_delays": one_nbac.message_delays,
            "message_optimal_protocol": "(n-1+f)NBAC",
            "measured_messages": nf_nbac.messages,
        },
        {
            "problem": "synchronous NBAC (prior work, f = n-1 only)",
            "bound_delays": None,
            "bound_messages": paper["synchronous NBAC (Dwork-Skeen et al.)"]["messages"],
            "delay_optimal_protocol": None,
            "measured_delays": None,
            "message_optimal_protocol": None,
            "measured_messages": None,
        },
    ]
    return rows


# --------------------------------------------------------------------------- #
# Table 5 — the protocol shoot-out
# --------------------------------------------------------------------------- #
def build_table5(
    n: int, f: int, protocols: Optional[Sequence[str]] = None
) -> Tuple[List[Dict[str, object]], List[ComparisonRow]]:
    """Measured and paper complexity for the Table 5 protocols.

    Returns the display rows and the individual comparison records used by
    EXPERIMENTS.md.
    """
    protocols = list(protocols) if protocols else table5_protocols()
    rows: List[Dict[str, object]] = []
    comparisons: List[ComparisonRow] = []
    registry = all_protocols()
    for name in protocols:
        measured = measure_nice_execution(name, n, f)
        paper_delays = paper_table5_delays(name, n, f) if name in _table5_names() else None
        paper_messages = (
            paper_table5_messages(name, n, f) if name in _table5_names() else None
        )
        rows.append(
            {
                "protocol": name,
                "n": n,
                "f": f,
                "measured_delays": measured.message_delays,
                "paper_delays": paper_delays,
                "measured_messages": measured.messages,
                "paper_messages": paper_messages,
                "consensus_messages": measured.consensus_messages,
                "problem": paper_table5_problem(name)
                if name in _table5_names()
                else registry[name].notes,
            }
        )
        if paper_delays is not None:
            comparisons.append(
                ComparisonRow("table5", name, n, f, "delays", measured.message_delays, paper_delays)
            )
        if paper_messages is not None:
            comparisons.append(
                ComparisonRow("table5", name, n, f, "messages", measured.messages, paper_messages)
            )
    return rows, comparisons


def _table5_names() -> set:
    return {"1NBAC", "(n-1+f)NBAC", "INBAC", "2PC", "PaxosCommit", "FasterPaxosCommit"}
