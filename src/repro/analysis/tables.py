"""Builders that regenerate the paper's tables.

Each ``build_table*`` function returns a list of dict rows (render with
:func:`repro.analysis.render.render_table`) and, where applicable, combines
the paper's closed-form entries with *measured* values obtained by running
the protocols' nice executions through one :mod:`repro.exp` sweep per table
(instead of the hand-rolled per-protocol measurement loops the builders used
to carry).  Callers that already ran a sweep — the benchmarks fan the
measurement grids out across worker processes — pass it in via ``sweep=``;
otherwise the builder runs the grid serially itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.compare import ComparisonRow
from repro.analysis.formulas import (
    paper_table4,
    paper_table5_delays,
    paper_table5_messages,
    paper_table5_problem,
)
from repro.core.lattice import PropertyPair, all_cells, prop_label
from repro.core.metrics import NiceExecutionComplexity, nice_execution_complexity
from repro.core.table1 import cell_bound
from repro.errors import ConfigurationError, SimulationError
from repro.exp import GridSpec, SweepResult, TrialResult, run_sweep
from repro.protocols.registry import all_protocols, get_protocol, table5_protocols
from repro.sim.runner import run_nice_execution

# Which registered protocol matches each optimal cell, as in Tables 2 and 3.
TABLE2_DELAY_OPTIMAL: Dict[Tuple[str, str], str] = {
    ("AV", "AV"): "avNBAC-delay",
    ("AT", "AT"): "0NBAC",
    ("AVT", "VT"): "1NBAC",
    ("AVT", "AVT"): "INBAC",
}

TABLE3_MESSAGE_OPTIMAL: Dict[Tuple[str, str], str] = {
    ("AT", "AT"): "0NBAC",
    ("AV", "A"): "aNBAC",
    ("AVT", "T"): "(n-1+f)NBAC",
    ("AV", "AV"): "avNBAC",
    ("AVT", "VT"): "(2n-2)NBAC",
    ("AVT", "AVT"): "(2n-2+f)NBAC",
}


def measure_nice_execution(protocol: str, n: int, f: int, seed: int = 0) -> NiceExecutionComplexity:
    """Run a nice execution of a registered protocol and measure its complexity.

    Single-protocol probe (includes trace-only measures such as causal
    depth); the table builders below measure whole protocol *sets* through
    one :func:`repro.exp.run_sweep` instead.
    """
    info = get_protocol(protocol)
    result = run_nice_execution(info.cls, n=n, f=f, seed=seed)
    complexity = nice_execution_complexity(result.trace)
    return complexity


# --------------------------------------------------------------------------- #
# sweep-backed measurement: one repro.exp grid per table
# --------------------------------------------------------------------------- #
def measurement_grid(protocols: Sequence[str], n: int, f: int, seed: int = 0) -> GridSpec:
    """The nice-execution measurement grid for a set of registered protocols.

    ``FixedDelay(1)``, failure-free, all-yes votes — exactly the setting the
    paper's best-case complexity columns are measured in.  Duplicate protocol
    names are collapsed (order-preserving) so tables that measure the same
    protocol in several cells still run it once.
    """
    ordered = list(dict.fromkeys(protocols))
    return GridSpec(protocols=ordered, systems=[(n, f)], seeds=[seed])


def table1_protocols() -> List[str]:
    """Every protocol Table 1's measured columns need (message + delay matches)."""
    return list(
        dict.fromkeys(
            list(TABLE3_MESSAGE_OPTIMAL.values()) + list(TABLE2_DELAY_OPTIMAL.values())
        )
    )


def table2_protocols() -> List[str]:
    return list(TABLE2_DELAY_OPTIMAL.values())


def table3_protocols() -> List[str]:
    return list(TABLE3_MESSAGE_OPTIMAL.values())


def table4_protocols() -> List[str]:
    return ["INBAC", "(n-1+f)NBAC", "1NBAC", "(2n-2+f)NBAC"]


def _measured_by_protocol(
    protocols: Sequence[str],
    n: int,
    f: int,
    sweep: Optional[SweepResult],
    workers: Optional[int],
) -> Dict[str, TrialResult]:
    """One nice-execution TrialResult per protocol, from ``sweep`` or a fresh run.

    The builders read ``last_decision`` (message delays),
    ``messages_until_last_decision`` (the paper's received-by-last-decision
    count) and ``messages_consensus`` off the records — the same quantities
    :func:`measure_nice_execution` reports, measured by the sweep engine.
    """
    if sweep is None:
        sweep = run_sweep(measurement_grid(protocols, n, f), workers=workers)
    measured: Dict[str, TrialResult] = {}
    for trial in sweep.trials:
        if (trial.n, trial.f) != (n, f):
            raise ConfigurationError(
                f"measurement sweep ran at (n={trial.n}, f={trial.f}) but the "
                f"table is being built for (n={n}, f={f})"
            )
        if trial.error is not None:
            raise SimulationError(
                f"measurement trial for {trial.protocol} (n={trial.n}, f={trial.f}) "
                f"failed:\n{trial.error}"
            )
        measured[trial.protocol] = trial
    missing = [p for p in dict.fromkeys(protocols) if p not in measured]
    if missing:
        raise ConfigurationError(
            f"measurement sweep is missing protocols {missing}; "
            f"it covers {sorted(measured)}"
        )
    return measured


# --------------------------------------------------------------------------- #
# Table 1 — the 27 lower bounds, with measured confirmation where we have a
# matching protocol
# --------------------------------------------------------------------------- #
def build_table1(
    n: int,
    f: int,
    measure: bool = True,
    sweep: Optional[SweepResult] = None,
    workers: Optional[int] = 1,
) -> List[Dict[str, object]]:
    """One row per non-empty cell of Table 1.

    With ``measure=True`` the matching protocols are measured by one
    :func:`repro.exp.run_sweep` over :func:`table1_protocols` (pass a
    pre-run ``sweep=`` of :func:`measurement_grid` to reuse it).
    """
    measured_by_protocol: Dict[str, TrialResult] = {}
    if measure:
        measured_by_protocol = _measured_by_protocol(
            table1_protocols(), n, f, sweep, workers
        )
    rows: List[Dict[str, object]] = []
    matching = dict(TABLE3_MESSAGE_OPTIMAL)
    for cell in all_cells():
        bound = cell_bound(cell)
        cf, nf = cell.label()
        row: Dict[str, object] = {
            "CF": cf,
            "NF": nf,
            "delay_bound": bound.delays,
            "message_bound": bound.messages_symbolic,
            "message_bound_value": bound.messages_for(n, f),
        }
        protocol_name = matching.get((cf, nf))
        if protocol_name is not None and measure:
            measured = measured_by_protocol[protocol_name]
            row["matching_protocol"] = protocol_name
            row["measured_messages"] = measured.messages_until_last_decision
            row["meets_message_bound"] = (
                "yes"
                if measured.messages_until_last_decision == bound.messages_for(n, f)
                else "no"
            )
        delay_protocol = TABLE2_DELAY_OPTIMAL.get((cf, nf))
        if delay_protocol is not None and measure:
            measured = measured_by_protocol[delay_protocol]
            row["delay_protocol"] = delay_protocol
            row["measured_delays"] = measured.last_decision
            row["meets_delay_bound"] = (
                "yes" if measured.last_decision == bound.delays else "no"
            )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 2 — delay-optimal protocols
# --------------------------------------------------------------------------- #
def build_table2(
    n: int,
    f: int,
    sweep: Optional[SweepResult] = None,
    workers: Optional[int] = 1,
) -> List[Dict[str, object]]:
    measured_by_protocol = _measured_by_protocol(table2_protocols(), n, f, sweep, workers)
    rows = []
    for (cf, nf), protocol in TABLE2_DELAY_OPTIMAL.items():
        cell = PropertyPair.of(cf, nf)
        bound = cell_bound(cell)
        measured = measured_by_protocol[protocol]
        rows.append(
            {
                "cell": f"({cf}, {nf})",
                "protocol": protocol,
                "delay_bound": bound.delays,
                "measured_delays": measured.last_decision,
                "measured_messages": measured.messages_until_last_decision,
                "optimal": "yes" if measured.last_decision == bound.delays else "no",
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 3 — message-optimal protocols
# --------------------------------------------------------------------------- #
def build_table3(
    n: int,
    f: int,
    sweep: Optional[SweepResult] = None,
    workers: Optional[int] = 1,
) -> List[Dict[str, object]]:
    measured_by_protocol = _measured_by_protocol(table3_protocols(), n, f, sweep, workers)
    rows = []
    for (cf, nf), protocol in TABLE3_MESSAGE_OPTIMAL.items():
        cell = PropertyPair.of(cf, nf)
        bound = cell_bound(cell)
        measured = measured_by_protocol[protocol]
        rows.append(
            {
                "cell": f"({cf}, {nf})",
                "protocol": protocol,
                "message_bound": bound.messages_symbolic,
                "message_bound_value": bound.messages_for(n, f),
                "measured_messages": measured.messages_until_last_decision,
                "measured_delays": measured.last_decision,
                "optimal": "yes"
                if measured.messages_until_last_decision == bound.messages_for(n, f)
                else "no",
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 4 — indulgent atomic commit vs synchronous NBAC
# --------------------------------------------------------------------------- #
def build_table4(
    n: int,
    f: int,
    sweep: Optional[SweepResult] = None,
    workers: Optional[int] = 1,
) -> List[Dict[str, object]]:
    paper = paper_table4(n, f)
    measured = _measured_by_protocol(table4_protocols(), n, f, sweep, workers)
    inbac = measured["INBAC"]
    nf_nbac = measured["(n-1+f)NBAC"]
    one_nbac = measured["1NBAC"]
    msg_opt = measured["(2n-2+f)NBAC"]
    rows = [
        {
            "problem": "indulgent atomic commit",
            "bound_delays": paper["indulgent atomic commit (this paper)"]["delays"],
            "bound_messages": paper["indulgent atomic commit (this paper)"]["messages"],
            "delay_optimal_protocol": "INBAC",
            "measured_delays": inbac.last_decision,
            "message_optimal_protocol": "(2n-2+f)NBAC",
            "measured_messages": msg_opt.messages_until_last_decision,
        },
        {
            "problem": "synchronous NBAC",
            "bound_delays": paper["synchronous NBAC (this paper)"]["delays"],
            "bound_messages": paper["synchronous NBAC (this paper)"]["messages"],
            "delay_optimal_protocol": "1NBAC",
            "measured_delays": one_nbac.last_decision,
            "message_optimal_protocol": "(n-1+f)NBAC",
            "measured_messages": nf_nbac.messages_until_last_decision,
        },
        {
            "problem": "synchronous NBAC (prior work, f = n-1 only)",
            "bound_delays": None,
            "bound_messages": paper["synchronous NBAC (Dwork-Skeen et al.)"]["messages"],
            "delay_optimal_protocol": None,
            "measured_delays": None,
            "message_optimal_protocol": None,
            "measured_messages": None,
        },
    ]
    return rows


# --------------------------------------------------------------------------- #
# Table 5 — the protocol shoot-out
# --------------------------------------------------------------------------- #
def build_table5(
    n: int,
    f: int,
    protocols: Optional[Sequence[str]] = None,
    sweep: Optional[SweepResult] = None,
    workers: Optional[int] = 1,
) -> Tuple[List[Dict[str, object]], List[ComparisonRow]]:
    """Measured and paper complexity for the Table 5 protocols.

    Returns the display rows and the individual comparison records used by
    EXPERIMENTS.md.
    """
    protocols = list(protocols) if protocols else table5_protocols()
    measured_by_protocol = _measured_by_protocol(protocols, n, f, sweep, workers)
    rows: List[Dict[str, object]] = []
    comparisons: List[ComparisonRow] = []
    registry = all_protocols()
    for name in protocols:
        measured = measured_by_protocol[name]
        paper_delays = paper_table5_delays(name, n, f) if name in _table5_names() else None
        paper_messages = (
            paper_table5_messages(name, n, f) if name in _table5_names() else None
        )
        rows.append(
            {
                "protocol": name,
                "n": n,
                "f": f,
                "measured_delays": measured.last_decision,
                "paper_delays": paper_delays,
                "measured_messages": measured.messages_until_last_decision,
                "paper_messages": paper_messages,
                "consensus_messages": measured.messages_consensus,
                "problem": paper_table5_problem(name)
                if name in _table5_names()
                else registry[name].notes,
            }
        )
        if paper_delays is not None:
            comparisons.append(
                ComparisonRow("table5", name, n, f, "delays", measured.last_decision, paper_delays)
            )
        if paper_messages is not None:
            comparisons.append(
                ComparisonRow(
                    "table5", name, n, f, "messages",
                    measured.messages_until_last_decision, paper_messages,
                )
            )
    return rows, comparisons


def _table5_names() -> set:
    return {"1NBAC", "(n-1+f)NBAC", "INBAC", "2PC", "PaxosCommit", "FasterPaxosCommit"}
