"""Consensus substrate.

The paper's optimal protocols (INBAC, 1NBAC, 0NBAC, (2n-2+f)NBAC, ...) use an
underlying *uniform consensus* module — called ``uc`` or ``iuc`` in the
pseudocode — only when something goes wrong (a crash is suspected or a message
is late).  Definition 5 requires validity (only proposed values are decided),
agreement and termination in a network-failure (eventually synchronous)
system.

This package provides two interchangeable implementations of that module:

* :class:`~repro.consensus.paxos.PaxosConsensus` — single-decree Paxos with
  retrying proposers; this is the default and is what gives the commit
  protocols their indulgence (safety under arbitrary delays, liveness once the
  system stabilises with a correct majority).
* :class:`~repro.consensus.fixed_leader.FixedLeaderConsensus` — a minimal
  fixed-coordinator consensus used by fast unit tests and by executions where
  the coordinator is known to be correct.

Both are :class:`~repro.sim.process.ProcessComponent` sub-protocols: they are
attached to a host process and share its network links and timers.
"""

from repro.consensus.fixed_leader import FixedLeaderConsensus
from repro.consensus.interfaces import ConsensusComponent
from repro.consensus.paxos import PaxosConsensus

__all__ = ["ConsensusComponent", "FixedLeaderConsensus", "PaxosConsensus"]
