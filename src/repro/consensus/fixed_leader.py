"""A minimal fixed-coordinator consensus used by fast unit tests.

Every proposer forwards its proposal to a fixed coordinator (the lowest
process id by default); the coordinator decides the first proposal it receives
and broadcasts the decision.  This satisfies validity and agreement but *not*
termination if the coordinator crashes — it exists purely as a lightweight,
deterministic stand-in for Paxos in tests that only exercise failure-free or
coordinator-correct scenarios, and as a baseline in the consensus unit tests
themselves.  The commit protocols default to :class:`PaxosConsensus`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.consensus.interfaces import ConsensusComponent
from repro.env import Process


class FixedLeaderConsensus(ConsensusComponent):
    """Forward-to-coordinator consensus (coordinator = process ``leader``)."""

    def __init__(
        self,
        host: Process,
        name: str = "cons",
        on_decide: Optional[Callable[[Any], None]] = None,
        leader: int = 1,
    ):
        super().__init__(host, name, on_decide)
        self.leader = leader
        self._leader_decided = False

    def propose(self, value: Any) -> None:
        if self.proposed or self.decided:
            return
        self.proposed = True
        self.proposal = value
        if self.host.pid == self.leader:
            self._leader_decide(value)
        else:
            self.send(self.leader, ("FWD", value))

    def _leader_decide(self, value: Any) -> None:
        if self._leader_decided:
            return
        self._leader_decided = True
        self.broadcast(("DEC", value), include_self=False)
        self._deliver_decision(value)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "FWD" and self.host.pid == self.leader:
            self._leader_decide(payload[1])
        elif kind == "DEC":
            self._deliver_decision(payload[1])

    def on_timeout(self, name: str) -> None:  # pragma: no cover - no timers used
        pass
