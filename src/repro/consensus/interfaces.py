"""Abstract interface of the consensus module used by the commit protocols."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.env import Process, ProcessComponent


class ConsensusComponent(ProcessComponent):
    """Uniform consensus as a hosted sub-protocol (the paper's ``uc`` / ``iuc``).

    Interface
    ---------
    ``propose(value)``
        The host proposes ``value``; may be called at most once per instance.
    ``on_decide`` callback
        Invoked exactly once with the decided value (on every correct host
        whose component learns the decision), regardless of whether this host
        proposed.

    Properties (Definition 5 of the paper):

    * *Validity* — the decided value was proposed by some process.
    * *Agreement* — no two processes decide differently.
    * *Termination* — every correct process eventually decides, provided a
      majority of processes is correct and the system is eventually
      synchronous.
    """

    def __init__(
        self,
        host: Process,
        name: str = "cons",
        on_decide: Optional[Callable[[Any], None]] = None,
    ):
        super().__init__(host, name)
        self.on_decide = on_decide
        self.proposed = False
        self.decided = False
        self.decision: Any = None
        self.proposal: Any = None

    # -- public API ------------------------------------------------------ #
    def propose(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def has_decided(self) -> bool:
        return self.decided

    # -- shared plumbing -------------------------------------------------- #
    def _deliver_decision(self, value: Any) -> None:
        """Record the decision and fire the host callback exactly once."""
        if self.decided:
            return
        self.decided = True
        self.decision = value
        if self.on_decide is not None:
            self.on_decide(value)

    def majority(self) -> int:
        """Size of a strict majority of the host's process group."""
        return self.host.n // 2 + 1
