"""Single-decree Paxos as the indulgent uniform-consensus module.

Every process plays all three roles (proposer, acceptor, learner).  Proposers
use ballots of the form ``pid + attempt * n`` so that ballots are globally
unique and each proposer can always pick a fresh, higher ballot.  A proposer
that does not learn a decision within its (exponentially backed-off,
per-process staggered) retry period starts a new round — this is what provides
termination once the system stabilises, while the usual Paxos quorum rules
provide uniform agreement and validity under arbitrary asynchrony.

Message flow (module-tagged, so it never pollutes the commit protocol's
best-case message counts):

* ``("PREPARE", b)``                     proposer -> all acceptors
* ``("PROMISE", b, ab, av)``             acceptor -> proposer
* ``("ACCEPT", b, v)``                   proposer -> all acceptors
* ``("ACCEPTED", b, v)``                 acceptor -> all learners
* ``("DECIDED", v)``                     any decided process -> all (fast learn)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.consensus.interfaces import ConsensusComponent
from repro.env import Process

_NO_BALLOT = -1


class PaxosConsensus(ConsensusComponent):
    """Single-decree Paxos hosted inside a protocol process."""

    #: base retry period, in units of the message-delay bound U
    RETRY_PERIOD = 4.0
    #: per-attempt additive backoff, staggered by pid to avoid duelling
    RETRY_BACKOFF = 2.0

    def __init__(
        self,
        host: Process,
        name: str = "cons",
        on_decide: Optional[Callable[[Any], None]] = None,
    ):
        super().__init__(host, name, on_decide)
        # acceptor state
        self._promised: int = _NO_BALLOT
        self._accepted_ballot: int = _NO_BALLOT
        self._accepted_value: Any = None
        # proposer state
        self._attempt = 0
        self._current_ballot: Optional[int] = None
        self._promises: Dict[int, Tuple[int, Any]] = {}
        self._accept_sent = False
        self._accept_value: Any = None
        self._highest_ballot_seen: int = _NO_BALLOT
        # learner state
        self._accepted_votes: Dict[int, Dict[int, Any]] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def propose(self, value: Any) -> None:
        """Propose ``value``; starts a proposal round led by this process."""
        if self.proposed or self.decided:
            return
        self.proposed = True
        self.proposal = value
        self._start_round()

    # ------------------------------------------------------------------ #
    # proposer
    # ------------------------------------------------------------------ #
    def _ballot(self) -> int:
        return self.host.pid + self._attempt * self.host.n

    def _start_round(self) -> None:
        if self.decided:
            return
        self._current_ballot = self._ballot()
        self._promises = {}
        self._accept_sent = False
        self._accept_value = None
        self.broadcast(("PREPARE", self._current_ballot))
        self._arm_retry()

    def _arm_retry(self) -> None:
        retry_in = self.RETRY_PERIOD + self._attempt * self.RETRY_BACKOFF + self.host.pid * 0.25
        self.set_timer(self.now() + retry_in, name="retry")

    def _retransmit_round(self) -> None:
        """Re-send the current round's messages without changing the ballot.

        With reliable (but possibly very slow) channels this is what provides
        liveness: a proposer that sees no competing ballot keeps its round
        alive instead of restarting with a higher ballot, so a round whose
        replies are merely late can still complete.
        """
        if self._accept_sent:
            self.broadcast(("ACCEPT", self._current_ballot, self._accept_value))
        else:
            self.broadcast(("PREPARE", self._current_ballot))
        self._arm_retry()

    def _on_promise(self, src: int, ballot: int, accepted_ballot: int, accepted_value: Any) -> None:
        if self.decided or self._accept_sent:
            return
        if ballot != self._current_ballot:
            return
        self._promises[src] = (accepted_ballot, accepted_value)
        if len(self._promises) < self.majority():
            return
        # choose the value accepted with the highest ballot, else our proposal
        best_ballot = _NO_BALLOT
        chosen = self.proposal
        for acc_ballot, acc_value in self._promises.values():
            if acc_ballot > best_ballot and acc_ballot != _NO_BALLOT:
                best_ballot = acc_ballot
                chosen = acc_value
        self._accept_sent = True
        self._accept_value = chosen
        self.broadcast(("ACCEPT", ballot, chosen))

    # ------------------------------------------------------------------ #
    # acceptor
    # ------------------------------------------------------------------ #
    def _on_prepare(self, src: int, ballot: int) -> None:
        self._note_ballot(ballot, src)
        if ballot > self._promised:
            self._promised = ballot
            self.send(src, ("PROMISE", ballot, self._accepted_ballot, self._accepted_value))

    def _on_accept(self, src: int, ballot: int, value: Any) -> None:
        self._note_ballot(ballot, src)
        if ballot >= self._promised:
            self._promised = ballot
            self._accepted_ballot = ballot
            self._accepted_value = value
            self.broadcast(("ACCEPTED", ballot, value))

    def _note_ballot(self, ballot: int, src: int) -> None:
        """Track competing ballots to decide between retransmitting and re-balloting."""
        if src != self.host.pid and ballot > self._highest_ballot_seen:
            self._highest_ballot_seen = ballot

    # ------------------------------------------------------------------ #
    # learner
    # ------------------------------------------------------------------ #
    def _on_accepted(self, src: int, ballot: int, value: Any) -> None:
        votes = self._accepted_votes.setdefault(ballot, {})
        votes[src] = value
        if len(votes) >= self.majority() and not self.decided:
            self._decide(value)

    def _decide(self, value: Any) -> None:
        self._deliver_decision(value)
        self.broadcast(("DECIDED", value), include_self=False)

    # ------------------------------------------------------------------ #
    # component event handlers
    # ------------------------------------------------------------------ #
    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "PREPARE":
            self._on_prepare(src, payload[1])
        elif kind == "PROMISE":
            self._on_promise(src, payload[1], payload[2], payload[3])
        elif kind == "ACCEPT":
            self._on_accept(src, payload[1], payload[2])
        elif kind == "ACCEPTED":
            self._on_accepted(src, payload[1], payload[2])
        elif kind == "DECIDED":
            if not self.decided:
                self._deliver_decision(payload[1])

    def on_timeout(self, name: str) -> None:
        if name != "retry" or self.decided or not self.proposed:
            return
        self._attempt += 1
        if self._attempt > 200:  # safety valve for pathological adversaries
            return
        if (
            self._current_ballot is not None
            and self._highest_ballot_seen <= self._current_ballot
        ):
            # no competing proposer observed: the round is merely slow, keep it
            self._retransmit_round()
            return
        # a higher ballot is out there: restart above it
        while self._ballot() <= self._highest_ballot_seen:
            self._attempt += 1
        self._start_round()
