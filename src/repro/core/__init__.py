"""Core framework: the NBAC problem, its property lattice and its complexity.

This package is the paper's Sections 2 and 3 made executable:

* :mod:`repro.core.properties` — validity, agreement, termination as checkable
  predicates over execution traces (Definition 1).
* :mod:`repro.core.lattice` — the robustness lattice of property pairs
  ``(X, Y)`` and the reduction from 64 to 27 distinct problems.
* :mod:`repro.core.table1` — the tight lower bounds of Table 1 (message delays
  and messages) as closed-form functions of ``n`` and ``f``.
* :mod:`repro.core.metrics` — the two complexity measures (number of messages,
  number of message delays) computed from traces.
* :mod:`repro.core.checker` — execution classification plus "which properties
  must hold in this execution for this problem" evaluation.
"""

from repro.core.checker import NBACReport, check_nbac, evaluate_problem
from repro.core.lattice import ALL_PROPS, Prop, PropertyPair, all_cells, robustness_leq
from repro.core.metrics import (
    causal_message_delays,
    decision_message_delays,
    messages_exchanged,
    messages_until_last_decision,
    nice_execution_complexity,
)
from repro.core.properties import (
    PropertyCheck,
    check_agreement,
    check_termination,
    check_validity,
    is_nice_execution,
)
from repro.core.table1 import CellBound, delay_lower_bound, message_lower_bound, table1_bounds

__all__ = [
    "ALL_PROPS",
    "CellBound",
    "NBACReport",
    "Prop",
    "PropertyCheck",
    "PropertyPair",
    "all_cells",
    "causal_message_delays",
    "check_agreement",
    "check_nbac",
    "check_termination",
    "check_validity",
    "decision_message_delays",
    "delay_lower_bound",
    "evaluate_problem",
    "is_nice_execution",
    "message_lower_bound",
    "messages_exchanged",
    "messages_until_last_decision",
    "nice_execution_complexity",
    "robustness_leq",
    "table1_bounds",
]
