"""Execution-level NBAC checking and problem-level evaluation.

Two levels:

* :func:`check_nbac` — check all three properties on a single trace and
  return a structured :class:`NBACReport`.
* :func:`evaluate_problem` — given a problem cell ``(X, Y)`` from the
  robustness lattice and a trace, determine which properties were *required*
  for the trace's execution class (failure-free → all three; crash-failure →
  ``X``; network-failure → ``Y``) and whether the protocol met them.  This is
  the engine behind the robustness-matrix experiment (E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.lattice import (
    ALL_PROPS,
    Prop,
    PropertyPair,
    canonical_props,
    prop_label,
)
from repro.core.properties import (
    PropertyCheck,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.trace import Trace


@dataclass
class NBACReport:
    """All property checks for one execution."""

    validity: PropertyCheck
    agreement: PropertyCheck
    termination: PropertyCheck
    execution_class: str = "failure-free"

    def check(self, prop: Prop) -> PropertyCheck:
        return {
            Prop.VALIDITY: self.validity,
            Prop.AGREEMENT: self.agreement,
            Prop.TERMINATION: self.termination,
        }[prop]

    def holds(self, props: FrozenSet[Prop]) -> bool:
        return all(self.check(p).holds for p in props)

    def solves_nbac(self) -> bool:
        return self.holds(ALL_PROPS)

    def violations(self) -> List[str]:
        return (
            list(self.validity.violations)
            + list(self.agreement.violations)
            + list(self.termination.violations)
        )

    def satisfied_labels(self) -> str:
        """Compact label of the properties that hold, e.g. ``"AV"`` or ``"AVT"``."""
        held = frozenset(p for p in ALL_PROPS if self.check(p).holds)
        return prop_label(held)


def check_nbac(trace: Trace, execution_class: Optional[str] = None) -> NBACReport:
    """Check validity, agreement and termination on one trace."""
    cls = execution_class or trace.metadata.get("execution_class", "failure-free")
    return NBACReport(
        validity=check_validity(trace, cls),
        agreement=check_agreement(trace),
        termination=check_termination(trace),
        execution_class=cls,
    )


@dataclass
class ProblemEvaluation:
    """Did the protocol satisfy what the problem cell requires for this execution?"""

    cell: PropertyPair
    execution_class: str
    required: FrozenSet[Prop]
    report: NBACReport
    satisfied: bool
    failures: List[str] = field(default_factory=list)


def required_properties(cell: PropertyPair, execution_class: str) -> FrozenSet[Prop]:
    """Which properties the problem ``cell`` requires for an execution class."""
    if execution_class == "failure-free":
        return ALL_PROPS
    if execution_class == "crash-failure":
        return cell.cf
    if execution_class == "network-failure":
        return cell.nf
    raise ValueError(f"unknown execution class {execution_class!r}")


def evaluate_problem(
    trace: Trace, cell: PropertyPair, execution_class: Optional[str] = None
) -> ProblemEvaluation:
    """Evaluate one execution of a protocol against one problem cell."""
    cls = execution_class or trace.metadata.get("execution_class", "failure-free")
    report = check_nbac(trace, cls)
    required = required_properties(cell, cls)
    # canonical A, V, T order: ``required`` is a frozenset of a str-Enum,
    # whose iteration order follows PYTHONHASHSEED (repro.lint rule DET001)
    failures = [
        violation
        for prop in canonical_props(required)
        for violation in report.check(prop).violations
    ]
    return ProblemEvaluation(
        cell=cell,
        execution_class=cls,
        required=required,
        report=report,
        satisfied=not failures,
        failures=failures,
    )


def robustness_row(
    traces_by_class: Dict[str, List[Trace]],
) -> Dict[str, str]:
    """Summarise which properties hold per execution class over many traces.

    For each class, a property counts as held only if it holds in *every*
    supplied trace of that class (the paper's "every crash-failure execution
    satisfies X" quantifier).
    """
    summary: Dict[str, str] = {}
    for cls, traces in traces_by_class.items():
        held = set(ALL_PROPS)
        for trace in traces:
            report = check_nbac(trace, cls)
            held = {p for p in held if report.check(p).holds}
        summary[cls] = prop_label(frozenset(held))
    return summary
