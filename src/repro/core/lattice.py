"""The robustness lattice of atomic-commit problems.

The paper parameterises the atomic commit problem by a *property pair*
``(X, Y)``: the protocol must (a) solve NBAC in every failure-free execution,
(b) satisfy the set ``X ⊆ {A, V, T}`` of properties in every crash-failure
execution, and (c) satisfy ``Y ⊆ {A, V, T}`` in every network-failure
execution.  Because every crash-failure execution is also an execution of the
eventually-synchronous (network-failure) system, a property required in
network-failure executions is automatically required in crash-failure ones;
the 64 syntactic pairs therefore collapse to the 27 pairs with ``Y ⊆ X``
(the non-empty cells of Table 1).

``(X, Y)`` is *less robust* than ``(U, V)`` when ``X ⊆ U`` and ``Y ⊆ V``; this
partial order is what the paper uses to prove lower bounds only for the least
robust member of each complexity group and to pick the locally-maximal cells
for which a matching protocol is needed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError


class Prop(str, Enum):
    """The three NBAC properties."""

    AGREEMENT = "A"
    VALIDITY = "V"
    TERMINATION = "T"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_PROPS: FrozenSet[Prop] = frozenset(Prop)

_CANONICAL_ORDER = (Prop.AGREEMENT, Prop.VALIDITY, Prop.TERMINATION)


def _normalise(props: Iterable) -> FrozenSet[Prop]:
    """Accept iterables of Prop or of single-letter strings like ``"AVT"``."""
    if isinstance(props, str):
        props = list(props)
    result = set()
    for p in props:
        if isinstance(p, Prop):
            result.add(p)
        else:
            try:
                result.add(Prop(str(p).upper()))
            except ValueError as exc:
                raise ConfigurationError(f"unknown property {p!r}") from exc
    return frozenset(result)


def prop_label(props: FrozenSet[Prop]) -> str:
    """Render a property set in the paper's notation (``∅``, ``A``, ``AVT``, ...)."""
    if not props:
        return "∅"
    return "".join(p.value for p in _CANONICAL_ORDER if p in props)


def canonical_props(props: FrozenSet[Prop]) -> tuple:
    """A property set as a tuple in the paper's fixed A, V, T order.

    ``Prop`` is a str-Enum, so iterating a ``frozenset`` of properties
    follows ``PYTHONHASHSEED``; use this wherever the iteration order can
    reach an ordered result (violation lists, rendered labels, digests).
    """
    return tuple(p for p in _CANONICAL_ORDER if p in props)


@dataclass(frozen=True)
class PropertyPair:
    """One cell of Table 1: properties required under crash / network failures."""

    cf: FrozenSet[Prop]
    nf: FrozenSet[Prop]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cf", _normalise(self.cf))
        object.__setattr__(self, "nf", _normalise(self.nf))

    # -- constructors ----------------------------------------------------- #
    @classmethod
    def of(cls, cf: Iterable, nf: Iterable) -> "PropertyPair":
        return cls(cf=_normalise(cf), nf=_normalise(nf))

    # -- structure --------------------------------------------------------- #
    def is_canonical(self) -> bool:
        """Whether this is one of the 27 non-empty cells (``nf ⊆ cf``)."""
        return self.nf <= self.cf

    def canonicalised(self) -> "PropertyPair":
        """Map an "empty" cell (X, Y) to the equivalent cell (X ∪ Y, Y)."""
        return PropertyPair(cf=self.cf | self.nf, nf=self.nf)

    def label(self) -> Tuple[str, str]:
        return (prop_label(self.cf), prop_label(self.nf))

    def __str__(self) -> str:
        cf, nf = self.label()
        return f"(CF={cf}, NF={nf})"

    # -- the paper's named problems ---------------------------------------- #
    @classmethod
    def indulgent_atomic_commit(cls) -> "PropertyPair":
        """The most robust problem: NBAC in every network-failure execution."""
        return cls.of("AVT", "AVT")

    @classmethod
    def synchronous_nbac(cls) -> "PropertyPair":
        """NBAC in every crash-failure execution, nothing required under network failures."""
        return cls.of("AVT", "")

    @classmethod
    def weakest(cls) -> "PropertyPair":
        """Only failure-free executions need to solve NBAC."""
        return cls.of("", "")


def robustness_leq(a: PropertyPair, b: PropertyPair) -> bool:
    """``a`` is less (or equally) robust than ``b``: ``a.cf ⊆ b.cf`` and ``a.nf ⊆ b.nf``."""
    return a.cf <= b.cf and a.nf <= b.nf


def all_cells() -> List[PropertyPair]:
    """The 27 non-empty cells of Table 1, in row-major (NF, CF) order."""
    subsets = []
    for r in range(4):
        for combo in itertools.combinations(_CANONICAL_ORDER, r):
            subsets.append(frozenset(combo))
    cells = []
    for nf in subsets:
        for cf in subsets:
            pair = PropertyPair(cf=cf, nf=nf)
            if pair.is_canonical():
                cells.append(pair)
    return cells


def least_robust(cells: Sequence[PropertyPair]) -> List[PropertyPair]:
    """Cells of the group that are minimal under the robustness order."""
    return [
        c
        for c in cells
        if not any(robustness_leq(other, c) and other != c for other in cells)
    ]


def local_maxima(cells: Sequence[PropertyPair]) -> List[PropertyPair]:
    """Cells of the group that are maximal under the robustness order.

    The paper designs one matching protocol per local maximum of each
    complexity group (Tables 2 and 3).
    """
    return [
        c
        for c in cells
        if not any(robustness_leq(c, other) and other != c for other in cells)
    ]
