"""Complexity measures over execution traces.

The paper uses two measures (Section 2.4):

* **number of messages** — messages exchanged among the ``n`` processes
  (messages a process sends to itself are excluded).  For best-case accounting
  the paper charges an execution only with the messages that have been
  *received* by the time the last process decides; messages still in flight
  (for example 1NBAC's ``[D, d]`` round, which exists only to help slow or
  suspected-failed processes) do not count towards the nice-execution cost.
  Both counts are exposed so benchmarks can report them side by side.

* **number of message delays** — following Lamport: if local computation is
  instantaneous and every message is received exactly one unit of time after
  it was sent, the number of message delays of an execution is its number of
  time units.  With the simulator's ``FixedDelay(1.0)`` model and proposals at
  time 0, this is simply the (latest) decision timestamp.  A time-free
  alternative — the longest causal chain of messages — is also provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.trace import Trace


def messages_exchanged(trace: Trace, module: Optional[str] = None) -> int:
    """Total number of counted messages sent during the execution."""
    return trace.message_count(module)


def messages_until_last_decision(trace: Trace, module: Optional[str] = None) -> int:
    """Messages received by the time the last process decides (the paper's count)."""
    last = trace.last_decision_time()
    if last is None:
        return trace.message_count(module)
    return trace.messages_received_by(last, module)


def decision_message_delays(trace: Trace, per_process: bool = False):
    """Number of message delays until decision (time-based, Lamport-style).

    Measured from the earliest proposal (time 0 in all our experiments) to the
    latest decision, in units of the delay bound ``U``.
    """
    if not trace.decisions:
        return None
    start = 0.0
    if trace.proposals:
        start = min(rec.time for rec in trace.proposals.values())
    if per_process:
        return {
            pid: (rec.time - start) / trace.u for pid, rec in trace.decisions.items()
        }
    return (trace.last_decision_time() - start) / trace.u


def first_decision_delays(trace: Trace) -> Optional[float]:
    """Message delays until the *first* decision (used for 2PC-style protocols)."""
    first = trace.first_decision_time()
    if first is None:
        return None
    start = 0.0
    if trace.proposals:
        start = min(rec.time for rec in trace.proposals.values())
    return (first - start) / trace.u


def causal_message_delays(trace: Trace) -> int:
    """Longest causal chain of counted messages (time-free message-delay count)."""
    return trace.causal_depth()


@dataclass
class NiceExecutionComplexity:
    """Measured best-case complexity of one nice execution."""

    protocol: str
    n: int
    f: int
    message_delays: float
    messages: int
    messages_total_sent: int
    causal_depth: int
    consensus_messages: int

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "delays": self.message_delays,
            "messages": self.messages,
            "messages_total_sent": self.messages_total_sent,
            "causal_depth": self.causal_depth,
            "consensus_messages": self.consensus_messages,
        }


def nice_execution_complexity(trace: Trace) -> NiceExecutionComplexity:
    """Bundle the paper's two complexity measures for one (nice) execution."""
    consensus = sum(
        1
        for m in trace.counted_messages()
        if m.module not in ("main",)
    )
    return NiceExecutionComplexity(
        protocol=trace.protocol,
        n=trace.n,
        f=trace.f,
        message_delays=decision_message_delays(trace) or 0.0,
        messages=messages_until_last_decision(trace),
        messages_total_sent=messages_exchanged(trace),
        causal_depth=causal_message_delays(trace),
        consensus_messages=consensus,
    )
