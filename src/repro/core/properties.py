"""NBAC properties as checkable predicates over execution traces.

Definition 1 of the paper (refining Skeen's NBAC):

* **Validity** — a process decides 0 only if some process proposes 0 *or a
  failure occurs*; a process decides 1 only if no process proposes 0.
* **Termination** — every correct process eventually decides.
* **Agreement** — no two processes decide differently.
* **Integrity** — no process decides twice (enforced at runtime by the
  scheduler, which raises on a double decision, so it cannot appear in a
  trace).

The checkers report structured results rather than raising, because the
benchmarks and the robustness-matrix experiment need to *observe* violations
(e.g. 2PC not terminating when the coordinator crashes) rather than fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sim.trace import Trace

COMMIT = 1
ABORT = 0


@dataclass
class PropertyCheck:
    """Outcome of checking one property on one trace."""

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def _failure_occurred(trace: Trace, execution_class: str = None) -> bool:
    """Whether the execution contains any failure (crash or network failure).

    The execution class is stamped into the trace metadata by the simulation
    driver; crashes are also visible directly in the trace.
    """
    if trace.crashes:
        return True
    cls = execution_class or trace.metadata.get("execution_class", "")
    return cls == "network-failure"


def check_validity(trace: Trace, execution_class: str = None) -> PropertyCheck:
    """Check the (unified) validity property of Definition 1."""
    violations: List[str] = []
    votes = trace.votes()
    some_zero = any(v == ABORT for v in votes.values())
    failure = _failure_occurred(trace, execution_class)
    for pid, decision in trace.decisions.items():
        if decision.value == ABORT and not some_zero and not failure:
            violations.append(
                f"P{pid} decided 0 but every process proposed 1 and no failure occurred"
            )
        if decision.value == COMMIT and some_zero:
            zeros = [p for p, v in votes.items() if v == ABORT]
            violations.append(
                f"P{pid} decided 1 although P{zeros[0]} proposed 0"
            )
    return PropertyCheck(name="validity", holds=not violations, violations=violations)


def check_agreement(trace: Trace) -> PropertyCheck:
    """Check that no two processes decide differently."""
    violations: List[str] = []
    decided = sorted(trace.decisions.items())
    for i, (pid_a, rec_a) in enumerate(decided):
        for pid_b, rec_b in decided[i + 1 :]:
            if rec_a.value != rec_b.value:
                violations.append(
                    f"P{pid_a} decided {rec_a.value} but P{pid_b} decided {rec_b.value}"
                )
    return PropertyCheck(name="agreement", holds=not violations, violations=violations)


def check_termination(trace: Trace) -> PropertyCheck:
    """Check that every correct process decided by the end of the trace."""
    violations: List[str] = []
    for pid in trace.correct_pids():
        if pid not in trace.decisions:
            violations.append(f"correct process P{pid} never decided")
    return PropertyCheck(name="termination", holds=not violations, violations=violations)


def is_nice_execution(trace: Trace) -> bool:
    """A nice execution: failure-free and every process proposes 1."""
    if trace.crashes:
        return False
    if trace.metadata.get("execution_class", "failure-free") != "failure-free":
        return False
    votes = trace.votes()
    return len(votes) == trace.n and all(v == COMMIT for v in votes.values())


def solves_nbac(trace: Trace, execution_class: str = None) -> PropertyCheck:
    """Whether this single execution solves NBAC (all three properties hold)."""
    checks = [
        check_validity(trace, execution_class),
        check_agreement(trace),
        check_termination(trace),
    ]
    violations = [v for c in checks for v in c.violations]
    return PropertyCheck(name="nbac", holds=not violations, violations=violations)
