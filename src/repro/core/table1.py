"""Table 1: tight lower bounds on message delays and messages per problem.

The paper's Table 1 gives, for each of the 27 non-empty cells ``(X, Y)``, a
fraction ``d / m``: the tight lower bound on the number of message delays and
on the number of messages exchanged in nice executions of any protocol that
solves the cell's problem.  The bounds follow two simple rules (proved in
Section 3 and used verbatim here):

* **delays** — 2 if ``X = {A, V, T}`` and ``A ∈ Y`` (the four most robust
  cells, culminating in indulgent atomic commit); otherwise 1.
* **messages** —
  ``2n - 2 + f``  if ``X = {A, V, T}`` and ``A ∈ Y``;
  ``2n - 2``      else if ``V ∈ Y``;
  ``n - 1 + f``   else if ``V ∈ X``;
  ``0``           otherwise.

These closed forms are checked against the literal contents of the paper's
table in the test-suite (``tests/core/test_table1.py`` contains the table
transcribed cell by cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.lattice import Prop, PropertyPair, all_cells, prop_label
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CellBound:
    """The tight lower bounds of one Table 1 cell."""

    cell: PropertyPair
    delays: int
    messages_symbolic: str
    messages: Callable[[int, int], int]

    def messages_for(self, n: int, f: int) -> int:
        _validate_nf(n, f)
        return self.messages(n, f)

    def as_fraction(self, n: int = None, f: int = None) -> str:
        """Render the cell the way the paper does, e.g. ``2/2n-2+f``."""
        if n is None or f is None:
            return f"{self.delays}/{self.messages_symbolic}"
        return f"{self.delays}/{self.messages_for(n, f)}"


def _validate_nf(n: int, f: int) -> None:
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if not 1 <= f <= n - 1:
        raise ConfigurationError(f"f must satisfy 1 <= f <= n-1, got f={f}, n={n}")


def delay_lower_bound(cell: PropertyPair) -> int:
    """Tight lower bound on message delays in nice executions for this cell."""
    cell = cell.canonicalised()
    if cell.cf == frozenset(Prop) and Prop.AGREEMENT in cell.nf:
        return 2
    return 1


_ZERO = ("0", lambda n, f: 0)
_N1F = ("n-1+f", lambda n, f: n - 1 + f)
_2N2 = ("2n-2", lambda n, f: 2 * n - 2)
_2N2F = ("2n-2+f", lambda n, f: 2 * n - 2 + f)


def _message_rule(cell: PropertyPair) -> Tuple[str, Callable[[int, int], int]]:
    cell = cell.canonicalised()
    if cell.cf == frozenset(Prop) and Prop.AGREEMENT in cell.nf:
        return _2N2F
    if Prop.VALIDITY in cell.nf:
        return _2N2
    if Prop.VALIDITY in cell.cf:
        return _N1F
    return _ZERO


def message_lower_bound(cell: PropertyPair, n: int = None, f: int = None):
    """Tight lower bound on messages; symbolic if ``n``/``f`` are omitted."""
    symbolic, fn = _message_rule(cell)
    if n is None or f is None:
        return symbolic
    _validate_nf(n, f)
    return fn(n, f)


def cell_bound(cell: PropertyPair) -> CellBound:
    symbolic, fn = _message_rule(cell)
    return CellBound(
        cell=cell.canonicalised(),
        delays=delay_lower_bound(cell),
        messages_symbolic=symbolic,
        messages=fn,
    )


def table1_bounds() -> Dict[Tuple[str, str], CellBound]:
    """All 27 cells keyed by their ``(CF label, NF label)`` pair."""
    return {cell.label(): cell_bound(cell) for cell in all_cells()}


def complexity_groups() -> Dict[str, List[PropertyPair]]:
    """Group the 27 cells by their message lower bound (the paper's proof strategy)."""
    groups: Dict[str, List[PropertyPair]] = {}
    for cell in all_cells():
        symbolic, _ = _message_rule(cell)
        groups.setdefault(symbolic, []).append(cell)
    return groups


def delay_groups() -> Dict[int, List[PropertyPair]]:
    """Group the 27 cells by their delay lower bound."""
    groups: Dict[int, List[PropertyPair]] = {}
    for cell in all_cells():
        groups.setdefault(delay_lower_bound(cell), []).append(cell)
    return groups


def tradeoff_cells() -> List[PropertyPair]:
    """Cells where delay- and message-optimality cannot be achieved together.

    The paper identifies 18 of the 27 problems with such a tradeoff:

    * the 14 cells whose message bound is ``n-1+f`` or ``2n-2`` (validity at
      least in crash-failure executions forces a 1-delay protocol to use at
      least ``n(n-1)`` messages), and
    * the 4 most robust cells (``2fn`` messages are needed by any 2-delay
      protocol, Theorem 5).
    """
    result = []
    for cell in all_cells():
        symbolic, _ = _message_rule(cell)
        if symbolic in ("n-1+f", "2n-2", "2n-2+f"):
            result.append(cell)
    return result
