"""Distributed transactional key-value store substrate.

The paper motivates atomic commit through transactional systems (Sinfonia,
Percolator, Spanner, Helios, ...): a transaction touches several partitions
(datacenters / database nodes), each partition votes on whether its part of
the transaction executed correctly, and a distributed commit protocol decides
the outcome.  This package is that substrate:

* :mod:`repro.db.store` — per-partition versioned key-value storage;
* :mod:`repro.db.locks` — a no-wait lock manager (conflicts produce "no"
  votes, the Helios-style behaviour described in the introduction);
* :mod:`repro.db.wal` — a write-ahead log recording prepare/commit/abort;
* :mod:`repro.db.transaction` — transactions as sets of per-partition
  operations (the Sinfonia "minitransaction" shape);
* :mod:`repro.db.partition` — the partition server process: it prepares
  transactions, votes, and runs an *embedded* instance of any atomic-commit
  protocol from :mod:`repro.protocols` among the transaction's participants;
* :mod:`repro.db.coordinator` — the client/coordinator process driving a
  workload of transactions;
* :mod:`repro.db.cluster` — the cluster driver wiring partitions, client and
  the discrete-event scheduler together and reporting latency and message
  statistics per commit protocol;
* :mod:`repro.db.conflict` — a Helios-style cross-datacenter conflict
  detector used by the examples;
* :mod:`repro.db.invariants` — executable cross-layer invariants (transaction
  atomicity, WAL-replay durability, lock-table safety) checked on the final
  partition state of every cluster run.  Together with the cluster's
  schedule-controller hook (``ClusterConfig.controller``) this is what lets
  :func:`repro.explore.explore` hunt transaction anomalies: pass a
  ``workload=`` and ``preset="cluster-anomaly"`` to enumerate coordinator-
  and partition-crash points, replay any hit from ``(strategy, seed,
  decisions)`` and shrink it to a 1-minimal counterexample.
"""

from repro.db.cluster import (
    ClusterConfig,
    ClusterReport,
    RecoveryEvent,
    TransactionOutcome,
    run_cluster,
)
from repro.db.coordinator import RetryPolicy
from repro.db.conflict import ConflictDetector
from repro.db.invariants import (
    InvariantReport,
    check_atomicity,
    check_cluster,
    check_durability,
    check_lock_safety,
)
from repro.db.locks import LockManager, LockMode
from repro.db.store import VersionedStore
from repro.db.transaction import Operation, Transaction
from repro.db.wal import WalRecord, WriteAheadLog

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "ConflictDetector",
    "InvariantReport",
    "LockManager",
    "LockMode",
    "Operation",
    "RecoveryEvent",
    "RetryPolicy",
    "Transaction",
    "TransactionOutcome",
    "VersionedStore",
    "WalRecord",
    "WriteAheadLog",
    "check_atomicity",
    "check_cluster",
    "check_durability",
    "check_lock_safety",
    "run_cluster",
]
