"""Cluster driver: partitions + coordinator + a runtime backend, with reporting.

:func:`run_cluster` wires a set of :class:`~repro.db.partition.PartitionServer`
processes and one :class:`~repro.db.coordinator.ClientCoordinator` onto a
runtime backend, runs a transaction workload with the configured commit
protocol, and returns a :class:`ClusterReport` with per-transaction outcomes,
message statistics and the cluster-invariant battery
(:mod:`repro.db.invariants`) evaluated on the final partition state.  The
database benchmark (experiment E7) runs this once per commit protocol and
compares commit latency and message volume.

Two backends serve the same cluster code:

* ``backend="sim"`` (the default) — the discrete-event scheduler: virtual
  time, deterministic, supports delay models, fault plans and schedule
  controllers.  This is the measurement oracle.
* ``backend="asyncio"`` — the wall-clock transport runtime
  (:func:`repro.runtime.cluster.run_cluster_async`): the *same* partition,
  coordinator and commit-protocol classes on ``asyncio`` queues, with real
  concurrency.  Schedule controllers and delay models are simulator-only and
  rejected here; crash schedules (``fault_plan.crashes``) carry over.

The construction seam is the trio :func:`build_partition`,
:func:`build_client`, :func:`build_report` — each backend builds the same
processes and renders the same report shape from its own trace source.

A sim run may also be placed under a schedule controller
(:class:`~repro.explore.ScheduleController`, via ``ClusterConfig.controller``):
the controller sees every scheduler event of the cluster — client submissions,
``EXEC`` deliveries, embedded commit-protocol messages and timers — and may
defer deliveries or inject crashes into partitions *and* the client
coordinator, exactly as it does for bare protocol runs.  Applied decisions are
recorded on the report (``schedule_decisions``) together with the trace
fingerprint, so every controlled cluster run replays byte-identically from
its ``(strategy, seed, decisions)`` triple.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.db.coordinator import ClientCoordinator, RetryPolicy, TransactionOutcome
from repro.db.invariants import InvariantReport, check_cluster
from repro.db.partition import PartitionServer
from repro.db.transaction import Transaction
from repro.errors import ConfigurationError
from repro.protocols.base import COMMIT
from repro.protocols.registry import get_protocol
from repro.sim.faults import FaultPlan
from repro.sim.network import DelayModel, FixedDelay
from repro.sim.runner import Scheduler

#: the runtime backends run_cluster can dispatch to
BACKENDS = ("sim", "asyncio")


@dataclass
class ClusterConfig:
    """Configuration of one cluster run."""

    num_partitions: int = 4
    commit_protocol: Union[str, type] = "2PC"
    commit_f: int = 1
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    delay_model: Optional[DelayModel] = None
    fault_plan: Optional[FaultPlan] = None
    seed: int = 0
    max_time: float = 2000.0
    prepare_margin: float = 1.0
    #: "full" keeps per-message records; "counters" runs the scheduler's
    #: counters level (identical report statistics, no MessageRecord churn)
    trace_level: str = "full"
    #: optional schedule controller (see :mod:`repro.explore`): single-use,
    #: consulted on every scheduler event, may defer deliveries and inject
    #: crashes within the scheduler's fault budget
    controller: Optional[Any] = None
    #: optional client retry policy (idempotent resubmission with bounded
    #: exponential backoff); works on both backends — the jitter draws from
    #: the client's per-process seeded RNG, so sim runs stay deterministic
    retry_policy: Optional[RetryPolicy] = None
    #: optional duck-typed transaction tracer (``begin``/``end``/``complete``
    #: with (pid, txn_id, name, t) — e.g. :class:`repro.obs.tracing.
    #: TraceContext`), handed to the coordinator and every partition on both
    #: backends.  Strictly out of band: span recording never feeds a decision,
    #: a report field or a fingerprint, and this module never imports the obs
    #: package
    tracer: Optional[Any] = None

    def resolve_protocol(self) -> type:
        if isinstance(self.commit_protocol, str):
            return get_protocol(self.commit_protocol).cls
        return self.commit_protocol

    def protocol_label(self) -> str:
        if isinstance(self.commit_protocol, str):
            return self.commit_protocol
        return getattr(self.commit_protocol, "protocol_name", self.commit_protocol.__name__)


@dataclass(frozen=True)
class RecoveryEvent:
    """One partition crash-and-rejoin observed during a cluster run."""

    pid: int
    crashed_at: float
    rejoined_at: float
    #: committed transactions replayed from the WAL into the fresh store
    replayed_transactions: int
    #: transactions still in doubt at the moment of rejoin (before the
    #: termination queries resolved them)
    in_doubt_at_rejoin: Tuple[str, ...] = ()

    @property
    def downtime(self) -> float:
        return self.rejoined_at - self.crashed_at


@dataclass
class ClusterReport:
    """Result of one cluster run."""

    protocol: str
    num_partitions: int
    outcomes: List[TransactionOutcome]
    messages_total: int
    messages_by_module: Dict[str, int]
    end_time: float
    partition_stats: Dict[int, Dict[str, int]]
    store_snapshots: Dict[int, Dict[str, object]]
    #: messages received by the time the last transaction decided (the
    #: paper's best-case accounting); equals messages_total when no
    #: transaction decided
    messages_until_last_decision: int = 0
    #: the run's execution class including schedule-controller effects
    #: (a controller deferring past the bound or injecting crashes upgrades
    #: the class exactly as it does for bare protocol runs)
    execution_class: str = "failure-free"
    #: pid -> crash time for every crash that actually happened, fault-plan
    #: and schedule-injected alike (partitions and the client coordinator)
    crashes: Dict[int, float] = field(default_factory=dict)
    #: the cluster-invariant battery (atomicity / durability / lock safety)
    #: evaluated on the final partition state; see :mod:`repro.db.invariants`
    invariants: Optional[InvariantReport] = None
    #: transaction ids without an outcome at the client, in workload order
    pending_transactions: List[str] = field(default_factory=list)
    #: pid -> transactions prepared on that partition without a logged
    #: outcome (the partitions an anomaly left blocked); empty lists omitted
    in_doubt_by_partition: Dict[int, List[str]] = field(default_factory=dict)
    #: schedule-controller decisions that applied, as (step, kind, arg)
    #: tuples — empty for uncontrolled runs
    schedule_decisions: List[Tuple[int, str, Any]] = field(default_factory=list)
    #: canonical trace fingerprint; only computed for controlled runs, where
    #: it backs the replay-determinism guarantee
    trace_fingerprint: Optional[str] = None
    #: every partition crash-and-rejoin, in rejoin order (empty when no
    #: recovery happened)
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    #: txn id -> resubmissions by the client's retry policy (only
    #: transactions that actually retried appear)
    retry_counts: Dict[str, int] = field(default_factory=dict)
    #: which runtime produced this report ("sim" or "asyncio")
    backend: str = "sim"

    # -- aggregates -------------------------------------------------------- #
    @property
    def committed(self) -> int:
        return sum(1 for o in self.outcomes if o.decision == COMMIT)

    @property
    def aborted(self) -> int:
        return sum(1 for o in self.outcomes if o.completed and o.decision != COMMIT)

    @property
    def incomplete(self) -> int:
        return sum(1 for o in self.outcomes if not o.completed)

    def commit_latencies(self) -> List[float]:
        return [o.commit_latency for o in self.outcomes if o.commit_latency is not None]

    def mean_commit_latency(self) -> Optional[float]:
        latencies = self.commit_latencies()
        return statistics.mean(latencies) if latencies else None

    def p95_commit_latency(self) -> Optional[float]:
        latencies = sorted(self.commit_latencies())
        if not latencies:
            return None
        index = max(0, int(round(0.95 * len(latencies))) - 1)
        return latencies[index]

    def messages_per_transaction(self) -> Optional[float]:
        if not self.outcomes:
            return None
        return self.messages_total / len(self.outcomes)

    def summary_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "partitions": self.num_partitions,
            "txns": len(self.outcomes),
            "committed": self.committed,
            "aborted": self.aborted,
            "incomplete": self.incomplete,
            "mean_latency": self.mean_commit_latency(),
            "p95_latency": self.p95_commit_latency(),
            "messages": self.messages_total,
            "msgs_per_txn": self.messages_per_transaction(),
        }


# --------------------------------------------------------------------------- #
# the construction seam shared by every backend
# --------------------------------------------------------------------------- #
def cluster_shape(config: ClusterConfig) -> Tuple[int, int, int]:
    """``(n, f, client_pid)`` of the cluster's process set.

    Partitions are P1..Pk, the client coordinator is P(k+1); ``f = k`` so any
    crash plan over the partitions is admissible.
    """
    partitions = config.num_partitions
    return partitions + 1, partitions, partitions + 1


def build_partition(
    pid: int, n: int, f: int, env: Any, config: ClusterConfig
) -> PartitionServer:
    """One partition server, identically configured on every backend."""
    return PartitionServer(
        pid,
        n,
        f,
        env,
        commit_protocol=config.resolve_protocol(),
        commit_f=config.commit_f,
        protocol_kwargs=config.protocol_kwargs,
        tracer=config.tracer,
    )


def build_client(
    pid: int,
    n: int,
    f: int,
    env: Any,
    config: ClusterConfig,
    transactions: Sequence[Transaction],
) -> ClientCoordinator:
    """The client coordinator, identically configured on every backend."""
    return ClientCoordinator(
        pid,
        n,
        f,
        env,
        workload=list(transactions),
        prepare_margin=config.prepare_margin,
        retry_policy=config.retry_policy,
        tracer=config.tracer,
    )


def build_report(
    config: ClusterConfig,
    client: ClientCoordinator,
    partition_servers: Mapping[int, PartitionServer],
    *,
    messages_total: int,
    messages_by_module: Dict[str, int],
    end_time: float,
    messages_until_last_decision: int,
    execution_class: str,
    crashes: Dict[int, float],
    schedule_decisions: Sequence[Tuple[int, str, Any]] = (),
    trace_fingerprint: Optional[str] = None,
    recovery_events: Sequence[RecoveryEvent] = (),
    backend: str = "sim",
) -> ClusterReport:
    """Render the backend-independent report: outcomes, state, invariants."""
    partition_stats = {
        pid: dict(server.statistics) for pid, server in partition_servers.items()
    }
    store_snapshots = {
        pid: server.store.snapshot() for pid, server in partition_servers.items()
    }
    return ClusterReport(
        protocol=config.protocol_label(),
        num_partitions=config.num_partitions,
        outcomes=list(client.outcomes.values()),
        messages_total=messages_total,
        messages_by_module=messages_by_module,
        end_time=end_time,
        partition_stats=partition_stats,
        store_snapshots=store_snapshots,
        messages_until_last_decision=messages_until_last_decision,
        execution_class=execution_class,
        crashes=crashes,
        invariants=check_cluster(partition_servers),
        pending_transactions=client.pending_transactions(),
        in_doubt_by_partition={
            pid: in_doubt
            for pid, server in partition_servers.items()
            if (in_doubt := server.in_doubt_transactions())
        },
        schedule_decisions=list(schedule_decisions),
        trace_fingerprint=trace_fingerprint,
        recovery_events=list(recovery_events),
        retry_counts=dict(client.retry_counts),
        backend=backend,
    )


def _validate(config: ClusterConfig, transactions: Sequence[Transaction]) -> None:
    if config.num_partitions < 2:
        raise ConfigurationError("a cluster needs at least 2 partitions")
    if not transactions:
        raise ConfigurationError("the workload is empty")


def run_cluster(
    config: ClusterConfig,
    transactions: Sequence[Transaction],
    backend: str = "sim",
) -> ClusterReport:
    """Run a workload of transactions on a cluster, on the chosen backend."""
    if backend == "sim":
        return _run_cluster_sim(config, transactions)
    if backend == "asyncio":
        # imported lazily: the runtime package must stay optional for the
        # deterministic sim path (and the import direction db -> runtime
        # exists only inside this dispatch)
        from repro.runtime.cluster import run_cluster_async

        return run_cluster_async(config, transactions)
    raise ConfigurationError(
        f"unknown cluster backend {backend!r}; known: {', '.join(BACKENDS)}"
    )


def _run_cluster_sim(
    config: ClusterConfig, transactions: Sequence[Transaction]
) -> ClusterReport:
    """The discrete-event backend (virtual time, deterministic)."""
    _validate(config, transactions)
    n, f, client_pid = cluster_shape(config)
    partitions = config.num_partitions
    if config.fault_plan is not None and client_pid in config.fault_plan.recoveries:
        raise ConfigurationError(
            "the client coordinator cannot rejoin: its outcome log is "
            "volatile (only partitions P1..Pk recover by WAL replay)"
        )
    scheduler = Scheduler(
        n=n,
        f=f,  # permits any crash plan over the partitions
        delay_model=config.delay_model or FixedDelay(1.0),
        fault_plan=config.fault_plan,
        seed=config.seed,
        max_time=config.max_time,
        protocol_name=f"db/{config.protocol_label()}",
        trace_level=config.trace_level,
        controller=config.controller,
    )

    for pid in range(1, partitions + 1):
        scheduler.bind_process(
            pid, build_partition(pid, n, f, scheduler.env_for(pid), config)
        )
    client = build_client(
        client_pid, n, f, scheduler.env_for(client_pid), config, transactions
    )
    scheduler.bind_process(client_pid, client)
    for process in scheduler.processes.values():
        process.on_start()

    # how a crashed pid rejoins: partitions are rebuilt from their durable
    # WAL (the crashed object only contributes its log); the client's
    # volatile outcome state is not recoverable, so its rejoin is refused
    recovery_events: List[RecoveryEvent] = []

    def _partition_rejoin(pid: int, sched: Scheduler, old: Any) -> Optional[Any]:
        if pid == client_pid:
            return None
        server = build_partition(pid, n, f, sched.env_for(pid), config)
        replayed = server.recover_from_wal(old.wal, coordinator=client_pid)
        recovery_events.append(
            RecoveryEvent(
                pid=pid,
                crashed_at=sched.trace.crashes.get(pid, 0.0),
                rejoined_at=sched.clock.time_to_units(sched.clock.now),
                replayed_transactions=replayed,
                in_doubt_at_rejoin=tuple(server.wal.in_doubt()),
            )
        )
        return server

    scheduler.set_recovery_factory(_partition_rejoin)

    scheduler.set_stop_predicate(lambda s: client.all_completed())
    trace = scheduler.run()

    messages_by_module = trace.module_histogram()

    decide_times = [
        o.decide_time for o in client.outcomes.values() if o.decide_time is not None
    ]
    messages_until_last = (
        trace.messages_received_by(max(decide_times))
        if decide_times
        else trace.message_count()
    )

    partition_servers = {
        pid: scheduler.processes[pid] for pid in range(1, partitions + 1)
    }
    return build_report(
        config,
        client,
        partition_servers,
        messages_total=trace.message_count(),
        messages_by_module=messages_by_module,
        end_time=trace.end_time,
        messages_until_last_decision=messages_until_last,
        execution_class=scheduler.execution_class(),
        crashes=dict(trace.crashes),
        schedule_decisions=list(scheduler.applied_schedule_actions),
        # the fingerprint is O(trace); only controlled runs need it (replay
        # determinism), uncontrolled sweeps keep the fast path
        trace_fingerprint=(
            trace.fingerprint() if config.controller is not None else None
        ),
        recovery_events=recovery_events,
        backend="sim",
    )
