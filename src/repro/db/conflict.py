"""Helios-style conflict detection across datacenters.

The paper's introduction uses Helios as the motivating system: each datacenter
tracks the read/write sets of in-flight transactions and votes to abort any
transaction involved in a serializability conflict it observes locally.  The
:class:`ConflictDetector` implements that local check: two in-flight
transactions conflict when one writes a key the other reads or writes.

This is deliberately simpler than a full serialization-graph test — it is the
per-datacenter vote generator that feeds the commit protocols, which is the
part the paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class _TxnFootprint:
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)


class ConflictDetector:
    """Tracks in-flight transaction footprints and reports conflicts."""

    def __init__(self) -> None:
        self._inflight: Dict[str, _TxnFootprint] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def begin(self, txn_id: str, reads: Set[str], writes: Set[str]) -> None:
        """Register an in-flight transaction's local footprint."""
        self._inflight[txn_id] = _TxnFootprint(reads=set(reads), writes=set(writes))

    def finish(self, txn_id: str) -> None:
        """Remove a transaction once it has committed or aborted."""
        self._inflight.pop(txn_id, None)

    def inflight(self) -> List[str]:
        return sorted(self._inflight)

    # ------------------------------------------------------------------ #
    # the local vote
    # ------------------------------------------------------------------ #
    def conflicts_of(self, txn_id: str) -> List[str]:
        """Other in-flight transactions that conflict with ``txn_id``."""
        me = self._inflight.get(txn_id)
        if me is None:
            return []
        conflicting = []
        for other_id, other in self._inflight.items():
            if other_id == txn_id:
                continue
            if (
                me.writes & (other.reads | other.writes)
                or other.writes & me.reads
            ):
                conflicting.append(other_id)
        return sorted(conflicting)

    def vote(self, txn_id: str) -> int:
        """The Helios rule: vote 1 iff no local conflict involves the transaction."""
        return 0 if self.conflicts_of(txn_id) else 1
