"""The client / transaction coordinator process.

The coordinator submits transactions according to a workload schedule: for
every transaction it sends an ``EXEC`` request to each participant partition
carrying that partition's operations and the agreed commit-round start time
(one message-delay bound after submission, so every participant has prepared
before the commit protocol's "time 0").  It then records the outcome and the
latency when the first participant reports ``DONE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.db.transaction import Transaction
from repro.env import Process
from repro.errors import ConfigurationError

_RETRY_TIMER_PREFIX = "retry/"


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic client-side retry for unacknowledged transactions.

    After each submission the coordinator waits ``timeout_units`` (plus, from
    the second attempt on, a bounded exponential backoff and a jitter term)
    for the first ``DONE`` ack; an unacknowledged transaction is resubmitted
    with the *same* transaction id, which partitions treat idempotently.  The
    jitter is drawn from the coordinator's per-process seeded RNG, so on the
    simulator backend retries are as fingerprint-deterministic as everything
    else.
    """

    #: total submissions, including the first
    max_attempts: int = 3
    #: per-attempt wait for the first DONE ack
    timeout_units: float = 12.0
    #: base backoff added to the wait from the second attempt on
    backoff_units: float = 2.0
    #: exponential growth factor of the backoff
    backoff_factor: float = 2.0
    #: ceiling on the (pre-jitter) backoff term
    max_backoff_units: float = 16.0
    #: uniform [0, jitter_units) added per retry wait
    jitter_units: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.timeout_units <= 0:
            raise ConfigurationError("timeout_units must be positive")
        if self.backoff_units < 0 or self.max_backoff_units < 0:
            raise ConfigurationError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.jitter_units < 0:
            raise ConfigurationError("jitter_units must be non-negative")

    def backoff(self, retry_index: int, rng) -> float:
        """The backoff before retry number ``retry_index`` (1-based)."""
        base = min(
            self.max_backoff_units,
            self.backoff_units * self.backoff_factor ** (retry_index - 1),
        )
        jitter = rng.random() * self.jitter_units if self.jitter_units > 0 else 0.0
        return base + jitter


@dataclass
class TransactionOutcome:
    """What the coordinator observed for one transaction."""

    txn_id: str
    decision: Optional[int] = None
    submit_time: float = 0.0
    #: time at which the first participant decided (commit-protocol latency)
    decide_time: Optional[float] = None
    #: time at which the coordinator received the first DONE
    ack_time: Optional[float] = None
    participants: List[int] = field(default_factory=list)

    @property
    def commit_latency(self) -> Optional[float]:
        """Message delays from submission to the first participant decision."""
        if self.decide_time is None:
            return None
        return self.decide_time - self.submit_time

    @property
    def ack_latency(self) -> Optional[float]:
        if self.ack_time is None:
            return None
        return self.ack_time - self.submit_time

    @property
    def completed(self) -> bool:
        return self.decision is not None


class ClientCoordinator(Process):
    """Submits a workload of transactions and collects their outcomes."""

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        env,
        workload: List[Transaction],
        prepare_margin: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        tracer=None,
    ):
        super().__init__(pid, n, f, env)
        self.workload = list(workload)
        self.prepare_margin = prepare_margin
        self.retry_policy = retry_policy
        #: optional duck-typed span tracer (see ClusterConfig.tracer) — out of
        #: band, never consulted for any decision this process makes
        self.tracer = tracer
        self.outcomes: Dict[str, TransactionOutcome] = {}
        #: resubmissions per transaction id (only transactions that retried)
        self.retry_counts: Dict[str, int] = {}
        self._attempts: Dict[str, int] = {}
        self._txn_by_id: Dict[str, Transaction] = {}
        #: optional callback fired when a transaction's outcome is recorded;
        #: used by the asyncio cluster service to resolve client futures and
        #: by the cluster drivers to detect completion without polling
        self.on_outcome: Optional[Callable[[TransactionOutcome], None]] = None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        for index, txn in enumerate(self.workload):
            self.set_timer(txn.submit_time, name=f"submit/{index}")

    def on_propose(self, value) -> None:  # pragma: no cover - not used
        pass

    def on_timeout(self, name: str) -> None:
        if name.startswith(_RETRY_TIMER_PREFIX):
            self._maybe_retry(name[len(_RETRY_TIMER_PREFIX):])
            return
        if not name.startswith("submit/"):
            return
        index = int(name.split("/", 1)[1])
        self._submit(self.workload[index])

    def submit_transaction(self, txn: Transaction) -> None:
        """Submit a transaction now (live clients, outside the workload plan).

        Appends the transaction to the workload so completion queries and
        pending-transaction reports account for it like any planned one.
        """
        self.workload.append(txn)
        self._submit(txn)

    def _submit(self, txn: Transaction) -> None:
        participants = txn.participants()
        start_time = self.now() + self.prepare_margin
        self._txn_by_id[txn.txn_id] = txn
        self._attempts[txn.txn_id] = self._attempts.get(txn.txn_id, 0) + 1
        if txn.txn_id not in self.outcomes:
            # latency is measured from the first submission; a retried
            # transaction keeps its original submit time
            self.outcomes[txn.txn_id] = TransactionOutcome(
                txn_id=txn.txn_id,
                submit_time=self.now(),
                participants=participants,
            )
        for partition in participants:
            self.send(
                partition,
                (
                    "EXEC",
                    txn.txn_id,
                    start_time,
                    tuple(participants),
                    tuple(txn.read_set(partition)),
                    dict(txn.write_set(partition)),
                ),
            )
        if self.tracer is not None:
            # the execute/prepare window this coordinator allots, plus the
            # whole-transaction envelope (closed on the first DONE ack)
            self.tracer.complete(
                self.pid, txn.txn_id, "EXEC", self.now(), start_time,
                attempt=self._attempts[txn.txn_id],
            )
            self.tracer.begin(self.pid, txn.txn_id, "txn", self.now())
        self._arm_retry(txn.txn_id)

    # ------------------------------------------------------------------ #
    # retry (see RetryPolicy)
    # ------------------------------------------------------------------ #
    def _arm_retry(self, txn_id: str) -> None:
        policy = self.retry_policy
        if policy is None:
            return
        attempts = self._attempts.get(txn_id, 1)
        if attempts >= policy.max_attempts:
            return  # the final attempt gets no watchdog: nothing left to try
        wait = policy.timeout_units
        if attempts > 1:
            wait += policy.backoff(attempts - 1, self.env.random)
        self.set_timer(self.now() + wait, name=f"{_RETRY_TIMER_PREFIX}{txn_id}")

    def _maybe_retry(self, txn_id: str) -> None:
        outcome = self.outcomes.get(txn_id)
        if outcome is None or outcome.completed:
            return
        txn = self._txn_by_id.get(txn_id)
        policy = self.retry_policy
        if txn is None or policy is None:
            return
        if self._attempts.get(txn_id, 0) >= policy.max_attempts:
            return
        self.retry_counts[txn_id] = self.retry_counts.get(txn_id, 0) + 1
        self._submit(txn)

    # ------------------------------------------------------------------ #
    # outcome collection
    # ------------------------------------------------------------------ #
    def on_deliver(self, src: int, payload) -> None:
        if payload[0] == "OUTCOME?":
            # termination query from a recovering partition: answer when the
            # transaction's outcome has been observed here
            _, txn_id = payload
            known = self.outcomes.get(txn_id)
            if known is not None and known.completed:
                self.send(src, ("OUTCOME", txn_id, known.decision))
            return
        if payload[0] != "DONE":
            return
        _, txn_id, decision, decide_time = payload
        outcome = self.outcomes.get(txn_id)
        if outcome is None or outcome.completed:
            return
        outcome.decision = decision
        outcome.decide_time = decide_time
        outcome.ack_time = self.now()
        if self.tracer is not None:
            # first participant decision -> ack at the client (ack latency),
            # and the end of the whole-transaction envelope
            self.tracer.complete(
                self.pid, txn_id, "DONE", decide_time, self.now(), decision=decision
            )
            self.tracer.end(self.pid, txn_id, "txn", self.now(), decision=decision)
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # ------------------------------------------------------------------ #
    # queries used by the cluster driver
    # ------------------------------------------------------------------ #
    def all_completed(self) -> bool:
        return len(self.outcomes) == len(self.workload) and all(
            o.completed for o in self.outcomes.values()
        )

    def completed_outcomes(self) -> List[TransactionOutcome]:
        return [o for o in self.outcomes.values() if o.completed]

    def pending_transactions(self) -> List[str]:
        """Transaction ids without a recorded outcome, in workload order.

        Covers both submitted-but-undecided transactions and transactions
        never submitted at all (e.g. because this coordinator was crashed by
        a schedule controller before their submit timer fired) — the raw
        material for termination-anomaly reports.
        """
        return [
            txn.txn_id
            for txn in self.workload
            if txn.txn_id not in self.outcomes
            or not self.outcomes[txn.txn_id].completed
        ]
