"""The client / transaction coordinator process.

The coordinator submits transactions according to a workload schedule: for
every transaction it sends an ``EXEC`` request to each participant partition
carrying that partition's operations and the agreed commit-round start time
(one message-delay bound after submission, so every participant has prepared
before the commit protocol's "time 0").  It then records the outcome and the
latency when the first participant reports ``DONE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.db.transaction import Transaction
from repro.env import Process


@dataclass
class TransactionOutcome:
    """What the coordinator observed for one transaction."""

    txn_id: str
    decision: Optional[int] = None
    submit_time: float = 0.0
    #: time at which the first participant decided (commit-protocol latency)
    decide_time: Optional[float] = None
    #: time at which the coordinator received the first DONE
    ack_time: Optional[float] = None
    participants: List[int] = field(default_factory=list)

    @property
    def commit_latency(self) -> Optional[float]:
        """Message delays from submission to the first participant decision."""
        if self.decide_time is None:
            return None
        return self.decide_time - self.submit_time

    @property
    def ack_latency(self) -> Optional[float]:
        if self.ack_time is None:
            return None
        return self.ack_time - self.submit_time

    @property
    def completed(self) -> bool:
        return self.decision is not None


class ClientCoordinator(Process):
    """Submits a workload of transactions and collects their outcomes."""

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        env,
        workload: List[Transaction],
        prepare_margin: float = 1.0,
    ):
        super().__init__(pid, n, f, env)
        self.workload = list(workload)
        self.prepare_margin = prepare_margin
        self.outcomes: Dict[str, TransactionOutcome] = {}
        #: optional callback fired when a transaction's outcome is recorded;
        #: used by the asyncio cluster service to resolve client futures and
        #: by the cluster drivers to detect completion without polling
        self.on_outcome: Optional[Callable[[TransactionOutcome], None]] = None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        for index, txn in enumerate(self.workload):
            self.set_timer(txn.submit_time, name=f"submit/{index}")

    def on_propose(self, value) -> None:  # pragma: no cover - not used
        pass

    def on_timeout(self, name: str) -> None:
        if not name.startswith("submit/"):
            return
        index = int(name.split("/", 1)[1])
        self._submit(self.workload[index])

    def submit_transaction(self, txn: Transaction) -> None:
        """Submit a transaction now (live clients, outside the workload plan).

        Appends the transaction to the workload so completion queries and
        pending-transaction reports account for it like any planned one.
        """
        self.workload.append(txn)
        self._submit(txn)

    def _submit(self, txn: Transaction) -> None:
        participants = txn.participants()
        start_time = self.now() + self.prepare_margin
        self.outcomes[txn.txn_id] = TransactionOutcome(
            txn_id=txn.txn_id,
            submit_time=self.now(),
            participants=participants,
        )
        for partition in participants:
            self.send(
                partition,
                (
                    "EXEC",
                    txn.txn_id,
                    start_time,
                    tuple(participants),
                    tuple(txn.read_set(partition)),
                    dict(txn.write_set(partition)),
                ),
            )

    # ------------------------------------------------------------------ #
    # outcome collection
    # ------------------------------------------------------------------ #
    def on_deliver(self, src: int, payload) -> None:
        if payload[0] != "DONE":
            return
        _, txn_id, decision, decide_time = payload
        outcome = self.outcomes.get(txn_id)
        if outcome is None or outcome.completed:
            return
        outcome.decision = decision
        outcome.decide_time = decide_time
        outcome.ack_time = self.now()
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # ------------------------------------------------------------------ #
    # queries used by the cluster driver
    # ------------------------------------------------------------------ #
    def all_completed(self) -> bool:
        return len(self.outcomes) == len(self.workload) and all(
            o.completed for o in self.outcomes.values()
        )

    def completed_outcomes(self) -> List[TransactionOutcome]:
        return [o for o in self.outcomes.values() if o.completed]

    def pending_transactions(self) -> List[str]:
        """Transaction ids without a recorded outcome, in workload order.

        Covers both submitted-but-undecided transactions and transactions
        never submitted at all (e.g. because this coordinator was crashed by
        a schedule controller before their submit timer fired) — the raw
        material for termination-anomaly reports.
        """
        return [
            txn.txn_id
            for txn in self.workload
            if txn.txn_id not in self.outcomes
            or not self.outcomes[txn.txn_id].completed
        ]
