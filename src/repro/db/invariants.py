"""Executable cross-layer invariants of the transaction cluster.

The protocol layer's properties (agreement / validity / termination, checked
by :mod:`repro.core.properties`) quantify over *decisions*; this module states
what those decisions must mean for *data* once a commit protocol is embedded
in the :mod:`repro.db` cluster.  Three invariants, each checked against the
live partition state at the end of a cluster run:

* **atomicity** — a distributed transaction has one outcome.  No partition's
  WAL may record ``COMMIT`` for a transaction another partition's WAL records
  ``ABORT`` for, and no store may hold versions of a transaction its own WAL
  did not commit (so an applied-but-aborted write is caught even if the WAL
  records happen to agree).
* **durability** — the WAL is the store.  Replaying a partition's log
  (:meth:`~repro.db.wal.WriteAheadLog.replay`, which skips torn tail records)
  must reconstruct exactly the partition's committed snapshot — including for
  a partition frozen mid-run by a crash, whose log replay is precisely the
  recovery a restarted server would perform.
* **lock safety** — the no-wait lock table stays coherent: a key with more
  than one holder is held SHARED, and a transaction with a decided outcome
  (``COMMIT`` *or* ``ABORT``) holds no locks — decided transactions release
  everything, aborts included.

How the battery is driven
-------------------------
:func:`repro.db.cluster.run_cluster` calls :func:`check_cluster` after every
run and attaches the :class:`InvariantReport` to the
:class:`~repro.db.cluster.ClusterReport`; the sweep engine maps the report
onto the trial's property flags (atomicity -> ``agreement``, durability and
lock safety -> ``validity``), which is what lets
:func:`repro.explore.explore` hunt transaction anomalies with the same
search/shrink machinery it uses for bare protocols::

    from repro.explore import explore
    report = explore(
        "2PC", n=4, f=1, budget=24,
        workload=("uniform", lambda n, seed: ...),   # or a registry name
        preset="cluster-anomaly",                     # crash-point enumeration
    )

The ``cluster-anomaly`` preset enumerates crash points over every partition
*and* the client coordinator (pid ``n + 1``): each explored schedule injects
one crash at one protocol phase boundary, every run is replayable from its
``(strategy, seed, decisions)`` triple, and a violating schedule is shrunk to
a 1-minimal counterexample.  Correct protocols pass the battery clean under
every admissible schedule; a protocol that loses atomicity under a crash
(see ``tests/broken_protocols.py``) is caught and minimised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db.locks import LockMode
from repro.db.wal import ABORT as WAL_ABORT
from repro.db.wal import COMMIT as WAL_COMMIT

#: the invariant names, in reporting order
INVARIANTS = ("atomicity", "durability", "lock-safety")


@dataclass
class InvariantReport:
    """Outcome of one cluster-invariant battery (plain data, picklable)."""

    atomicity: bool = True
    durability: bool = True
    lock_safety: bool = True
    #: human-readable ``"invariant: detail"`` strings, one per violation
    violations: List[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.atomicity and self.durability and self.lock_safety

    def broken(self) -> Tuple[str, ...]:
        """Names of the violated invariants, in reporting order."""
        flags = {
            "atomicity": self.atomicity,
            "durability": self.durability,
            "lock-safety": self.lock_safety,
        }
        return tuple(name for name in INVARIANTS if not flags[name])

    def describe(self) -> str:
        if self.holds:
            return "all cluster invariants hold"
        return "\n".join(self.violations)


def _wal_outcomes(server: "object") -> Dict[str, Optional[str]]:
    """txn id -> decided outcome (COMMIT/ABORT, latest wins) or None.

    One forward pass over the log — equivalent to calling
    :meth:`~repro.db.wal.WriteAheadLog.outcome_of` per transaction (torn
    records skipped, the last intact decision wins) without re-scanning the
    records for every transaction.
    """
    outcomes: Dict[str, Optional[str]] = {}
    for record in server.wal.records():
        if record.torn:
            continue
        if record.kind in (WAL_COMMIT, WAL_ABORT):
            outcomes[record.txn_id] = record.kind
        else:
            outcomes.setdefault(record.txn_id, None)
    return outcomes


def check_atomicity(
    partitions: Dict[int, "object"],
    wal_outcomes: Optional[Dict[int, Dict[str, Optional[str]]]] = None,
) -> List[str]:
    """Conflicting transaction outcomes across (or within) partitions.

    Two checks per transaction: no ``COMMIT``/``ABORT`` split across the
    participant WALs, and no store holding versions of a transaction its own
    WAL did not record as committed.  ``wal_outcomes`` lets
    :func:`check_cluster` share one per-partition WAL pass across checks.
    """
    violations: List[str] = []
    outcomes: Dict[str, Dict[str, List[int]]] = {}
    for pid in sorted(partitions):
        server = partitions[pid]
        local = (
            wal_outcomes[pid] if wal_outcomes is not None else _wal_outcomes(server)
        )
        for txn_id, outcome in local.items():
            if outcome is not None:
                outcomes.setdefault(txn_id, {}).setdefault(outcome, []).append(pid)
        for txn_id in server.store.transactions_applied():
            if local.get(txn_id) != WAL_COMMIT:
                violations.append(
                    f"atomicity: partition {pid} applied writes of {txn_id!r} "
                    f"without a COMMIT record in its WAL"
                )
    for txn_id in sorted(outcomes):
        by_outcome = outcomes[txn_id]
        if WAL_COMMIT in by_outcome and WAL_ABORT in by_outcome:
            violations.append(
                f"atomicity: {txn_id!r} committed on partitions "
                f"{by_outcome[WAL_COMMIT]} but aborted on partitions "
                f"{by_outcome[WAL_ABORT]}"
            )
    return violations


def check_durability(partitions: Dict[int, "object"]) -> List[str]:
    """WAL replay must reconstruct exactly each partition's committed state."""
    violations: List[str] = []
    for pid in sorted(partitions):
        server = partitions[pid]
        replayed = server.wal.replay().snapshot()
        live = server.store.snapshot()
        if replayed == live:
            continue
        differing = sorted(
            key
            for key in set(replayed) | set(live)
            if replayed.get(key, "<absent>") != live.get(key, "<absent>")
        )
        violations.append(
            f"durability: partition {pid} WAL replay diverges from the live "
            f"store on keys {differing}"
        )
    return violations


def check_lock_safety(
    partitions: Dict[int, "object"],
    wal_outcomes: Optional[Dict[int, Dict[str, Optional[str]]]] = None,
) -> List[str]:
    """No two exclusive holders; decided transactions hold no locks."""
    violations: List[str] = []
    for pid in sorted(partitions):
        server = partitions[pid]
        for key in server.locks.locked_keys():
            holders = server.locks.holders(key)
            if len(holders) > 1 and server.locks.mode_of(key) == LockMode.EXCLUSIVE:
                violations.append(
                    f"lock-safety: partition {pid} key {key!r} is EXCLUSIVE "
                    f"with {len(holders)} holders {sorted(holders)}"
                )
        local = (
            wal_outcomes[pid] if wal_outcomes is not None else _wal_outcomes(server)
        )
        for txn_id, outcome in local.items():
            if outcome is None:
                continue  # in doubt: holding locks is the protocol's point
            held = server.locks.keys_held_by(txn_id)
            if held:
                violations.append(
                    f"lock-safety: partition {pid} still holds {sorted(held)} "
                    f"for {txn_id!r} after {outcome}"
                )
    return violations


def check_cluster(partitions: Dict[int, "object"]) -> InvariantReport:
    """Run the full battery over the live partition servers of one run."""
    # one WAL pass per partition, shared by the atomicity and lock checks
    wal_outcomes = {pid: _wal_outcomes(server) for pid, server in partitions.items()}
    atomicity = check_atomicity(partitions, wal_outcomes)
    durability = check_durability(partitions)
    lock_safety = check_lock_safety(partitions, wal_outcomes)
    return InvariantReport(
        atomicity=not atomicity,
        durability=not durability,
        lock_safety=not lock_safety,
        violations=atomicity + durability + lock_safety,
    )
