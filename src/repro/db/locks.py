"""No-wait lock manager.

Each partition guards its keys with shared/exclusive locks.  The policy is
*no-wait*: a conflicting request is rejected immediately, which in the commit
layer translates into a "no" vote for the requesting transaction — exactly the
behaviour the paper's introduction describes for Helios-style conflict
tracking ("each datacenter votes to abort every transaction that causes a
conflict").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set


class LockMode(enum.Enum):
    """Lock modes: shared (reads) and exclusive (writes)."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _KeyLock:
    mode: LockMode = LockMode.SHARED
    holders: Set[str] = field(default_factory=set)


class LockManager:
    """Per-partition lock table with a no-wait conflict policy."""

    def __init__(self) -> None:
        self._locks: Dict[str, _KeyLock] = {}
        self._held_by_txn: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #
    def try_acquire(self, txn_id: str, key: str, mode: LockMode) -> bool:
        """Try to lock ``key`` for ``txn_id``; return False on conflict."""
        lock = self._locks.get(key)
        if lock is None or not lock.holders:
            self._locks[key] = _KeyLock(mode=mode, holders={txn_id})
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            return True
        if lock.holders == {txn_id}:
            # lock upgrade / re-entrant acquisition by the same transaction
            if mode == LockMode.EXCLUSIVE:
                lock.mode = LockMode.EXCLUSIVE
            return True
        if mode == LockMode.SHARED and lock.mode == LockMode.SHARED:
            lock.holders.add(txn_id)
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            return True
        return False

    def try_acquire_all(self, txn_id: str, keys_by_mode: Dict[str, LockMode]) -> bool:
        """Acquire a set of locks atomically; restore the table exactly on failure.

        Rollback must distinguish what this call *changed* from what the
        transaction already owned: only newly-taken keys are released, and a
        SHARED lock that this call upgraded to EXCLUSIVE is downgraded back.
        Keys the transaction held before the call stay held, in their
        original mode.
        """
        newly_acquired: List[str] = []
        upgraded: List[str] = []
        for key, mode in sorted(keys_by_mode.items()):
            lock = self._locks.get(key)
            pre_held = lock is not None and txn_id in lock.holders
            pre_mode = lock.mode if pre_held else None
            if not self.try_acquire(txn_id, key, mode):
                for taken in newly_acquired:
                    self.release(txn_id, taken)
                for up in upgraded:
                    self._locks[up].mode = LockMode.SHARED
                return False
            if not pre_held:
                newly_acquired.append(key)
            elif pre_mode == LockMode.SHARED and self._locks[key].mode == LockMode.EXCLUSIVE:
                upgraded.append(key)
        return True

    # ------------------------------------------------------------------ #
    # release and inspection
    # ------------------------------------------------------------------ #
    def release(self, txn_id: str, key: str) -> None:
        lock = self._locks.get(key)
        if lock is None:
            return
        lock.holders.discard(txn_id)
        held = self._held_by_txn.get(txn_id)
        if held is not None:
            held.discard(key)
        if not lock.holders:
            del self._locks[key]

    def release_all(self, txn_id: str) -> None:
        for key in sorted(self._held_by_txn.get(txn_id, set())):
            self.release(txn_id, key)
        self._held_by_txn.pop(txn_id, None)

    def holders(self, key: str) -> Set[str]:
        lock = self._locks.get(key)
        return set(lock.holders) if lock else set()

    def mode_of(self, key: str) -> "LockMode | None":
        """The mode ``key`` is currently held in, or ``None`` when free.

        Exposed for the lock-safety invariant (:mod:`repro.db.invariants`):
        a key with more than one holder must be in SHARED mode.
        """
        lock = self._locks.get(key)
        return lock.mode if lock and lock.holders else None

    def keys_held_by(self, txn_id: str) -> Set[str]:
        return set(self._held_by_txn.get(txn_id, set()))

    def locked_keys(self) -> List[str]:
        return sorted(k for k, lock in self._locks.items() if lock.holders)

    def is_locked(self, key: str) -> bool:
        lock = self._locks.get(key)
        return bool(lock and lock.holders)
