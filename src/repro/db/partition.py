"""The partition server process.

A partition owns a shard of the key space.  For every distributed transaction
it participates in, it:

1. receives the coordinator's ``EXEC`` request carrying its local operations
   and the agreed commit-round start time;
2. *prepares*: acquires no-wait locks for the read/write sets, logs a
   ``PREPARE`` record and derives its vote (1 if the locks were granted, 0 on
   conflict);
3. runs an **embedded instance** of the configured atomic-commit protocol
   among the transaction's participants — any protocol from
   :mod:`repro.protocols` can be plugged in unchanged because the embedded
   environment exposes the same :class:`~repro.env.ProcessEnv`
   interface the simulator gives to stand-alone protocol processes;
4. on decision, logs ``COMMIT``/``ABORT``, applies the write set to the
   versioned store (commit only), releases the locks and acknowledges the
   coordinator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.db.conflict import ConflictDetector
from repro.db.locks import LockManager, LockMode
from repro.db.store import VersionedStore
from repro.db.wal import ABORT as WAL_ABORT
from repro.db.wal import COMMIT as WAL_COMMIT
from repro.db.wal import PREPARE as WAL_PREPARE
from repro.db.wal import WriteAheadLog
from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess
from repro.protocols.two_phase import TwoPhaseCommit
from repro.env import Process

_TXN_TAG = "__txn__"
_TIMER_PREFIX = "txn/"
_PROPOSE_TIMER = "__propose__"


class EmbeddedCommitEnv:
    """A :class:`ProcessEnv` that tunnels one commit instance through its host.

    Local process ids ``1..k`` of the embedded protocol map onto the global
    partition ids of the transaction's participants; timers are namespaced per
    transaction and shifted so that the protocol's "time 0" is the agreed
    commit-round start time.
    """

    def __init__(
        self, host: "PartitionServer", txn_id: str, participants: List[int], start_time: float
    ):
        self.host = host
        self.txn_id = txn_id
        self.participants = list(participants)
        self.start_time = start_time

    # -- id mapping -------------------------------------------------------- #
    def global_pid(self, local_pid: int) -> int:
        return self.participants[local_pid - 1]

    def local_pid(self, global_pid: int) -> int:
        return self.participants.index(global_pid) + 1

    # -- ProcessEnv interface ----------------------------------------------- #
    def send(self, dst: int, payload: Any, module: str = "main") -> None:
        self.host.env.send(
            self.global_pid(dst),
            (_TXN_TAG, self.txn_id, payload),
            module=f"commit:{module}",
        )

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        self.host.env.set_timer(
            self.start_time + at_units, name=f"{_TIMER_PREFIX}{self.txn_id}/{name}"
        )

    def cancel_timer(self, name: str = "timer") -> None:
        self.host.env.cancel_timer(name=f"{_TIMER_PREFIX}{self.txn_id}/{name}")

    def decide(self, value: Any) -> None:
        self.host.on_commit_decision(self.txn_id, value)

    def now(self) -> float:
        return self.host.env.now() - self.start_time


class _PendingTransaction:
    """Per-transaction state kept by the partition between prepare and decide."""

    def __init__(
        self,
        txn_id: str,
        coordinator: int,
        participants: List[int],
        vote: int,
        writes: Dict[str, object],
        instance: Optional[AtomicCommitProcess],
    ):
        self.txn_id = txn_id
        self.coordinator = coordinator
        self.participants = participants
        self.vote = vote
        self.writes = writes
        self.instance = instance
        self.decided: Optional[int] = None


class PartitionServer(Process):
    """One shard of the distributed store, embedded-commit capable."""

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        env,
        commit_protocol: type = TwoPhaseCommit,
        commit_f: int = 1,
        protocol_kwargs: Optional[Dict[str, Any]] = None,
        tracer=None,
    ):
        super().__init__(pid, n, f, env)
        #: optional duck-typed span tracer (see ClusterConfig.tracer) — out of
        #: band, never consulted for any decision this process makes
        self.tracer = tracer
        self.store = VersionedStore()
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        self.conflicts = ConflictDetector()
        self.commit_protocol = commit_protocol
        self.commit_f = commit_f
        self.protocol_kwargs = dict(protocol_kwargs or {})
        self.transactions: Dict[str, _PendingTransaction] = {}
        #: messages for transactions whose EXEC has not arrived yet
        self._early_messages: Dict[str, List[Tuple[int, Any]]] = {}
        self.statistics = {"prepared": 0, "committed": 0, "aborted": 0, "vote_no": 0}
        #: set by recover_from_wal: where DONE acks go for transactions the
        #: previous incarnation left in doubt
        self._recovery_coordinator: Optional[int] = None

    # ------------------------------------------------------------------ #
    # inspection (anomaly reports)
    # ------------------------------------------------------------------ #
    def in_doubt_transactions(self) -> List[str]:
        """Transactions prepared here without a logged outcome.

        Non-empty after a run exactly when the embedded commit protocol left
        this partition blocked (or the run was cut off mid-flight) — the
        data-layer face of a termination violation.
        """
        return self.wal.in_doubt()

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:  # pragma: no cover - not used
        pass

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "EXEC":
            _, txn_id, start_time, participants, reads, writes = payload
            self._prepare(src, txn_id, start_time, list(participants), list(reads), dict(writes))
        elif kind == _TXN_TAG:
            _, txn_id, inner = payload
            self._deliver_commit_message(src, txn_id, inner)
        elif kind == "READ":
            _, request_id, key = payload
            value = self.store.get_or_default(key)
            self.send(src, ("READ-REPLY", request_id, key, value))
        elif kind == "OUTCOME?":
            # termination query from a recovering peer: answer only when the
            # outcome is durably known here
            _, txn_id = payload
            outcome = self.wal.outcome_of(txn_id)
            if outcome is not None:
                decision = COMMIT if outcome == WAL_COMMIT else ABORT
                self.send(src, ("OUTCOME", txn_id, decision))
        elif kind == "OUTCOME":
            _, txn_id, decision = payload
            self._apply_recovered_outcome(txn_id, decision)

    def on_timeout(self, name: str) -> None:
        if not name.startswith(_TIMER_PREFIX):
            return
        _, txn_id, timer_name = name.split("/", 2)
        pending = self.transactions.get(txn_id)
        if pending is None:
            return
        if timer_name == _PROPOSE_TIMER:
            if self.tracer is not None:
                # the commit round on this participant: closed by the
                # embedded protocol's decision in on_commit_decision
                self.tracer.begin(self.pid, txn_id, "decision", self.now())
            if pending.instance is not None:
                pending.instance.on_propose(pending.vote)
            else:
                # single-participant transaction: decide locally
                self.on_commit_decision(txn_id, pending.vote)
            return
        if pending.instance is not None:
            pending.instance.timeout(timer_name)

    # ------------------------------------------------------------------ #
    # prepare
    # ------------------------------------------------------------------ #
    def _prepare(
        self,
        coordinator: int,
        txn_id: str,
        start_time: float,
        participants: List[int],
        reads: List[str],
        writes: Dict[str, object],
    ) -> None:
        # idempotent resubmission (client retry / duplicate EXEC): the first
        # EXEC stands.  A decided transaction gets its DONE re-sent (the
        # lost-ack retry path); an in-flight or in-doubt one is left to the
        # running commit round / termination query.
        pending = self.transactions.get(txn_id)
        if pending is not None:
            if pending.decided is not None:
                self.send(coordinator, ("DONE", txn_id, pending.decided, self.now()))
            return
        outcome = self.wal.outcome_of(txn_id)
        if outcome is not None:  # decided by a previous incarnation
            decision = COMMIT if outcome == WAL_COMMIT else ABORT
            self.send(coordinator, ("DONE", txn_id, decision, self.now()))
            return
        if self.wal.prepare_record_of(txn_id) is not None:
            return  # in doubt from a previous incarnation; resolution owns it
        keys_by_mode = {key: LockMode.SHARED for key in reads}
        keys_by_mode.update({key: LockMode.EXCLUSIVE for key in writes})
        granted = self.locks.try_acquire_all(txn_id, keys_by_mode)
        vote = COMMIT if granted else ABORT
        if not granted:
            self.statistics["vote_no"] += 1
        self.conflicts.begin(txn_id, reads=set(reads), writes=set(writes))
        self.wal.append(
            WAL_PREPARE,
            txn_id,
            writes=writes,
            timestamp=self.now(),
            participants=tuple(participants),
        )
        self.statistics["prepared"] += 1
        if self.tracer is not None:
            # EXEC receipt (locks taken, PREPARE logged, vote derived) until
            # the agreed commit-round start on this participant
            self.tracer.complete(
                self.pid,
                txn_id,
                "PREPARE-vote",
                self.now(),
                max(start_time, self.now()),
                vote=vote,
            )

        instance = None
        if len(participants) > 1:
            commit_env = EmbeddedCommitEnv(self, txn_id, participants, start_time)
            local_pid = commit_env.local_pid(self.pid)
            local_n = len(participants)
            local_f = max(1, min(self.commit_f, local_n - 1))
            instance = self.commit_protocol(
                local_pid, local_n, local_f, commit_env, **self.protocol_kwargs
            )
        pending = _PendingTransaction(
            txn_id=txn_id,
            coordinator=coordinator,
            participants=participants,
            vote=vote,
            writes=writes,
            instance=instance,
        )
        self.transactions[txn_id] = pending
        # align the start of the commit round across participants
        self.env.set_timer(start_time, name=f"{_TIMER_PREFIX}{txn_id}/{_PROPOSE_TIMER}")
        # replay any commit messages that raced ahead of the EXEC request
        for src, inner in self._early_messages.pop(txn_id, []):
            self._deliver_commit_message(src, txn_id, inner)

    # ------------------------------------------------------------------ #
    # the embedded commit instance
    # ------------------------------------------------------------------ #
    def _deliver_commit_message(self, src: int, txn_id: str, inner: Any) -> None:
        pending = self.transactions.get(txn_id)
        if pending is None or pending.instance is None:
            self._early_messages.setdefault(txn_id, []).append((src, inner))
            return
        env: EmbeddedCommitEnv = pending.instance.env  # type: ignore[assignment]
        local_src = env.local_pid(src)
        pending.instance.deliver(local_src, inner)

    def on_commit_decision(self, txn_id: str, decision: int) -> None:
        """Callback from the embedded commit instance (or local decision)."""
        pending = self.transactions.get(txn_id)
        if pending is None or pending.decided is not None:
            return
        pending.decided = decision
        if decision == COMMIT:
            self.wal.append(WAL_COMMIT, txn_id, writes=pending.writes, timestamp=self.now())
            if pending.writes:
                self.store.apply_many(pending.writes, txn_id=txn_id)
            self.statistics["committed"] += 1
        else:
            self.wal.append(WAL_ABORT, txn_id, timestamp=self.now())
            self.statistics["aborted"] += 1
        self.locks.release_all(txn_id)
        self.conflicts.finish(txn_id)
        if self.tracer is not None:
            self.tracer.end(self.pid, txn_id, "decision", self.now(), decision=decision)
        self.send(pending.coordinator, ("DONE", txn_id, decision, self.now()))

    # ------------------------------------------------------------------ #
    # crash recovery: rejoin from the write-ahead log
    # ------------------------------------------------------------------ #
    def recover_from_wal(
        self, wal: WriteAheadLog, coordinator: Optional[int] = None
    ) -> int:
        """Adopt the durable log of a crashed incarnation and rebuild state.

        The store is reconstructed from :meth:`WriteAheadLog.replay` (torn
        tail records are invisible, so a crash mid-append loses exactly that
        record); exclusive locks are re-installed for every in-doubt write
        set so no conflicting transaction can slip in before the outcome is
        known; statistics are rebuilt from the log (votes are volatile and
        start from zero).  Idempotent: calling it again replays into a fresh
        store and reaches the same state.  Returns the number of committed
        transactions replayed.
        """
        self.wal = wal
        self.store = VersionedStore()
        wal.replay(self.store)
        self.locks = LockManager()
        self.conflicts = ConflictDetector()
        self.transactions = {}
        self._early_messages = {}
        self._recovery_coordinator = coordinator
        committed = set()
        aborted = set()
        prepared = 0
        for record in wal.records():
            if record.torn:
                continue
            if record.kind == WAL_PREPARE:
                prepared += 1
            elif record.kind == WAL_COMMIT:
                committed.add(record.txn_id)
            elif record.kind == WAL_ABORT:
                aborted.add(record.txn_id)
        self.statistics = {
            "prepared": prepared,
            "committed": len(committed),
            "aborted": len(aborted),
            "vote_no": 0,
        }
        for txn_id in wal.in_doubt():
            record = wal.prepare_record_of(txn_id)
            writes = dict(record.writes) if record is not None else {}
            if writes:
                self.locks.try_acquire_all(
                    txn_id, {key: LockMode.EXCLUSIVE for key in writes}
                )
        return len(committed)

    def on_recover(self) -> None:
        """Rejoin hook: issue termination queries for in-doubt transactions."""
        if self._recovery_coordinator is not None:
            self.resolve_in_doubt(self._recovery_coordinator)

    def resolve_in_doubt(self, coordinator: int) -> List[str]:
        """Ask the coordinator and every peer participant for the outcome of
        each in-doubt transaction; returns the queried transaction ids."""
        self._recovery_coordinator = coordinator
        unresolved = self.wal.in_doubt()
        for txn_id in unresolved:
            if self.tracer is not None:
                # the termination query window: closed when the outcome is
                # installed by _apply_recovered_outcome
                self.tracer.begin(self.pid, txn_id, "OUTCOME?", self.now())
            record = self.wal.prepare_record_of(txn_id)
            targets = {coordinator}
            if record is not None:
                targets.update(p for p in record.participants if p != self.pid)
            for dst in sorted(targets):
                self.send(dst, ("OUTCOME?", txn_id))
        return unresolved

    def _apply_recovered_outcome(self, txn_id: str, decision: int) -> None:
        """Install a termination-query answer for an in-doubt transaction."""
        if self.wal.outcome_of(txn_id) is not None:
            return  # already resolved; duplicate replies are expected
        record = self.wal.prepare_record_of(txn_id)
        if record is None:
            return  # never prepared here: a stray reply
        writes = dict(record.writes)
        if decision == COMMIT:
            self.wal.append(WAL_COMMIT, txn_id, writes=writes, timestamp=self.now())
            if writes:
                self.store.apply_many(writes, txn_id=txn_id)
            self.statistics["committed"] += 1
        else:
            self.wal.append(WAL_ABORT, txn_id, timestamp=self.now())
            self.statistics["aborted"] += 1
        self.locks.release_all(txn_id)
        self.conflicts.finish(txn_id)
        if self.tracer is not None:
            self.tracer.end(self.pid, txn_id, "OUTCOME?", self.now(), decision=decision)
        if self._recovery_coordinator is not None:
            self.send(
                self._recovery_coordinator, ("DONE", txn_id, decision, self.now())
            )
