"""Versioned in-memory key-value storage for one partition."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError


@dataclass
class VersionRecord:
    """One committed version of a key."""

    version: int
    value: object
    txn_id: Optional[str] = None


@dataclass
class VersionedStore:
    """A small multi-version key-value store.

    Every committed write appends a new version; reads return the latest
    version (or the latest version at or below a requested snapshot version,
    which the Helios-style conflict-detection example uses to read consistent
    snapshots).
    """

    _data: Dict[str, List[VersionRecord]] = field(default_factory=dict)
    _version_counter: int = 0

    # -- writes ----------------------------------------------------------- #
    def apply(self, key: str, value: object, txn_id: Optional[str] = None) -> int:
        """Commit a new version of ``key`` and return its version number."""
        self._version_counter += 1
        record = VersionRecord(version=self._version_counter, value=value, txn_id=txn_id)
        self._data.setdefault(key, []).append(record)
        return record.version

    def apply_many(self, writes: Dict[str, object], txn_id: Optional[str] = None) -> int:
        """Commit a batch of writes atomically (single version for the batch)."""
        self._version_counter += 1
        version = self._version_counter
        for key, value in writes.items():
            self._data.setdefault(key, []).append(
                VersionRecord(version=version, value=value, txn_id=txn_id)
            )
        return version

    # -- reads ------------------------------------------------------------ #
    def get(self, key: str, at_version: Optional[int] = None) -> object:
        """Return the latest value of ``key`` (optionally at a snapshot)."""
        versions = self._data.get(key)
        if not versions:
            raise StorageError(f"key {key!r} does not exist")
        if at_version is None:
            return versions[-1].value
        for record in reversed(versions):
            if record.version <= at_version:
                return record.value
        raise StorageError(f"key {key!r} has no version <= {at_version}")

    def get_or_default(self, key: str, default: object = None) -> object:
        try:
            return self.get(key)
        except StorageError:
            return default

    def contains(self, key: str) -> bool:
        return key in self._data

    def latest_version(self, key: str) -> Optional[int]:
        versions = self._data.get(key)
        return versions[-1].version if versions else None

    def current_version(self) -> int:
        """The store-wide version counter (largest committed version)."""
        return self._version_counter

    def keys(self) -> List[str]:
        return sorted(self._data)

    def history(self, key: str) -> List[VersionRecord]:
        """Full version history of a key (most recent last)."""
        return list(self._data.get(key, []))

    def snapshot(self) -> Dict[str, object]:
        """Latest value of every key (used by tests and examples)."""
        return {key: versions[-1].value for key, versions in self._data.items()}

    def transactions_applied(self) -> List[str]:
        """Sorted distinct transaction ids with at least one committed version.

        The atomicity invariant (:mod:`repro.db.invariants`) cross-checks
        this against the WAL: a store must never contain versions of a
        transaction whose logged outcome is ABORT.
        """
        return sorted(
            {
                record.txn_id
                for versions in self._data.values()
                for record in versions
                if record.txn_id is not None
            }
        )

    def __len__(self) -> int:
        return len(self._data)
