"""Transactions as sets of per-partition operations (minitransaction style)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One read or write of one key on one partition."""

    kind: str
    partition: int
    key: str
    value: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ConfigurationError(f"unknown operation kind {self.kind!r}")
        if self.kind == WRITE and self.value is None:
            raise ConfigurationError(f"write of {self.key!r} needs a value")

    @classmethod
    def read(cls, partition: int, key: str) -> "Operation":
        return cls(kind=READ, partition=partition, key=key)

    @classmethod
    def write(cls, partition: int, key: str, value: object) -> "Operation":
        return cls(kind=WRITE, partition=partition, key=key, value=value)


@dataclass
class Transaction:
    """A distributed transaction: an id plus operations spanning partitions."""

    txn_id: str
    operations: List[Operation] = field(default_factory=list)
    submit_time: float = 0.0

    def participants(self) -> List[int]:
        """Sorted list of partitions touched by the transaction."""
        return sorted({op.partition for op in self.operations})

    def operations_for(self, partition: int) -> List[Operation]:
        return [op for op in self.operations if op.partition == partition]

    def read_set(self, partition: Optional[int] = None) -> List[str]:
        return [
            op.key
            for op in self.operations
            if op.kind == READ and (partition is None or op.partition == partition)
        ]

    def write_set(self, partition: Optional[int] = None) -> Dict[str, object]:
        return {
            op.key: op.value
            for op in self.operations
            if op.kind == WRITE and (partition is None or op.partition == partition)
        }

    def is_distributed(self) -> bool:
        return len(self.participants()) > 1

    @classmethod
    def of(
        cls, txn_id: str, operations: Sequence[Operation], submit_time: float = 0.0
    ) -> "Transaction":
        if not operations:
            raise ConfigurationError(f"transaction {txn_id!r} has no operations")
        return cls(txn_id=txn_id, operations=list(operations), submit_time=submit_time)
