"""Write-ahead log for one partition.

The log records the lifecycle of every transaction the partition participates
in (``PREPARE`` with the buffered writes, then ``COMMIT`` or ``ABORT``).  The
store is only mutated when a ``COMMIT`` record is appended, so replaying the
log after a crash reconstructs exactly the committed state — the recovery test
in ``tests/db/test_wal.py`` exercises this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.db.store import VersionedStore
from repro.errors import StorageError

PREPARE = "PREPARE"
COMMIT = "COMMIT"
ABORT = "ABORT"


@dataclass
class WalRecord:
    """One append-only log record."""

    lsn: int
    kind: str
    txn_id: str
    writes: Dict[str, object] = field(default_factory=dict)
    timestamp: float = 0.0


class WriteAheadLog:
    """Append-only per-partition log."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []

    def append(
        self,
        kind: str,
        txn_id: str,
        writes: Optional[Dict[str, object]] = None,
        timestamp: float = 0.0,
    ) -> WalRecord:
        if kind not in (PREPARE, COMMIT, ABORT):
            raise StorageError(f"unknown WAL record kind {kind!r}")
        record = WalRecord(
            lsn=len(self._records) + 1,
            kind=kind,
            txn_id=txn_id,
            writes=dict(writes or {}),
            timestamp=timestamp,
        )
        self._records.append(record)
        return record

    def records(self) -> List[WalRecord]:
        return list(self._records)

    def records_for(self, txn_id: str) -> List[WalRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def outcome_of(self, txn_id: str) -> Optional[str]:
        """COMMIT / ABORT if decided, None if only prepared (in doubt)."""
        for record in reversed(self._records):
            if record.txn_id == txn_id and record.kind in (COMMIT, ABORT):
                return record.kind
        return None

    def in_doubt(self) -> List[str]:
        """Transactions prepared on this partition without a recorded outcome."""
        prepared = [r.txn_id for r in self._records if r.kind == PREPARE]
        return [txn for txn in prepared if self.outcome_of(txn) is None]

    def replay(self, store: Optional[VersionedStore] = None) -> VersionedStore:
        """Rebuild the committed store state from the log."""
        store = store if store is not None else VersionedStore()
        prepared: Dict[str, Dict[str, object]] = {}
        for record in self._records:
            if record.kind == PREPARE:
                prepared[record.txn_id] = record.writes
            elif record.kind == COMMIT:
                writes = record.writes or prepared.get(record.txn_id, {})
                if writes:
                    store.apply_many(writes, txn_id=record.txn_id)
        return store

    def __len__(self) -> int:
        return len(self._records)
