"""Write-ahead log for one partition.

The log records the lifecycle of every transaction the partition participates
in (``PREPARE`` with the buffered writes, then ``COMMIT`` or ``ABORT``).  The
store is only mutated when a ``COMMIT`` record is appended, so replaying the
log after a crash reconstructs exactly the committed state — the recovery test
in ``tests/db/test_wal.py`` exercises this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.db.store import VersionedStore
from repro.errors import StorageError

PREPARE = "PREPARE"
COMMIT = "COMMIT"
ABORT = "ABORT"


@dataclass
class WalRecord:
    """One append-only log record.

    ``torn`` marks a record whose append was interrupted by a crash (a torn
    final write).  Torn records are kept in the log for inspection but are
    invisible to recovery: :meth:`WriteAheadLog.replay`,
    :meth:`~WriteAheadLog.outcome_of` and :meth:`~WriteAheadLog.in_doubt`
    all skip them, exactly as a checksum-failing tail record would be
    discarded by a real recovery pass.
    """

    lsn: int
    kind: str
    txn_id: str
    writes: Dict[str, object] = field(default_factory=dict)
    timestamp: float = 0.0
    torn: bool = False
    #: participant pids logged with PREPARE, so a recovering partition knows
    #: which peers to ask when a transaction is in doubt
    participants: tuple = ()


class WriteAheadLog:
    """Append-only per-partition log."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []

    def append(
        self,
        kind: str,
        txn_id: str,
        writes: Optional[Dict[str, object]] = None,
        timestamp: float = 0.0,
        participants: tuple = (),
    ) -> WalRecord:
        if kind not in (PREPARE, COMMIT, ABORT):
            raise StorageError(f"unknown WAL record kind {kind!r}")
        record = WalRecord(
            lsn=len(self._records) + 1,
            kind=kind,
            txn_id=txn_id,
            writes=dict(writes or {}),
            timestamp=timestamp,
            participants=tuple(participants),
        )
        self._records.append(record)
        return record

    def tear_final_record(self) -> Optional[WalRecord]:
        """Mark the final record torn, simulating a crash mid-append.

        Recovery (``replay`` / ``outcome_of`` / ``in_doubt``) treats a torn
        record as if it had never been written; returns the torn record, or
        ``None`` on an empty log.
        """
        if not self._records:
            return None
        self._records[-1].torn = True
        return self._records[-1]

    def records(self) -> List[WalRecord]:
        return list(self._records)

    def records_for(self, txn_id: str) -> List[WalRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def transaction_ids(self) -> List[str]:
        """Distinct transaction ids with at least one intact record, in
        first-appearance order — a recovery-inspection helper (the invariant
        battery builds its own txn -> outcome view in one pass instead)."""
        seen: Dict[str, None] = {}
        for record in self._records:
            if not record.torn:
                seen.setdefault(record.txn_id)
        return list(seen)

    def outcome_of(self, txn_id: str) -> Optional[str]:
        """COMMIT / ABORT if decided, None if only prepared (in doubt)."""
        for record in reversed(self._records):
            if record.torn:
                continue
            if record.txn_id == txn_id and record.kind in (COMMIT, ABORT):
                return record.kind
        return None

    def prepare_record_of(self, txn_id: str) -> Optional[WalRecord]:
        """The latest intact PREPARE record of ``txn_id``, if any.

        Recovery reads the buffered writes and the participant set from here
        when re-installing locks and issuing termination queries.
        """
        for record in reversed(self._records):
            if record.torn:
                continue
            if record.txn_id == txn_id and record.kind == PREPARE:
                return record
        return None

    def in_doubt(self) -> List[str]:
        """Transactions prepared on this partition without a recorded outcome."""
        prepared = [
            r.txn_id for r in self._records if r.kind == PREPARE and not r.torn
        ]
        return [txn for txn in prepared if self.outcome_of(txn) is None]

    def replay(self, store: Optional[VersionedStore] = None) -> VersionedStore:
        """Rebuild the committed store state from the log.

        Replaying an empty log returns an empty store; torn records are
        skipped; replaying the same log twice into the same store is
        idempotent at the snapshot level (committed values are re-applied,
        never changed).
        """
        store = store if store is not None else VersionedStore()
        prepared: Dict[str, Dict[str, object]] = {}
        for record in self._records:
            if record.torn:
                continue
            if record.kind == PREPARE:
                prepared[record.txn_id] = record.writes
            elif record.kind == COMMIT:
                writes = record.writes or prepared.get(record.txn_id, {})
                if writes:
                    store.apply_many(writes, txn_id=record.txn_id)
        return store

    def __len__(self) -> int:
        return len(self._records)
