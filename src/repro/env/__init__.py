"""The runtime-neutral process/environment contract.

Every protocol in this library (atomic commit, consensus, database partitions)
is written as a subclass of :class:`Process` whose methods mirror the paper's
pseudocode structure:

* ``on_propose(value)``   — the ``<Propose | v>`` event;
* ``on_deliver(src, msg)``— the ``<pl, Deliver | p, m>`` event;
* ``on_timeout(name)``    — the ``<timer, Timeout>`` event.

A process interacts with the world exclusively through its :class:`ProcessEnv`
(send, set_timer, cancel_timer, decide, now).  Two runtimes provide it:

* the discrete-event simulator (:class:`repro.sim.runner.SimEnv`) — virtual
  time, deterministic, the repo's test oracle;
* the asyncio transport runtime (:class:`repro.runtime.AsyncEnv`) — wall
  clock scaled so one unit of simulated time ``U`` maps to
  ``AsyncRuntime.unit`` seconds, real concurrency.

Embedding adapters (e.g. :class:`repro.db.partition.EmbeddedCommitEnv`, which
hosts a per-transaction commit instance inside a partition server) tunnel the
same contract through a host process, which is what lets the very same
protocol classes be measured for the paper's tables, reused as the commit
layer of the transactional key-value store, and served over a live asyncio
cluster — without a single protocol-side edit.

The contract (normative)
------------------------
Any ``ProcessEnv`` implementation must satisfy the semantics below; the
executable version is :func:`repro.env.conformance.run_conformance`, which
both bundled runtimes pass (``tests/test_env_conformance.py``):

* **send** is a perfect point-to-point link under the configured fault model:
  no duplication, no corruption; a message to self arrives locally and is not
  counted as a network message (footnote 10 of the paper).
* **set_timer(at_units, name)** (re-)arms the *named* timer to fire at the
  absolute time ``at_units`` (units of U).  Re-arming before the fire
  supersedes the pending fire — the timer fires exactly once, at the last
  requested time.  A deadline in the past fires as soon as possible, never
  before the current event handler returns.
* **cancel_timer(name)** disarms the named timer if pending; cancelling a
  timer that already fired (or was never armed) is a no-op, not an error.
* **decide(value)** records this process' decision exactly once; a second
  call raises :class:`~repro.errors.ProtocolViolationError` (the integrity
  property, enforced at the environment boundary).
* **now()** is monotonically non-decreasing within a process, expressed in
  units of U, and a timer never fires at ``now() < at_units`` (up to the
  runtime's stated tolerance — exact in the simulator, scheduling jitter
  only on the asyncio runtime).

Sub-modules
-----------
Protocols that rely on an underlying service (the consensus module ``uc`` /
``iuc`` in the paper) attach a *component* to the process.  Components receive
the messages addressed to them through a module-tagged envelope
``("__mod__", module_name, inner_payload)`` and share the host's timers via
namespaced timer names (``"module:name"``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol

from repro.errors import ProtocolViolationError

MODULE_ENVELOPE = "__mod__"


class ProcessEnv(Protocol):
    """The environment a process runs in (simulation, embedded, or asyncio)."""

    def send(self, dst: int, payload: Any, module: str = "main") -> None:
        """Send ``payload`` to process ``dst`` over a perfect point-to-point link."""
        ...  # pragma: no cover

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        """(Re-)arm the named timer to fire at absolute time ``at_units`` (units of U)."""
        ...  # pragma: no cover

    def cancel_timer(self, name: str = "timer") -> None:
        """Disarm the named timer if pending."""
        ...  # pragma: no cover

    def decide(self, value: Any) -> None:
        """Record this process' decision."""
        ...  # pragma: no cover

    def now(self) -> float:
        """Current virtual (or wall-clock) time in units of U."""
        ...  # pragma: no cover


class ProcessComponent:
    """A sub-protocol hosted inside a process (e.g. the consensus module).

    Subclasses override :meth:`on_deliver` and :meth:`on_timeout`; they talk to
    peers through :meth:`send`, which wraps payloads in the module envelope so
    the host process on the other side can route them back to the peer
    component with the same name.
    """

    def __init__(self, host: "Process", name: str):
        self.host = host
        self.name = name

    # -- outgoing ------------------------------------------------------- #
    def send(self, dst: int, payload: Any) -> None:
        self.host.env.send(dst, (MODULE_ENVELOPE, self.name, payload), module=self.name)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        for dst in self.host.all_pids():
            if not include_self and dst == self.host.pid:
                continue
            self.send(dst, payload)

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        self.host.env.set_timer(at_units, name=f"{self.name}:{name}")

    def cancel_timer(self, name: str = "timer") -> None:
        self.host.env.cancel_timer(name=f"{self.name}:{name}")

    def now(self) -> float:
        return self.host.env.now()

    # -- incoming ------------------------------------------------------- #
    def on_deliver(self, src: int, payload: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_timeout(self, name: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Process:
    """Base class for all processes, independent of the hosting runtime.

    Parameters
    ----------
    pid:
        1-based process id, matching the paper's ``P1 ... Pn`` notation.
    n:
        Total number of processes.
    f:
        Maximum number of processes that may crash (``1 <= f <= n - 1``).
    env:
        The :class:`ProcessEnv` this process uses to interact with the world.
    """

    def __init__(self, pid: int, n: int, f: int, env: ProcessEnv):
        self.pid = pid
        self.n = n
        self.f = f
        self.env = env
        self.crashed = False
        self._components: Dict[str, ProcessComponent] = {}

    # ------------------------------------------------------------------ #
    # identity helpers mirroring the paper's notation
    # ------------------------------------------------------------------ #
    def all_pids(self) -> range:
        """``Ω`` — every process id, 1..n."""
        return range(1, self.n + 1)

    def other_pids(self) -> list:
        """``Ω \\ {self}``."""
        return [p for p in self.all_pids() if p != self.pid]

    def mod_index(self, i: int) -> int:
        """The paper's ``%`` convention: modulo n, but 0 maps to n."""
        r = i % self.n
        return self.n if r == 0 else r

    # ------------------------------------------------------------------ #
    # component plumbing
    # ------------------------------------------------------------------ #
    def attach_component(self, component: ProcessComponent) -> ProcessComponent:
        if component.name in self._components:
            raise ProtocolViolationError(
                f"component {component.name!r} already attached to P{self.pid}"
            )
        self._components[component.name] = component
        return component

    def component(self, name: str) -> Optional[ProcessComponent]:
        return self._components.get(name)

    # ------------------------------------------------------------------ #
    # convenience wrappers over the environment
    # ------------------------------------------------------------------ #
    def send(self, dst: int, payload: Any) -> None:
        self.env.send(dst, payload)

    def send_all(self, payload: Any, include_self: bool = True) -> None:
        """Send to every process in ``Ω`` (``forall q ∈ Ω`` in the pseudocode)."""
        for dst in self.all_pids():
            if not include_self and dst == self.pid:
                continue
            self.env.send(dst, payload)

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        self.env.set_timer(at_units, name=name)

    def decide(self, value: Any) -> None:
        self.env.decide(value)

    def now(self) -> float:
        return self.env.now()

    # ------------------------------------------------------------------ #
    # event dispatch (called by the scheduler / embedding adapter)
    # ------------------------------------------------------------------ #
    def deliver(self, src: int, payload: Any) -> None:
        """Route an incoming message either to a component or to the protocol."""
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == MODULE_ENVELOPE
        ):
            _, module_name, inner = payload
            component = self._components.get(module_name)
            if component is not None:
                component.on_deliver(src, inner)
            return
        self.on_deliver(src, payload)

    def timeout(self, name: str) -> None:
        """Route a timer expiry either to a component or to the protocol."""
        if ":" in name:
            module_name, inner_name = name.split(":", 1)
            component = self._components.get(module_name)
            if component is not None:
                component.on_timeout(inner_name)
                return
        self.on_timeout(name)

    # ------------------------------------------------------------------ #
    # handlers protocols override
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Called once, at time 0, before any propose/deliver event."""

    def on_propose(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_deliver(self, src: int, payload: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_timeout(self, name: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_crash(self) -> None:
        """Hook invoked when the fault plan crashes this process."""

    def on_recover(self) -> None:
        """Hook invoked when this (possibly rebuilt) process rejoins.

        Called by the hosting runtime after a crash recovery, once the
        process is live again: timers of the previous incarnation have been
        cancelled and the network accepts its traffic.  Recovery-aware
        processes re-arm timers and issue termination queries here.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(P{self.pid}, n={self.n}, f={self.f})"


__all__ = ["MODULE_ENVELOPE", "Process", "ProcessComponent", "ProcessEnv"]
