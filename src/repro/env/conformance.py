"""Executable conformance suite for the :class:`~repro.env.ProcessEnv` contract.

The contract in :mod:`repro.env` is stated in prose; this module makes it
executable.  A *harness* adapts one runtime to a tiny common driver surface:

.. code-block:: python

    class EnvHarness(Protocol):
        name: str
        tolerance_units: float          # timer-fire slack the runtime claims

        def run(self, factories, n, f, *, duration_units, proposals=None)
            -> HarnessResult

``factories`` maps pid -> ``factory(pid, n, f, env) -> Process``; the harness
builds an environment per pid, runs every process for ``duration_units`` units
of (virtual or scaled wall-clock) time and returns the live process objects
plus the decisions the environment recorded.  The simulator harness
(:class:`SimHarness`, defined here) and the asyncio harness
(:class:`repro.runtime.conformance.AsyncHarness`) both drive exactly the same
probe processes through :func:`run_conformance`; the scenarios cover the
clauses runtimes most easily get wrong:

* ``timer-rearm`` — re-arming a pending timer supersedes it (one fire, at the
  last requested deadline);
* ``timer-cancel`` — a cancelled timer never fires;
* ``timer-cancel-after-fire`` — cancelling a fired timer is a silent no-op;
* ``module-envelope`` — component messages route to the peer component,
  main-channel messages to the process, component timers to the component;
* ``decide-once`` — the second ``decide`` raises
  :class:`~repro.errors.ProtocolViolationError` and the first value sticks;
* ``now-monotonic`` — ``now()`` never goes backwards and timers never fire
  early (beyond the harness' stated tolerance).

``run_conformance(harness)`` returns a list of human-readable failures; an
empty list means the runtime honours the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.env import Process, ProcessComponent
from repro.errors import ProtocolViolationError

#: how long every scenario runs, in units of U — all probe timers fire
#: strictly before this horizon
SCENARIO_DURATION_UNITS = 4.0


@dataclass
class HarnessResult:
    """What one harness run exposes to the scenario checkers."""

    processes: Dict[int, Process]
    decisions: Dict[int, Any] = field(default_factory=dict)
    #: unexpected handler exceptions the runtime swallowed, as strings
    errors: List[str] = field(default_factory=list)


class EnvHarness(Protocol):
    """Adapter driving probe processes on one runtime."""

    name: str
    #: slack allowed on timer fire times / now() samples, in units of U
    #: (0 for the simulator; scheduling jitter for wall-clock runtimes)
    tolerance_units: float

    def run(
        self,
        factories: Dict[int, Callable[[int, int, int, Any], Process]],
        n: int,
        f: int,
        *,
        duration_units: float,
        proposals: Optional[Dict[int, Any]] = None,
    ) -> HarnessResult:
        ...  # pragma: no cover


# --------------------------------------------------------------------------- #
# probe processes
# --------------------------------------------------------------------------- #
class ObservingProcess(Process):
    """Base probe: records ``(kind, detail, now)`` observations."""

    def __init__(self, pid: int, n: int, f: int, env):
        super().__init__(pid, n, f, env)
        self.observations: List[Tuple[str, Any, float]] = []

    def note(self, kind: str, detail: Any = None) -> None:
        self.observations.append((kind, detail, self.now()))

    def of(self, kind: str) -> List[Tuple[str, Any, float]]:
        return [obs for obs in self.observations if obs[0] == kind]

    # passive defaults so a probe only overrides what it exercises
    def on_propose(self, value: Any) -> None:
        self.note("propose", value)

    def on_deliver(self, src: int, payload: Any) -> None:
        self.note("deliver", (src, payload))

    def on_timeout(self, name: str) -> None:
        self.note("timeout", name)


class _RearmProbe(ObservingProcess):
    """Arms a timer at 1.0 then immediately re-arms it at 2.5."""

    def on_start(self) -> None:
        self.set_timer(1.0, name="re")
        self.set_timer(2.5, name="re")


class _CancelProbe(ObservingProcess):
    """Arms a timer then cancels it; a sentinel timer keeps the run alive."""

    def on_start(self) -> None:
        self.set_timer(1.0, name="gone")
        self.env.cancel_timer(name="gone")
        self.set_timer(2.0, name="sentinel")


class _CancelAfterFireProbe(ObservingProcess):
    """Cancels a timer *after* it fired — must be a silent no-op."""

    def on_start(self) -> None:
        self.set_timer(1.0, name="once")

    def on_timeout(self, name: str) -> None:
        super().on_timeout(name)
        if name == "once":
            try:
                self.env.cancel_timer(name="once")
                self.note("cancel-after-fire-ok")
            except Exception as exc:  # noqa: BLE001 - the defect under test
                self.note("cancel-after-fire-raised", repr(exc))


class _EchoComponent(ProcessComponent):
    """Replies ``("pong", x)`` to ``("ping", x)``; records everything."""

    def __init__(self, host: ObservingProcess, name: str = "echo"):
        super().__init__(host, name)

    def on_deliver(self, src: int, payload: Any) -> None:
        self.host.note("component-deliver", (src, payload))
        if isinstance(payload, tuple) and payload[0] == "ping":
            self.send(src, ("pong", payload[1]))

    def on_timeout(self, name: str) -> None:
        self.host.note("component-timeout", name)


class _EnvelopeProbe(ObservingProcess):
    """Exercises component routing: messages, replies and namespaced timers."""

    def __init__(self, pid: int, n: int, f: int, env):
        super().__init__(pid, n, f, env)
        self.echo = self.attach_component(_EchoComponent(self))

    def on_start(self) -> None:
        if self.pid == 1:
            self.echo.send(2, ("ping", "m1"))
            self.send(2, ("plain", "m2"))
            self.echo.set_timer(1.5, name="tick")


class _DecideOnceProbe(ObservingProcess):
    """Decides once, then verifies the second decide raises."""

    def on_start(self) -> None:
        self.env.decide(1)
        self.note("decided-first")
        try:
            self.env.decide(0)
            self.note("second-decide-accepted")
        except ProtocolViolationError:
            self.note("second-decide-raised")


class _MonotonicProbe(ObservingProcess):
    """Samples now() across timers and a message round-trip."""

    def on_start(self) -> None:
        self.note("sample")
        for index, at in enumerate((0.5, 1.2, 2.0)):
            self.set_timer(at, name=f"t{index}")
        if self.pid == 1:
            self.send(2, ("echo-request",))

    def on_timeout(self, name: str) -> None:
        self.note("sample")
        self.note("fire", name)

    def on_deliver(self, src: int, payload: Any) -> None:
        self.note("sample")
        if payload == ("echo-request",):
            self.send(src, ("echo-reply",))


def _passive(pid: int, n: int, f: int, env) -> Process:
    return ObservingProcess(pid, n, f, env)


# --------------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------------- #
def _check_rearm(result: HarnessResult, tol: float) -> List[str]:
    probe = result.processes[1]
    fires = probe.of("timeout")
    if len(fires) != 1:
        return [f"timer-rearm: expected exactly one fire, saw {fires}"]
    _, name, at = fires[0]
    if name != "re":
        return [f"timer-rearm: unexpected timer name {name!r}"]
    if at < 2.5 - tol:
        return [
            f"timer-rearm: fired at {at:.3f} < 2.5 — the re-arm did not "
            "supersede the earlier deadline"
        ]
    return []


def _check_cancel(result: HarnessResult, tol: float) -> List[str]:
    probe = result.processes[1]
    fired = {name for _, name, _ in probe.of("timeout")}
    failures = []
    if "gone" in fired:
        failures.append("timer-cancel: a cancelled timer fired")
    if "sentinel" not in fired:
        failures.append("timer-cancel: the sentinel timer never fired")
    return failures


def _check_cancel_after_fire(result: HarnessResult, tol: float) -> List[str]:
    probe = result.processes[1]
    fires = [obs for obs in probe.of("timeout") if obs[1] == "once"]
    failures = []
    if len(fires) != 1:
        failures.append(
            f"timer-cancel-after-fire: expected one fire of 'once', saw {fires}"
        )
    if probe.of("cancel-after-fire-raised"):
        failures.append(
            "timer-cancel-after-fire: cancelling a fired timer raised "
            f"{probe.of('cancel-after-fire-raised')[0][1]}"
        )
    elif not probe.of("cancel-after-fire-ok"):
        failures.append("timer-cancel-after-fire: the probe never ran its cancel")
    return failures


def _check_envelope(result: HarnessResult, tol: float) -> List[str]:
    p1, p2 = result.processes[1], result.processes[2]
    failures = []
    # the ping must land in P2's component, not its main handler
    p2_component = [payload for _, (_, payload), _ in p2.of("component-deliver")]
    if ("ping", "m1") not in p2_component:
        failures.append("module-envelope: the component ping never reached P2.echo")
    if any(
        isinstance(payload, tuple) and payload[0] == "__mod__"
        for _, (_, payload), _ in p2.of("deliver")
    ):
        failures.append("module-envelope: an enveloped message leaked to on_deliver")
    # the main-channel message must land in P2's main handler
    p2_main = [payload for _, (_, payload), _ in p2.of("deliver")]
    if ("plain", "m2") not in p2_main:
        failures.append("module-envelope: the main-channel message never arrived")
    # the reply must come back to P1's component
    p1_component = [payload for _, (_, payload), _ in p1.of("component-deliver")]
    if ("pong", "m1") not in p1_component:
        failures.append("module-envelope: the component reply never reached P1.echo")
    # the namespaced timer must fire in the component, unprefixed
    if [name for _, name, _ in p1.of("component-timeout")] != ["tick"]:
        failures.append(
            "module-envelope: the component timer did not route to the "
            f"component (saw {p1.of('component-timeout')})"
        )
    return failures


def _check_decide_once(result: HarnessResult, tol: float) -> List[str]:
    probe = result.processes[1]
    failures = []
    if not probe.of("decided-first"):
        failures.append("decide-once: the first decide did not succeed")
    if probe.of("second-decide-accepted"):
        failures.append("decide-once: a second decide was silently accepted")
    elif not probe.of("second-decide-raised"):
        failures.append(
            "decide-once: the second decide raised something other than "
            "ProtocolViolationError"
        )
    if result.decisions.get(1) != 1:
        failures.append(
            f"decide-once: recorded decision is {result.decisions.get(1)!r}, "
            "expected the first value 1"
        )
    return failures


def _check_monotonic(result: HarnessResult, tol: float) -> List[str]:
    failures = []
    for pid in (1, 2):
        probe = result.processes[pid]
        samples = [at for _, _, at in probe.of("sample")]
        for earlier, later in zip(samples, samples[1:]):
            if later < earlier - 1e-9:
                failures.append(
                    f"now-monotonic: P{pid} observed now() go backwards "
                    f"({earlier:.4f} -> {later:.4f})"
                )
                break
    probe = result.processes[1]
    deadlines = {"t0": 0.5, "t1": 1.2, "t2": 2.0}
    for _, name, at in probe.of("fire"):
        deadline = deadlines.get(name)
        if deadline is not None and at < deadline - tol:
            failures.append(
                f"now-monotonic: timer {name} fired at {at:.4f}, "
                f"{deadline - at:.4f} units before its deadline {deadline}"
            )
    return failures


@dataclass(frozen=True)
class Scenario:
    """One conformance scenario: probe factories plus a result checker."""

    name: str
    factories: Dict[int, Callable[[int, int, int, Any], Process]]
    check: Callable[[HarnessResult, float], List[str]]
    n: int = 2
    f: int = 1


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("timer-rearm", {1: _RearmProbe, 2: _passive}, _check_rearm),
    Scenario("timer-cancel", {1: _CancelProbe, 2: _passive}, _check_cancel),
    Scenario(
        "timer-cancel-after-fire",
        {1: _CancelAfterFireProbe, 2: _passive},
        _check_cancel_after_fire,
    ),
    Scenario("module-envelope", {1: _EnvelopeProbe, 2: _EnvelopeProbe}, _check_envelope),
    Scenario("decide-once", {1: _DecideOnceProbe, 2: _passive}, _check_decide_once),
    Scenario("now-monotonic", {1: _MonotonicProbe, 2: _MonotonicProbe}, _check_monotonic),
)


def run_scenario(harness: EnvHarness, scenario: Scenario) -> List[str]:
    """Run one scenario on one harness; returns its failures."""
    result = harness.run(
        dict(scenario.factories),
        scenario.n,
        scenario.f,
        duration_units=SCENARIO_DURATION_UNITS,
    )
    tolerance = getattr(harness, "tolerance_units", 0.0)
    failures = list(scenario.check(result, tolerance))
    failures.extend(
        f"{scenario.name}: unexpected handler error: {error}"
        for error in result.errors
    )
    return [f"[{harness.name}] {failure}" for failure in failures]


def run_conformance(harness: EnvHarness) -> List[str]:
    """Run every scenario; an empty return means the contract holds."""
    failures: List[str] = []
    for scenario in SCENARIOS:
        failures.extend(run_scenario(harness, scenario))
    return failures


# --------------------------------------------------------------------------- #
# the simulator harness (the reference implementation)
# --------------------------------------------------------------------------- #
class SimHarness:
    """Drives probes on the discrete-event scheduler (exact timing)."""

    name = "sim"
    tolerance_units = 0.0

    def __init__(self, seed: int = 0):
        self.seed = seed

    def run(
        self,
        factories: Dict[int, Callable[[int, int, int, Any], Process]],
        n: int,
        f: int,
        *,
        duration_units: float,
        proposals: Optional[Dict[int, Any]] = None,
    ) -> HarnessResult:
        from repro.sim.runner import Scheduler

        scheduler = Scheduler(n=n, f=f, seed=self.seed, max_time=duration_units)
        for pid in range(1, n + 1):
            factory = factories.get(pid, _passive)
            scheduler.bind_process(pid, factory(pid, n, f, scheduler.env_for(pid)))
        for pid in range(1, n + 1):
            scheduler.processes[pid].on_start()
        for pid, value in (proposals or {}).items():
            scheduler.post_propose(pid, value)
        trace = scheduler.run()
        return HarnessResult(
            processes=dict(scheduler.processes),
            decisions={pid: rec.value for pid, rec in trace.decisions.items()},
        )


__all__ = [
    "EnvHarness",
    "HarnessResult",
    "ObservingProcess",
    "SCENARIOS",
    "SCENARIO_DURATION_UNITS",
    "Scenario",
    "SimHarness",
    "run_conformance",
    "run_scenario",
]
