"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration mistakes from protocol violations
detected at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A simulation, protocol or database component was misconfigured.

    Examples: ``f`` outside ``[1, n - 1]``, an unknown protocol name, a fault
    plan that crashes more processes than the protocol tolerates.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class DeterminismError(ReproError):
    """The runtime determinism sanitizer observed order-dependent bytes.

    Raised only under ``REPRO_SANITIZE=1`` (see :mod:`repro.lint.sanitizer`):
    a trace fingerprint or an accumulator row changed when the insertion
    order of its underlying containers was perturbed, or a message payload
    carried an unordered ``set``/``frozenset`` into the trace.
    """


class ProtocolViolationError(ReproError):
    """A protocol implementation violated one of its invariants at runtime.

    This is raised by defensive checks inside protocol implementations (for
    instance a process attempting to decide twice), not by the offline
    property checker, which reports violations as data instead of raising.
    """


class TransactionAborted(ReproError):
    """A distributed transaction was aborted.

    Carries the transaction id and the reason (a conflicting vote, a failure
    detected by the commit protocol, or an explicit client abort).
    """

    def __init__(self, txn_id: str, reason: str = "aborted"):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class StorageError(ReproError):
    """The key-value store substrate rejected an operation."""


class LockConflict(ReproError):
    """A lock request conflicted with an existing lock and was rejected."""

    def __init__(self, key: str, holder: str, requester: str):
        super().__init__(
            f"lock conflict on key {key!r}: held by {holder}, requested by {requester}"
        )
        self.key = key
        self.holder = holder
        self.requester = requester
