"""repro.exp — the declarative, parallel experiment-sweep engine.

The paper (Guerraoui & Wang, PODS 2017) is fundamentally comparative: INBAC
against 2PC/3PC/Paxos-Commit across system sizes, resilience levels and delay
regimes.  This package turns those cross-product comparisons into one-liners:

* :mod:`repro.exp.spec` — :class:`GridSpec` declares *what* to run
  (protocol x (n, f) x delay model x fault plan x votes x seed) and expands
  it into deterministic :class:`TrialSpec` records;
* :mod:`repro.exp.engine` — :func:`run_sweep` fans the trials out across
  worker processes (serial fallback included) with per-trial derived seeding,
  so parallel and serial sweeps produce byte-identical aggregates;
* :mod:`repro.exp.results` — :class:`SweepResult` aggregates the structured
  per-trial measurements into table rows for :mod:`repro.analysis`.

Example
-------
>>> from repro.exp import GridSpec, run_sweep
>>> sweep = run_sweep(GridSpec(
...     protocols=["INBAC", "2PC", "PaxosCommit"],
...     systems=[(5, 2), (8, 3)],
... ), workers=4)
>>> rows = sweep.aggregate_rows()   # ready for repro.analysis.render_table
"""

from repro.exp.engine import run_sweep, run_trial, run_trials
from repro.exp.results import SweepResult, TrialResult
from repro.exp.spec import (
    DelaySpec,
    FaultSpec,
    GridSpec,
    ProtocolSpec,
    TrialSpec,
    VoteSpec,
    all_no,
    all_yes,
    fixed_votes,
    make_cases,
    one_no,
)

__all__ = [
    "DelaySpec",
    "FaultSpec",
    "GridSpec",
    "ProtocolSpec",
    "SweepResult",
    "TrialResult",
    "TrialSpec",
    "VoteSpec",
    "all_no",
    "all_yes",
    "fixed_votes",
    "make_cases",
    "one_no",
    "run_sweep",
    "run_trial",
    "run_trials",
]
