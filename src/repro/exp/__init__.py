"""repro.exp — the declarative, parallel experiment-sweep engine.

The paper (Guerraoui & Wang, PODS 2017) is fundamentally comparative: INBAC
against 2PC/3PC/Paxos-Commit across system sizes, resilience levels and delay
regimes.  This package turns those cross-product comparisons into one-liners:

* :mod:`repro.exp.spec` — :class:`GridSpec` declares *what* to run
  (protocol x (n, f) x delay model x fault plan x votes x workload x
  schedule x seed) and expands it into deterministic :class:`TrialSpec`
  records; a trial with a :class:`WorkloadSpec` runs a :mod:`repro.db`
  cluster transaction battery instead of a bare protocol execution, and a
  trial with a :class:`ScheduleSpec` runs under a :mod:`repro.explore`
  schedule controller (adversarial event orderings and crash points) built
  from the trial's derived seed;
* :mod:`repro.exp.registry` — the spawn-safe spec subset: registry-named
  delay models (``delays=["uniform"]``), reducers
  (``reducer="violations"``) and vote patterns (``"mixed:0.3"``,
  ``"one-no:3"``), all plain data, so lambda-free grids pickle under any
  multiprocessing start method (``run_sweep(start_method="spawn")``
  validates up front and names the offending field otherwise);
* :mod:`repro.exp.engine` — :func:`run_sweep` fans the trials out across
  worker processes (serial fallback included) with per-trial derived seeding,
  so parallel and serial sweeps produce byte-identical aggregates;
* :mod:`repro.exp.results` — :class:`SweepResult` aggregates the structured
  per-trial measurements into table rows for :mod:`repro.analysis`;
  :class:`SweepAggregate` is the bounded-memory counterpart produced by
  streaming sweeps.

Two execution shapes:

* ``mode="full"`` (default) materialises every :class:`TrialResult` in a
  :class:`SweepResult` — per-trial selection, robustness matrices, canonical
  fingerprints;
* ``mode="aggregate"`` streams — each result is folded into per-coordinate
  accumulators (counts, commit/abort tallies, message totals, exact latency
  digests for p50/p99) and discarded, so 10^5-10^6-trial sweeps run in
  memory bounded by the grid's *cell* count while producing byte-identical
  aggregate tables to the in-memory path.  Pass ``reducer=`` (any object
  with ``fold(TrialResult)``) for custom streaming statistics.

Aggregate mode is also the *fast* path: it defaults to
``trace_level="counters"`` (the scheduler maintains running tallies instead
of allocating one ``MessageRecord`` per message; see :mod:`repro.sim.trace`)
and, in parallel runs, to ``fold="chunk"`` (each worker folds its contiguous
trial chunk into partial accumulators and ships one bundle per chunk instead
of one result per trial).  Both knobs are overridable per sweep and neither
changes a single output byte: trace levels, fold strategies and worker
counts all produce identical aggregate fingerprints.

The ``workers=`` argument defaults to one per CPU; the ``REPRO_EXP_WORKERS``
environment variable overrides it and must be a positive integer —
anything else raises :class:`~repro.errors.ConfigurationError`.

Example
-------
>>> from repro.exp import GridSpec, run_sweep
>>> sweep = run_sweep(GridSpec(
...     protocols=["INBAC", "2PC", "PaxosCommit"],
...     systems=[(5, 2), (8, 3)],
... ), workers=4)
>>> rows = sweep.aggregate_rows()   # ready for repro.analysis.render_table
>>> big = run_sweep(GridSpec(
...     protocols=["INBAC"], systems=[(5, 2)], seeds=range(100_000),
... ), mode="aggregate")            # bounded memory, identical aggregates
>>> big.aggregate_rows() == sweep.aggregate_rows()[:1]  # doctest: +SKIP
"""

from repro.exp.engine import ensure_spawn_safe, run_sweep, run_trial, run_trials
from repro.exp.registry import (
    make_reducer,
    named_delay,
    named_fault,
    named_workload,
    register_delay_model,
    register_fault_plan,
    register_reducer,
    register_workload,
)
from repro.exp.results import SweepAggregate, SweepResult, TrialResult
from repro.exp.spec import (
    DelaySpec,
    FaultSpec,
    GridSpec,
    ProtocolSpec,
    ScheduleSpec,
    TrialSpec,
    VoteSpec,
    WorkloadSpec,
    all_no,
    all_yes,
    fixed_votes,
    make_cases,
    mixed_votes,
    one_no,
)

__all__ = [
    "DelaySpec",
    "FaultSpec",
    "GridSpec",
    "ProtocolSpec",
    "ScheduleSpec",
    "SweepAggregate",
    "SweepResult",
    "TrialResult",
    "TrialSpec",
    "VoteSpec",
    "WorkloadSpec",
    "all_no",
    "all_yes",
    "ensure_spawn_safe",
    "fixed_votes",
    "make_cases",
    "make_reducer",
    "mixed_votes",
    "named_delay",
    "named_fault",
    "named_workload",
    "one_no",
    "register_delay_model",
    "register_fault_plan",
    "register_reducer",
    "register_workload",
    "run_sweep",
    "run_trial",
    "run_trials",
]
