"""The sweep executor: fan trials out over worker processes, deterministically.

Design constraints, in order:

1. **Parallel == serial, exactly.**  Every trial's RNG seed is derived from
   its grid coordinates (:attr:`~repro.exp.spec.TrialSpec.derived_seed`), so
   the schedule a trial sees is independent of which worker runs it.  Results
   are re-ordered by trial index before aggregation.  A sweep with
   ``workers=8`` therefore produces byte-identical aggregates to ``workers=1``
   (asserted by :meth:`~repro.exp.results.SweepResult.fingerprint`).

2. **Arbitrary specs, including closures.**  Fault plans and delay models in
   this repo routinely carry lambdas (payload predicates, adversarial delay
   functions) that cannot cross a pickling process boundary.  The pool
   therefore uses the ``fork`` start method and ships the trial list to the
   workers *by inheritance*: the parent parks it in a module-level slot that
   the forked children share, and only integer trial indices and plain-data
   :class:`~repro.exp.results.TrialResult` records travel over the queues.

3. **Serial fallback.**  Where ``fork`` is unavailable (non-POSIX platforms)
   or the sweep is too small to amortise worker start-up, the engine runs the
   same trial loop in-process.  ``SweepResult.meta["mode"]`` records which
   path ran.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.checker import check_nbac
from repro.exp.results import SweepResult, TrialResult
from repro.exp.spec import GridSpec, TrialSpec
from repro.sim.runner import Simulation, SimulationResult

#: a collector receives (trial, result) in the worker and returns extra
#: picklable data to attach to the TrialResult (e.g. protocol-internal state
#: such as INBAC's branch log, which never leaves the worker otherwise).
Collector = Callable[[TrialSpec, SimulationResult], Dict[str, Any]]

#: below this many trials a pool costs more than it saves
_MIN_TRIALS_FOR_POOL = 4

# ships (trials, collector) to forked workers by memory inheritance
_WORKER_TRIALS: List[TrialSpec] = []
_WORKER_COLLECTOR: Optional[Collector] = None


def run_trial(trial: TrialSpec, collector: Optional[Collector] = None) -> TrialResult:
    """Run one trial to completion and condense it into a TrialResult."""
    base = TrialResult(
        index=trial.index,
        protocol=trial.protocol.label,
        n=trial.n,
        f=trial.f,
        delay_label=trial.delay.label,
        fault_label=trial.fault.label,
        votes_label=trial.votes.label,
        base_seed=trial.base_seed,
        derived_seed=trial.derived_seed,
    )
    try:
        seed = trial.derived_seed
        sim = Simulation(
            n=trial.n,
            f=trial.f,
            process_class=trial.protocol.cls,
            delay_model=trial.delay.factory(seed),
            fault_plan=trial.fault.factory(),
            seed=seed,
            max_time=trial.max_time,
            protocol_kwargs=trial.protocol.protocol_kwargs(),
        )
        result = sim.run(trial.votes.pattern(trial.n))
    except Exception:
        base.error = traceback.format_exc(limit=8)
        return base

    trace = result.trace
    report = check_nbac(trace)
    base.execution_class = trace.metadata.get("execution_class", "failure-free")
    base.decisions = result.decisions()
    base.decision_latencies = sorted(
        rec.time for rec in trace.decisions.values()
    )
    base.first_decision = trace.first_decision_time()
    base.last_decision = trace.last_decision_time()
    base.messages_total = trace.message_count()
    base.messages_main = trace.message_count(module="main")
    base.messages_consensus = base.messages_total - base.messages_main
    last = trace.last_decision_time()
    base.messages_until_last_decision = (
        trace.messages_received_by(last) if last is not None else base.messages_total
    )
    base.agreement = report.agreement.holds
    base.validity = report.validity.holds
    base.termination = report.termination.holds
    base.crashes = dict(trace.crashes)
    if collector is not None:
        base.extra = dict(collector(trial, result) or {})
    return base


# --------------------------------------------------------------------------- #
# worker plumbing (fork start method only; see module docstring)
# --------------------------------------------------------------------------- #
def _pool_init(trials: List[TrialSpec], collector: Optional[Collector]) -> None:
    global _WORKER_TRIALS, _WORKER_COLLECTOR
    _WORKER_TRIALS = trials
    _WORKER_COLLECTOR = collector


def _run_index(index: int) -> TrialResult:
    return run_trial(_WORKER_TRIALS[index], _WORKER_COLLECTOR)


def _resolve_workers(workers: Optional[int], n_trials: int) -> int:
    if workers is None:
        env = os.environ.get("REPRO_EXP_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(int(workers), n_trials))


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def run_trials(
    trials: Sequence[TrialSpec],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
) -> SweepResult:
    """Run an explicit trial list (see :func:`repro.exp.spec.make_cases`)."""
    trials = list(trials)
    n_workers = _resolve_workers(workers, len(trials))
    use_pool = (
        n_workers > 1 and len(trials) >= _MIN_TRIALS_FOR_POOL and _fork_available()
    )
    mode = "parallel" if use_pool else "serial"
    if use_pool:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(
            processes=n_workers, initializer=_pool_init, initargs=(trials, collector)
        ) as pool:
            chunk = max(1, len(trials) // (n_workers * 4))
            results = pool.map(_run_index, range(len(trials)), chunksize=chunk)
    else:
        results = [run_trial(trial, collector) for trial in trials]
    return SweepResult(
        trials=results,
        meta={
            "mode": mode,
            "workers": n_workers if use_pool else 1,
            "requested_workers": workers,
            "trials": len(trials),
        },
    )


def run_sweep(
    grid: Union[GridSpec, Sequence[TrialSpec]],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
) -> SweepResult:
    """Expand a grid and run every trial, fanning out across workers.

    Parameters
    ----------
    grid:
        A :class:`~repro.exp.spec.GridSpec` (or an already-expanded trial
        list) describing the protocol x (n, f) x delay x fault x votes x seed
        cross product.
    workers:
        Worker process count.  ``None`` means "one per CPU" (overridable via
        the ``REPRO_EXP_WORKERS`` environment variable); ``1`` forces the
        serial path.  Parallel and serial runs produce identical results.
    collector:
        Optional per-trial hook run *inside the worker* with the live
        :class:`~repro.sim.runner.SimulationResult`; whatever picklable dict
        it returns lands in ``TrialResult.extra``.
    """
    trials = grid.trials() if isinstance(grid, GridSpec) else list(grid)
    return run_trials(trials, workers=workers, collector=collector)
