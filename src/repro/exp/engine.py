"""The sweep executor: fan trials out over worker processes, deterministically.

Design constraints, in order:

1. **Parallel == serial, exactly.**  Every trial's RNG seed is derived from
   its grid coordinates (:attr:`~repro.exp.spec.TrialSpec.derived_seed`), so
   the schedule a trial sees is independent of which worker runs it.  Results
   are re-ordered by trial index before aggregation.  A sweep with
   ``workers=8`` therefore produces byte-identical aggregates to ``workers=1``
   (asserted by :meth:`~repro.exp.results.SweepResult.fingerprint`).

2. **Arbitrary specs, including closures.**  Fault plans and delay models in
   this repo routinely carry lambdas (payload predicates, adversarial delay
   functions) that cannot cross a pickling process boundary.  The pool
   therefore prefers the ``fork`` start method and ships the trial list to
   the workers *by inheritance*: the parent parks it in a module-level slot
   that the forked children share, and only integer trial indices and
   plain-data :class:`~repro.exp.results.TrialResult` records travel over
   the queues.  A *spawn-safe* spec — lambda-free, e.g. built from the
   registry names in :mod:`repro.exp.registry` — may instead run under the
   ``spawn`` start method (``start_method="spawn"``, or automatically where
   fork does not exist); :func:`ensure_spawn_safe` validates the spec up
   front and names the offending grid field rather than letting the pool
   fail with an anonymous ``PicklingError``.

3. **Serial fallback.**  Where no usable start method remains (no ``fork``
   and a spec that is not spawn-safe) or the sweep is too small to amortise
   worker start-up, the engine runs the same trial loop in-process.
   ``SweepResult.meta["mode"]`` records which path ran.

4. **Bounded-memory aggregation.**  ``mode="aggregate"`` (or a custom
   ``reducer=``) streams results instead of collecting them: each
   :class:`~repro.exp.results.TrialResult` is folded into per-coordinate
   accumulators the moment it arrives and then dropped, so a 10^5-10^6-trial
   sweep holds one accumulator per grid cell rather than every trial.
   Accumulator statistics are order-independent (integer tallies and
   value → multiplicity digests; see :mod:`repro.exp.results`), so streamed
   aggregates are byte-identical to both the serial streamed run and the
   in-memory ``mode="full"`` aggregation of the same grid and seeds.  Note
   the bound is on *results*: the expanded ``TrialSpec`` list itself is
   still materialised (lightweight frozen records sharing their axis-spec
   objects, inherited by workers via fork, not copied) — it is the per-trial
   measurement records, orders of magnitude heavier, that streaming never
   holds.

5. **Worker-side chunk folds.**  In aggregate mode with the default
   :class:`~repro.exp.results.SweepAggregate` sink, parallel sweeps default
   to ``fold="chunk"``: each worker folds its contiguous trial-index chunk
   into a *partial* accumulator set and ships one accumulator bundle per
   chunk back to the parent, which merges the bundles in chunk (= trial
   index) order.  IPC drops from one pickled TrialResult per trial to one
   small bundle per chunk, and because every accumulator statistic merges
   exactly (no float-sum reordering), the chunked fingerprints match the
   per-trial fold — and the in-memory path — byte for byte at any worker
   count.  ``fold="trial"`` forces the per-trial stream (required for, and
   implied by, custom reducers, which only expose ``fold``).

6. **Trace levels.**  Aggregate-mode sweeps only consume the aggregate
   tallies a :class:`~repro.sim.trace.CounterTrace` maintains, so they
   default to ``trace_level="counters"`` — the scheduler skips per-message
   record allocation entirely — unless a ``collector=`` needs the live full
   trace.  ``mode="full"`` keeps ``trace_level="full"``.  Either default can
   be overridden per sweep (``run_sweep(..., trace_level=...)``) or per grid
   (``GridSpec(trace_level=...)``); measurements and fingerprints are
   byte-identical across levels by construction.

7. **Cluster trials.**  A trial whose spec carries a
   :class:`~repro.exp.spec.WorkloadSpec` runs a :mod:`repro.db` cluster
   battery (``n`` partitions, the protocol axis embedded as the commit
   protocol, the workload's transactions as the load) instead of a bare
   protocol execution, and condenses the
   :class:`~repro.db.cluster.ClusterReport` into the same TrialResult shape
   — including the cluster-invariant battery (atomicity/durability/lock
   safety, :mod:`repro.db.invariants`) mapped onto the property flags.  A
   cluster trial may additionally carry a
   :class:`~repro.exp.spec.ScheduleSpec`: the whole cluster then runs under
   the schedule controller (deferred deliveries, injected crashes into
   partitions or the client coordinator) and records the same replayable
   ``schedule_trace`` / ``trace_fingerprint`` extras as a controlled
   protocol trial.

8. **Per-cell setup amortisation.**  Trials of one grid cell differ only in
   their seed, and the expansion order keeps a cell's trials contiguous, so
   the per-trial hot path resolves the protocol factory, keyword arguments
   and vote vector once per cell (a one-slot memo keyed by the cell's spec
   objects) and reuses one :class:`~repro.sim.runner.Simulation` across the
   cell's trials with per-trial delay/fault/seed overrides.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.checker import check_nbac
from repro.errors import ConfigurationError
from repro.exp.results import SweepAggregate, SweepResult, TrialResult
from repro.exp.spec import GridSpec, TrialSpec
from repro.sim.batch import BatchedDelaySampler
from repro.sim.runner import Simulation, SimulationResult
from repro.sim.trace import TRACE_LEVELS

#: a collector receives (trial, result) in the worker and returns extra
#: picklable data to attach to the TrialResult (e.g. protocol-internal state
#: such as INBAC's branch log, which never leaves the worker otherwise).
#: For cluster trials the second argument is the ClusterReport instead.
Collector = Callable[[TrialSpec, Any], Dict[str, Any]]

#: below this many trials a pool costs more than it saves
_MIN_TRIALS_FOR_POOL = 4

# ships (trials, collector, trace levels, chunk size) to forked workers by
# memory inheritance
_WORKER_TRIALS: List[TrialSpec] = []
_WORKER_COLLECTOR: Optional[Collector] = None
_WORKER_LEVELS: tuple = (None, "full")  # (explicit override, sweep default)
_WORKER_CHUNK = 1


class _CellRuntime:
    """Per-cell objects resolved once and reused across the cell's trials.

    Trials of one grid cell share everything but their seed, and grid
    expansion keeps a cell's trials contiguous, so a one-slot memo (see
    :func:`_cell_runtime`) amortises the protocol-kwargs dict, the vote
    vector and the :class:`~repro.sim.runner.Simulation` (with its process
    factory) over the whole seed axis instead of rebuilding them per trial.
    """

    __slots__ = ("simulation", "votes", "sampler")

    def __init__(self, simulation: Simulation, votes: List[Any]):
        self.simulation = simulation
        self.votes = votes
        # one delay sampler per cell: each trial rebinds it to that trial's
        # freshly seeded delay model, reusing the pre-draw buffer across the
        # cell instead of allocating one per trial
        self.sampler = BatchedDelaySampler()


#: (cell signature, runtime) of the most recently run cell, per process
_LAST_RUNTIME: Optional[tuple] = None


def _cell_runtime(trial: TrialSpec, trace_level: str) -> _CellRuntime:
    global _LAST_RUNTIME
    # spec dataclasses compare by (label, callable identity), so two cells
    # only share a runtime when they share the actual spec objects — labels
    # alone can collide across grids within one process
    signature = (trial.protocol, trial.n, trial.f, trial.votes, trial.max_time, trace_level)
    if _LAST_RUNTIME is not None and _LAST_RUNTIME[0] == signature:
        return _LAST_RUNTIME[1]
    runtime = _CellRuntime(
        simulation=Simulation(
            n=trial.n,
            f=trial.f,
            process_class=trial.protocol.cls,
            max_time=trial.max_time,
            protocol_kwargs=trial.protocol.protocol_kwargs(),
            trace_level=trace_level,
        ),
        # per-trial (seeded) vote patterns cannot be resolved at the cell
        # level; run_trial resolves them from the derived seed instead
        votes=None if trial.votes.per_trial else trial.votes.resolve(trial.n, 0),
    )
    _LAST_RUNTIME = (signature, runtime)
    return runtime


def _effective_level(trial: TrialSpec, override: Optional[str], default: str) -> str:
    """Trace-level precedence: sweep override > per-trial pin > sweep default."""
    return override or trial.trace_level or default


def run_trial(
    trial: TrialSpec,
    collector: Optional[Collector] = None,
    trace_level: Optional[str] = None,
) -> TrialResult:
    """Run one trial to completion and condense it into a TrialResult.

    ``trace_level`` overrides the trial's own level; with both unset the
    trial runs at ``"full"``.  Measurements are identical at either level.
    """
    level = trace_level or trial.trace_level or "full"
    seed = trial.derived_seed
    base = TrialResult(
        index=trial.index,
        protocol=trial.protocol.label,
        n=trial.n,
        f=trial.f,
        delay_label=trial.delay.label,
        fault_label=trial.fault.label,
        votes_label=trial.votes.label,
        base_seed=trial.base_seed,
        derived_seed=seed,
        workload_label=trial.workload_label,
        schedule_label=trial.schedule_label,
    )
    if trial.workload is not None:
        return _run_cluster_trial(trial, base, collector, level)
    try:
        runtime = _cell_runtime(trial, level)
        votes = (
            runtime.votes
            if runtime.votes is not None
            else trial.votes.resolve(trial.n, seed)
        )
        controller = trial.schedule.build(seed) if trial.schedule is not None else None
        result = runtime.simulation.run(
            votes,
            delay_model=trial.delay.factory(seed),
            fault_plan=trial.fault.factory(),
            seed=seed,
            controller=controller,
            delay_sampler=runtime.sampler,
        )
    except Exception:
        base.error = traceback.format_exc(limit=8)
        return base

    trace = result.trace
    report = check_nbac(trace)
    base.execution_class = trace.metadata.get("execution_class", "failure-free")
    base.decisions = result.decisions()
    base.decision_latencies = sorted(
        rec.time for rec in trace.decisions.values()
    )
    base.first_decision = trace.first_decision_time()
    base.last_decision = trace.last_decision_time()
    base.messages_total = trace.message_count()
    base.messages_main = trace.message_count(module="main")
    base.messages_consensus = base.messages_total - base.messages_main
    last = trace.last_decision_time()
    base.messages_until_last_decision = (
        trace.messages_received_by(last) if last is not None else base.messages_total
    )
    base.agreement = report.agreement.holds
    base.validity = report.validity.holds
    base.termination = report.termination.holds
    base.crashes = dict(trace.crashes)
    if controller is not None:
        # the replayable schedule plus the fingerprint replay is checked
        # against — all plain data, so it crosses the worker queue intact
        from repro.explore.schedule import ScheduleTrace

        base.extra["schedule_trace"] = ScheduleTrace(
            strategy=trial.schedule.strategy,
            seed=seed,
            params=trial.schedule.strategy_params(),
            decisions=trace.metadata.get("schedule_decisions", []),
        ).to_jsonable()
        base.extra["trace_fingerprint"] = trace.fingerprint()
    if collector is not None:
        # collector failures (e.g. a per-message trace query against a trial
        # pinned to the counters level) are captured like simulation
        # failures, not allowed to abort the whole sweep
        try:
            base.extra = {**base.extra, **dict(collector(trial, result) or {})}
        except Exception:
            base.error = traceback.format_exc(limit=8)
    return base


def _run_cluster_trial(
    trial: TrialSpec,
    base: TrialResult,
    collector: Optional[Collector],
    trace_level: str = "full",
) -> TrialResult:
    """Run one :mod:`repro.db` cluster battery and condense its report.

    The mapping onto the TrialResult shape: ``decisions`` holds one entry per
    transaction (txn id -> commit/abort decision), ``decision_latencies`` the
    per-transaction commit latencies, and ``termination`` whether every
    transaction completed.  The property flags carry the cluster-invariant
    battery (:mod:`repro.db.invariants`): ``agreement`` is transaction
    atomicity, ``validity`` is WAL-replay durability AND lock-table safety —
    always True for a correct commit protocol, so the flags only flip when a
    schedule (or a bug) produces an actual anomaly.  The full
    ``ClusterReport.summary_row`` lands in ``extra``; a trial carrying a
    :class:`~repro.exp.spec.ScheduleSpec` runs under the schedule controller
    and additionally records its replayable ``schedule_trace`` and
    ``trace_fingerprint``, exactly like a controlled protocol trial.
    """
    # imported lazily: repro.db pulls in the whole store/partition stack,
    # which bare protocol sweeps never need
    from repro.db.cluster import ClusterConfig, run_cluster

    try:
        seed = trial.derived_seed
        delay_model = trial.delay.factory(seed)
        fault_plan = trial.fault.factory()
        controller = trial.schedule.build(seed) if trial.schedule is not None else None
        config = ClusterConfig(
            num_partitions=trial.n,
            commit_protocol=trial.protocol.cls,
            commit_f=trial.f,
            protocol_kwargs=trial.protocol.protocol_kwargs(),
            delay_model=delay_model,
            fault_plan=fault_plan,
            seed=seed,
            max_time=trial.max_time,
            trace_level=trace_level,
            controller=controller,
        )
        transactions = trial.workload.factory(trial.n, seed)
        report = run_cluster(config, transactions)
    except Exception:
        base.error = traceback.format_exc(limit=8)
        return base

    base.execution_class = report.execution_class
    base.decisions = {o.txn_id: o.decision for o in report.outcomes}
    base.decision_latencies = sorted(report.commit_latencies())
    if base.decision_latencies:
        base.first_decision = base.decision_latencies[0]
        base.last_decision = base.decision_latencies[-1]
    base.messages_total = report.messages_total
    base.messages_main = report.messages_by_module.get("main", 0)
    base.messages_consensus = base.messages_total - base.messages_main
    base.messages_until_last_decision = report.messages_until_last_decision
    # pending_transactions also covers transactions never submitted (a crashed
    # client coordinator), which report.incomplete — submitted-only — misses
    base.termination = not report.pending_transactions
    # realised crashes, schedule-injected ones included — the same accounting
    # protocol trials get from trace.crashes
    base.crashes = dict(report.crashes)
    invariants = report.invariants
    if invariants is not None:
        base.agreement = invariants.atomicity
        base.validity = invariants.durability and invariants.lock_safety
    summary = report.summary_row()
    summary["protocol"] = trial.protocol.label  # the sweep's label, not the class name
    if invariants is not None and not invariants.holds:
        summary["invariant_violations"] = list(invariants.violations)
    if controller is not None:
        # same replayable extras as a controlled protocol trial
        from repro.explore.schedule import ScheduleTrace

        summary["schedule_trace"] = ScheduleTrace(
            strategy=trial.schedule.strategy,
            seed=seed,
            params=trial.schedule.strategy_params(),
            decisions=report.schedule_decisions,
        ).to_jsonable()
        summary["trace_fingerprint"] = report.trace_fingerprint
    base.extra = summary
    if collector is not None:
        try:
            base.extra = {**summary, **(collector(trial, report) or {})}
        except Exception:
            base.error = traceback.format_exc(limit=8)
    return base


# --------------------------------------------------------------------------- #
# worker plumbing (fork start method only; see module docstring)
# --------------------------------------------------------------------------- #
def _pool_init(
    trials: List[TrialSpec],
    collector: Optional[Collector],
    levels: tuple = (None, "full"),
    chunk: int = 1,
) -> None:
    global _WORKER_TRIALS, _WORKER_COLLECTOR, _WORKER_LEVELS, _WORKER_CHUNK
    _WORKER_TRIALS = trials
    _WORKER_COLLECTOR = collector
    _WORKER_LEVELS = levels
    _WORKER_CHUNK = chunk


def _run_index(index: int) -> TrialResult:
    trial = _WORKER_TRIALS[index]
    override, default = _WORKER_LEVELS
    return run_trial(
        trial, _WORKER_COLLECTOR, trace_level=_effective_level(trial, override, default)
    )


def _maybe_profiled(label: str):
    """cProfile wrapper for one unit of sweep work, gated on ``REPRO_PROFILE``.

    Profiling is observability: it perturbs wall-clock timings but never the
    aggregates, so the determinism battery runs a profiled sweep and checks
    the fingerprint is unchanged.  The import is lazy and the gate is a plain
    environment lookup, so unprofiled sweeps pay one dict probe per unit.
    """
    if os.environ.get("REPRO_PROFILE", "") not in ("", "0", "false", "False"):
        from repro.obs.profile import profiled

        return profiled(label)
    return contextlib.nullcontext()


def _emit_progress(
    progress,
    phase: str,
    *,
    trials_total: int,
    trials_done: int,
    chunks_total: int,
    chunks_done: int,
    workers: int,
    mode: str,
    fold: str,
) -> None:
    """Hand one count-only observation to the progress callback (parent side).

    The engine supplies raw counts and nothing else — no timestamps, no
    rates — so it stays inside the DET002 wall-clock rule; reporters in
    :mod:`repro.obs.progress` add timing on their own clocks.  Callback
    exceptions propagate: a broken reporter should fail the run loudly, not
    silently observe nothing.
    """
    if progress is None:
        return
    from repro.obs.progress import ProgressEvent

    progress(
        ProgressEvent(
            phase=phase,
            trials_total=trials_total,
            trials_done=trials_done,
            chunks_total=chunks_total,
            chunks_done=chunks_done,
            queue_depth=max(0, chunks_total - chunks_done),
            workers=workers,
            mode=mode,
            fold=fold,
        )
    )


def _run_chunk(chunk_index: int) -> SweepAggregate:
    """Fold one contiguous trial-index chunk into a partial aggregate.

    Runs inside a worker: the chunk ``[start, stop)`` is folded in index
    order into a fresh :class:`SweepAggregate`, and the whole bundle — a few
    cell accumulators, not per-trial records — is the only thing shipped back
    over the result queue.  The parent merges bundles in chunk order, which
    (with order-independent accumulators) reproduces the per-trial fold
    byte for byte.
    """
    start = chunk_index * _WORKER_CHUNK
    stop = min(start + _WORKER_CHUNK, len(_WORKER_TRIALS))
    override, default = _WORKER_LEVELS
    partial = SweepAggregate()
    with _maybe_profiled(f"chunk{chunk_index:04d}"):
        for index in range(start, stop):
            trial = _WORKER_TRIALS[index]
            partial.fold(
                run_trial(
                    trial,
                    _WORKER_COLLECTOR,
                    trace_level=_effective_level(trial, override, default),
                )
            )
    return partial


def _resolve_workers(workers: Optional[int], n_trials: int) -> int:
    """Resolve the worker count, validating explicit and environment overrides.

    A malformed or non-positive ``REPRO_EXP_WORKERS`` (or ``workers=``
    argument) raises :class:`~repro.errors.ConfigurationError` naming the
    offending value, rather than leaking a bare ``ValueError`` or silently
    clamping a negative count to 1.
    """
    if workers is None:
        env = os.environ.get("REPRO_EXP_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_EXP_WORKERS must be a positive integer, got {env!r}"
                ) from None
            if workers <= 0:
                raise ConfigurationError(
                    f"REPRO_EXP_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            workers = os.cpu_count() or 1
    else:
        try:
            workers = int(workers)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"workers must be a positive integer, got {workers!r}"
            ) from None
        if workers <= 0:
            raise ConfigurationError(
                f"workers must be a positive integer, got {workers}"
            )
    return max(1, min(workers, n_trials))


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _spawn_available() -> bool:
    try:
        return "spawn" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


#: the start methods run_trials/run_sweep accept
_START_METHODS = (None, "fork", "spawn")


def ensure_spawn_safe(
    trials: Sequence[TrialSpec], collector: Optional[Collector] = None
) -> None:
    """Verify every spec component can cross a ``spawn`` process boundary.

    The fork pool ships closures by memory inheritance, so grids may carry
    lambdas; the spawn pool pickles everything.  This check pickles each
    distinct axis-spec object individually and raises a
    :class:`~repro.errors.ConfigurationError` naming the offending grid field
    and label — instead of letting ``multiprocessing`` fail deep inside the
    pool with an anonymous ``PicklingError``.  Registry-named delay models,
    vote patterns, schedules and reducers (see :mod:`repro.exp.registry`)
    are spawn-safe by construction.

    The fields checked come from
    :data:`repro.lint.rules.spawn_safety.SPAWN_AXIS_FIELDS` — the same rule
    table the static analyser (``python -m repro.lint``) scans, so the
    runtime and static checks cannot drift apart.
    """
    from repro.lint.rules.spawn_safety import SPAWN_AXIS_FIELDS

    seen: set = set()

    def _check(field: str, label: str, obj: Any) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        try:
            pickle.dumps(obj)
        except Exception as exc:
            raise ConfigurationError(
                f"GridSpec field {field}[{label!r}] is not picklable and cannot "
                f"cross a 'spawn' process boundary ({type(exc).__name__}: {exc}); "
                f"use a registry-named value (see repro.exp.registry) or a "
                f"module-level callable, or run with the fork start method"
            ) from None

    for trial in trials:
        for grid_field, attr in SPAWN_AXIS_FIELDS:
            spec = getattr(trial, attr)
            if spec is not None:
                _check(grid_field, spec.label, spec)
    if collector is not None:
        _check("collector", getattr(collector, "__name__", "collector"), collector)


def _resolve_start_method(
    start_method: Optional[str],
    trials: Sequence[TrialSpec],
    collector: Optional[Collector],
) -> Optional[str]:
    """Pick the pool start method; ``None`` means "no pool available".

    Explicitly requested methods are validated loudly (a spawn request over a
    lambda-carrying grid raises, naming the offending field).  The default
    keeps the historical behaviour — fork where available — and otherwise
    falls back to spawn only when the spec is verifiably spawn-safe, so
    platforms without fork degrade to the serial path rather than crash.
    """
    if start_method not in _START_METHODS:
        raise ConfigurationError(
            f"unknown start_method {start_method!r}; expected one of {_START_METHODS}"
        )
    if start_method == "fork":
        if not _fork_available():
            raise ConfigurationError(
                "the 'fork' start method is not available on this platform"
            )
        return "fork"
    if start_method == "spawn":
        if not _spawn_available():  # pragma: no cover - spawn exists everywhere
            raise ConfigurationError(
                "the 'spawn' start method is not available on this platform"
            )
        ensure_spawn_safe(trials, collector)
        return "spawn"
    if _fork_available():
        return "fork"
    if _spawn_available():
        try:
            ensure_spawn_safe(trials, collector)
        except ConfigurationError:
            return None  # not spawn-safe: silently keep the serial fallback
        return "spawn"
    return None  # pragma: no cover - platforms with neither method


#: cap on the pool chunk size in streaming mode, so a worker never buffers an
#: unbounded slice of results (or folds an unbounded chunk) before shipping
#: back to the parent
_MAX_STREAM_CHUNK = 64

#: the modes run_trials/run_sweep accept
_MODES = ("full", "aggregate")

#: the fold strategies streaming sweeps accept
_FOLDS = ("auto", "trial", "chunk")


def run_trials(
    trials: Sequence[TrialSpec],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
    mode: str = "full",
    reducer: Optional[Any] = None,
    trace_level: Optional[str] = None,
    fold: str = "auto",
    start_method: Optional[str] = None,
    progress: Optional[Any] = None,
) -> Union[SweepResult, Any]:
    """Run an explicit trial list (see :func:`repro.exp.spec.make_cases`)."""
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown sweep mode {mode!r}; expected one of {_MODES}"
        )
    if fold not in _FOLDS:
        raise ConfigurationError(
            f"unknown fold strategy {fold!r}; expected one of {_FOLDS}"
        )
    if trace_level is not None and trace_level not in TRACE_LEVELS:
        raise ConfigurationError(
            f"unknown trace_level {trace_level!r}; expected one of {TRACE_LEVELS}"
        )
    trials = list(trials)
    if progress is not None:
        # lazy: the obs package is only imported when somebody observes
        from repro.obs.progress import resolve_progress

        progress = resolve_progress(progress)
    if isinstance(reducer, str):
        # registry-named sinks are spawn-safe and keep grids lambda-free
        from repro.exp.registry import make_reducer

        reducer = make_reducer(reducer)
    streaming = mode == "aggregate" or reducer is not None
    if fold == "chunk" and reducer is not None:
        raise ConfigurationError(
            "fold='chunk' requires the default SweepAggregate sink; custom "
            "reducers only expose per-trial fold() and cannot merge partials"
        )
    if fold == "chunk" and not streaming:
        raise ConfigurationError(
            "fold='chunk' only applies to streaming sweeps; pass "
            "mode='aggregate' (mode='full' returns every TrialResult and "
            "has nothing to fold)"
        )
    # aggregate-mode sweeps only read the tallies a CounterTrace maintains,
    # so they default to the counters level — unless a collector needs the
    # live (full) trace, or the caller/grid pinned a level
    default_level = "counters" if (streaming and collector is None) else "full"
    levels = (trace_level, default_level)
    n_workers = _resolve_workers(workers, len(trials))
    method = _resolve_start_method(start_method, trials, collector)
    use_pool = (
        n_workers > 1 and len(trials) >= _MIN_TRIALS_FOR_POOL and method is not None
    )
    exec_mode = "parallel" if use_pool else "serial"
    # the level(s) the trials actually run at: the sweep override wins, then
    # any per-trial GridSpec pin, then the mode-dependent default
    resolved_levels = {_effective_level(t, trace_level, default_level) for t in trials}
    if len(resolved_levels) == 1:
        level_label = resolved_levels.pop()
    elif resolved_levels:
        level_label = "mixed"
    else:  # empty trial list
        level_label = trace_level or default_level
    meta = {
        "mode": exec_mode,
        "workers": n_workers if use_pool else 1,
        "requested_workers": workers,
        "trials": len(trials),
        "sweep_mode": "aggregate" if streaming else "full",
        "trace_level": level_label,
    }
    if use_pool:
        meta["start_method"] = method

    if not streaming:
        # the pool ships work in imap chunks of this size; the serial path is
        # chunk 1 (every trial is its own chunk).  chunks_total must reflect
        # the real granularity — results arrive in bursts of `chunk`, so
        # claiming len(trials) chunks would make queue_depth/chunks_done lie.
        chunk = max(1, len(trials) // (n_workers * 4)) if use_pool else 1
        n_chunks = (len(trials) + chunk - 1) // chunk
        _emit_progress(
            progress,
            "start",
            trials_total=len(trials),
            trials_done=0,
            chunks_total=n_chunks,
            chunks_done=0,
            workers=meta["workers"],
            mode=exec_mode,
            fold="trial",
        )
        if use_pool:
            ctx = multiprocessing.get_context(method)
            with ctx.Pool(
                processes=n_workers,
                initializer=_pool_init,
                initargs=(trials, collector, levels),
            ) as pool:
                if progress is None:
                    results = pool.map(_run_index, range(len(trials)), chunksize=chunk)
                else:
                    # imap yields in submission order, so the result list is
                    # identical to pool.map's — it just arrives incrementally,
                    # giving the parent a hook point per completed trial
                    results = []
                    for result in pool.imap(
                        _run_index, range(len(trials)), chunksize=chunk
                    ):
                        results.append(result)
                        done = len(results)
                        _emit_progress(
                            progress,
                            "chunk",
                            trials_total=len(trials),
                            trials_done=done,
                            chunks_total=n_chunks,
                            # the final (possibly short) chunk completes with
                            # the last trial; before that, count full chunks
                            chunks_done=(
                                n_chunks if done == len(trials) else done // chunk
                            ),
                            workers=meta["workers"],
                            mode=exec_mode,
                            fold="trial",
                        )
        else:
            results = []
            with _maybe_profiled("serial"):
                for t in trials:
                    results.append(
                        run_trial(
                            t, collector, trace_level=_effective_level(t, *levels)
                        )
                    )
                    _emit_progress(
                        progress,
                        "chunk",
                        trials_total=len(trials),
                        trials_done=len(results),
                        chunks_total=n_chunks,
                        chunks_done=len(results),
                        workers=meta["workers"],
                        mode=exec_mode,
                        fold="trial",
                    )
        _emit_progress(
            progress,
            "summary",
            trials_total=len(trials),
            trials_done=len(results),
            chunks_total=n_chunks,
            chunks_done=n_chunks if results else 0,
            workers=meta["workers"],
            mode=exec_mode,
            fold="trial",
        )
        return SweepResult(trials=results, meta=meta)

    # streaming: per-trial folds stream every TrialResult back and fold it in
    # trial-index order (imap yields in submission order); chunk folds let
    # each worker fold its contiguous chunk locally and ship one partial
    # accumulator bundle per chunk, merged in chunk order — byte-identical
    # either way because the accumulators are order-independent
    sink = reducer if reducer is not None else SweepAggregate()
    chunked = fold != "trial" and reducer is None
    if use_pool:
        ctx = multiprocessing.get_context(method)
        chunk = max(1, min(_MAX_STREAM_CHUNK, len(trials) // (n_workers * 4)))
        with ctx.Pool(
            processes=n_workers,
            initializer=_pool_init,
            initargs=(trials, collector, levels, chunk),
        ) as pool:
            if chunked:
                n_chunks = (len(trials) + chunk - 1) // chunk
                _emit_progress(
                    progress,
                    "start",
                    trials_total=len(trials),
                    trials_done=0,
                    chunks_total=n_chunks,
                    chunks_done=0,
                    workers=meta["workers"],
                    mode=exec_mode,
                    fold="chunk",
                )
                done = 0
                for partial in pool.imap(_run_chunk, range(n_chunks), chunksize=1):
                    sink.merge(partial)
                    done += 1
                    _emit_progress(
                        progress,
                        "chunk",
                        trials_total=len(trials),
                        trials_done=min(done * chunk, len(trials)),
                        chunks_total=n_chunks,
                        chunks_done=done,
                        workers=meta["workers"],
                        mode=exec_mode,
                        fold="chunk",
                    )
                _emit_progress(
                    progress,
                    "summary",
                    trials_total=len(trials),
                    trials_done=len(trials),
                    chunks_total=n_chunks,
                    chunks_done=done,
                    workers=meta["workers"],
                    mode=exec_mode,
                    fold="chunk",
                )
                meta["fold"] = "chunk"
                meta["chunk_size"] = chunk
                meta["chunks"] = n_chunks
            else:
                _emit_progress(
                    progress,
                    "start",
                    trials_total=len(trials),
                    trials_done=0,
                    chunks_total=len(trials),
                    chunks_done=0,
                    workers=meta["workers"],
                    mode=exec_mode,
                    fold="trial",
                )
                done = 0
                for result in pool.imap(_run_index, range(len(trials)), chunksize=chunk):
                    sink.fold(result)
                    done += 1
                    _emit_progress(
                        progress,
                        "chunk",
                        trials_total=len(trials),
                        trials_done=done,
                        chunks_total=len(trials),
                        chunks_done=done,
                        workers=meta["workers"],
                        mode=exec_mode,
                        fold="trial",
                    )
                _emit_progress(
                    progress,
                    "summary",
                    trials_total=len(trials),
                    trials_done=done,
                    chunks_total=len(trials),
                    chunks_done=done,
                    workers=meta["workers"],
                    mode=exec_mode,
                    fold="trial",
                )
                meta["fold"] = "trial"
    else:
        _emit_progress(
            progress,
            "start",
            trials_total=len(trials),
            trials_done=0,
            chunks_total=len(trials),
            chunks_done=0,
            workers=meta["workers"],
            mode=exec_mode,
            fold="trial",
        )
        done = 0
        with _maybe_profiled("serial"):
            for trial in trials:
                sink.fold(
                    run_trial(
                        trial, collector, trace_level=_effective_level(trial, *levels)
                    )
                )
                done += 1
                _emit_progress(
                    progress,
                    "chunk",
                    trials_total=len(trials),
                    trials_done=done,
                    chunks_total=len(trials),
                    chunks_done=done,
                    workers=meta["workers"],
                    mode=exec_mode,
                    fold="trial",
                )
        _emit_progress(
            progress,
            "summary",
            trials_total=len(trials),
            trials_done=done,
            chunks_total=len(trials),
            chunks_done=done,
            workers=meta["workers"],
            mode=exec_mode,
            fold="trial",
        )
        meta["fold"] = "trial"
    if hasattr(sink, "meta"):
        sink.meta.update(meta)
    return sink


def run_sweep(
    grid: Union[GridSpec, Sequence[TrialSpec]],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
    mode: str = "full",
    reducer: Optional[Any] = None,
    trace_level: Optional[str] = None,
    fold: str = "auto",
    start_method: Optional[str] = None,
    progress: Optional[Any] = None,
) -> Union[SweepResult, Any]:
    """Expand a grid and run every trial, fanning out across workers.

    Parameters
    ----------
    grid:
        A :class:`~repro.exp.spec.GridSpec` (or an already-expanded trial
        list) describing the protocol x (n, f) x delay x fault x votes x
        workload x seed cross product.
    workers:
        Worker process count.  ``None`` means "one per CPU" (overridable via
        the ``REPRO_EXP_WORKERS`` environment variable, which must be a
        positive integer); ``1`` forces the serial path.  Parallel and serial
        runs produce identical results.
    collector:
        Optional per-trial hook run *inside the worker* with the live
        :class:`~repro.sim.runner.SimulationResult` (the
        :class:`~repro.db.cluster.ClusterReport` for cluster trials);
        whatever picklable dict it returns lands in ``TrialResult.extra``.
    mode:
        ``"full"`` (default) returns a :class:`~repro.exp.results.SweepResult`
        holding every trial.  ``"aggregate"`` streams: trial results are
        folded into a :class:`~repro.exp.results.SweepAggregate` and
        discarded, so memory is bounded by the grid's cell count instead of
        its trial count, and the aggregate tables are byte-identical to the
        in-memory path on the same grid and seeds.
    reducer:
        Custom streaming sink: any object with a ``fold(TrialResult)``
        method.  Implies streaming regardless of ``mode``; the engine folds
        every result in trial-index order and returns the reducer (updating
        its ``meta`` dict attribute, if present, with execution metadata).
        Custom reducers always fold per trial (``fold="chunk"`` is rejected).
    trace_level:
        ``"full"`` or ``"counters"`` (see :mod:`repro.sim.trace`), applied to
        every trial of this sweep.  ``None`` (default) picks ``"counters"``
        for aggregate-mode sweeps without a collector — the fast path: no
        per-message records are allocated — and ``"full"`` otherwise; a
        per-grid ``GridSpec(trace_level=...)`` pin sits between the two.
        Aggregate tables and fingerprints are byte-identical across levels.
        Note a ``"counters"`` pin wins over the collector-keeps-full-traces
        default: a collector that needs per-message records must not be
        combined with such a pin (its failure is captured per trial in
        ``TrialResult.error``, like any simulation failure).
    fold:
        Streaming fold strategy.  ``"auto"`` (default) uses worker-side
        chunk folds — one partial accumulator bundle shipped per contiguous
        trial chunk instead of one TrialResult per trial — whenever the sink
        is the default :class:`~repro.exp.results.SweepAggregate` and a pool
        is in use; ``"trial"`` forces per-trial streaming.  ``"chunk"``
        selects chunk folds for pooled runs and is rejected with a custom
        reducer (which only exposes per-trial ``fold``); a serial run has no
        result IPC to cut, so it always folds per trial and records the
        executed path in ``meta["fold"]``.  Fingerprints are byte-identical
        across fold strategies and worker counts.
    start_method:
        Pool start method.  ``None`` (default) keeps the historical
        behaviour: ``fork`` where available, otherwise ``spawn`` when the
        spec is verifiably lambda-free (see :func:`ensure_spawn_safe`),
        otherwise the serial path.  An explicit ``"spawn"`` validates the
        spec up front and raises a :class:`~repro.errors.ConfigurationError`
        naming the offending grid field if anything cannot be pickled;
        registry-named delay models, vote patterns, schedules and reducers
        (:mod:`repro.exp.registry`) are spawn-safe by construction.
        Results are byte-identical across start methods.
    progress:
        Live progress stream.  ``None`` (default) observes nothing; a
        callable receives one count-only
        :class:`~repro.obs.progress.ProgressEvent` per phase — ``start``,
        one ``chunk`` per completed chunk (or trial, on per-trial paths),
        ``summary`` — always in the parent process, after results crossed
        the worker queue.  The strings ``"tty"`` and ``"jsonl:PATH"``
        resolve to the stock reporters in :mod:`repro.obs.progress`.
        Progress is strictly out of band: results, aggregates and
        fingerprints are byte-identical with and without it.
    """
    trials = grid.trials() if isinstance(grid, GridSpec) else list(grid)
    return run_trials(
        trials,
        workers=workers,
        collector=collector,
        mode=mode,
        reducer=reducer,
        trace_level=trace_level,
        fold=fold,
        start_method=start_method,
        progress=progress,
    )
