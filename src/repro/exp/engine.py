"""The sweep executor: fan trials out over worker processes, deterministically.

Design constraints, in order:

1. **Parallel == serial, exactly.**  Every trial's RNG seed is derived from
   its grid coordinates (:attr:`~repro.exp.spec.TrialSpec.derived_seed`), so
   the schedule a trial sees is independent of which worker runs it.  Results
   are re-ordered by trial index before aggregation.  A sweep with
   ``workers=8`` therefore produces byte-identical aggregates to ``workers=1``
   (asserted by :meth:`~repro.exp.results.SweepResult.fingerprint`).

2. **Arbitrary specs, including closures.**  Fault plans and delay models in
   this repo routinely carry lambdas (payload predicates, adversarial delay
   functions) that cannot cross a pickling process boundary.  The pool
   therefore uses the ``fork`` start method and ships the trial list to the
   workers *by inheritance*: the parent parks it in a module-level slot that
   the forked children share, and only integer trial indices and plain-data
   :class:`~repro.exp.results.TrialResult` records travel over the queues.

3. **Serial fallback.**  Where ``fork`` is unavailable (non-POSIX platforms)
   or the sweep is too small to amortise worker start-up, the engine runs the
   same trial loop in-process.  ``SweepResult.meta["mode"]`` records which
   path ran.

4. **Bounded-memory aggregation.**  ``mode="aggregate"`` (or a custom
   ``reducer=``) streams results instead of collecting them: each
   :class:`~repro.exp.results.TrialResult` is folded into per-coordinate
   accumulators the moment it arrives and then dropped, so a 10^5-10^6-trial
   sweep holds one accumulator per grid cell rather than every trial.  The
   parallel path uses ``Pool.imap`` — which yields results *in trial-index
   order* — so the fold performs the identical floating-point operations in
   the identical order as a serial run, making the streamed aggregates
   byte-identical to both the serial streamed run and the in-memory
   ``mode="full"`` aggregation of the same grid and seeds.  (Workers are
   deliberately not asked to pre-merge partial accumulators: merging partial
   float sums is not associativity-safe, and per-trial IPC is negligible next
   to simulation cost.)  Note the bound is on *results*: the expanded
   ``TrialSpec`` list itself is still materialised (lightweight frozen
   records sharing their axis-spec objects, inherited by workers via fork,
   not copied) — it is the per-trial measurement records, orders of
   magnitude heavier, that streaming never holds.

5. **Cluster trials.**  A trial whose spec carries a
   :class:`~repro.exp.spec.WorkloadSpec` runs a :mod:`repro.db` cluster
   battery (``n`` partitions, the protocol axis embedded as the commit
   protocol, the workload's transactions as the load) instead of a bare
   protocol execution, and condenses the
   :class:`~repro.db.cluster.ClusterReport` into the same TrialResult shape.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.checker import check_nbac
from repro.errors import ConfigurationError
from repro.exp.results import SweepAggregate, SweepResult, TrialResult
from repro.exp.spec import GridSpec, TrialSpec
from repro.sim.runner import Simulation, SimulationResult

#: a collector receives (trial, result) in the worker and returns extra
#: picklable data to attach to the TrialResult (e.g. protocol-internal state
#: such as INBAC's branch log, which never leaves the worker otherwise).
#: For cluster trials the second argument is the ClusterReport instead.
Collector = Callable[[TrialSpec, Any], Dict[str, Any]]

#: below this many trials a pool costs more than it saves
_MIN_TRIALS_FOR_POOL = 4

# ships (trials, collector) to forked workers by memory inheritance
_WORKER_TRIALS: List[TrialSpec] = []
_WORKER_COLLECTOR: Optional[Collector] = None


def run_trial(trial: TrialSpec, collector: Optional[Collector] = None) -> TrialResult:
    """Run one trial to completion and condense it into a TrialResult."""
    base = TrialResult(
        index=trial.index,
        protocol=trial.protocol.label,
        n=trial.n,
        f=trial.f,
        delay_label=trial.delay.label,
        fault_label=trial.fault.label,
        votes_label=trial.votes.label,
        base_seed=trial.base_seed,
        derived_seed=trial.derived_seed,
        workload_label=trial.workload_label,
    )
    if trial.workload is not None:
        return _run_cluster_trial(trial, base, collector)
    try:
        seed = trial.derived_seed
        sim = Simulation(
            n=trial.n,
            f=trial.f,
            process_class=trial.protocol.cls,
            delay_model=trial.delay.factory(seed),
            fault_plan=trial.fault.factory(),
            seed=seed,
            max_time=trial.max_time,
            protocol_kwargs=trial.protocol.protocol_kwargs(),
        )
        result = sim.run(trial.votes.pattern(trial.n))
    except Exception:
        base.error = traceback.format_exc(limit=8)
        return base

    trace = result.trace
    report = check_nbac(trace)
    base.execution_class = trace.metadata.get("execution_class", "failure-free")
    base.decisions = result.decisions()
    base.decision_latencies = sorted(
        rec.time for rec in trace.decisions.values()
    )
    base.first_decision = trace.first_decision_time()
    base.last_decision = trace.last_decision_time()
    base.messages_total = trace.message_count()
    base.messages_main = trace.message_count(module="main")
    base.messages_consensus = base.messages_total - base.messages_main
    last = trace.last_decision_time()
    base.messages_until_last_decision = (
        trace.messages_received_by(last) if last is not None else base.messages_total
    )
    base.agreement = report.agreement.holds
    base.validity = report.validity.holds
    base.termination = report.termination.holds
    base.crashes = dict(trace.crashes)
    if collector is not None:
        base.extra = dict(collector(trial, result) or {})
    return base


def _run_cluster_trial(
    trial: TrialSpec, base: TrialResult, collector: Optional[Collector]
) -> TrialResult:
    """Run one :mod:`repro.db` cluster battery and condense its report.

    The mapping onto the TrialResult shape: ``decisions`` holds one entry per
    transaction (txn id -> commit/abort decision), ``decision_latencies`` the
    per-transaction commit latencies, and ``termination`` whether every
    transaction completed.  Agreement/validity checking applies to bare
    protocol trials; cluster trials leave them True.  The full
    ``ClusterReport.summary_row`` lands in ``extra``.
    """
    # imported lazily: repro.db pulls in the whole store/partition stack,
    # which bare protocol sweeps never need
    from repro.db.cluster import ClusterConfig, run_cluster

    try:
        seed = trial.derived_seed
        delay_model = trial.delay.factory(seed)
        fault_plan = trial.fault.factory()
        config = ClusterConfig(
            num_partitions=trial.n,
            commit_protocol=trial.protocol.cls,
            commit_f=trial.f,
            protocol_kwargs=trial.protocol.protocol_kwargs(),
            delay_model=delay_model,
            fault_plan=fault_plan,
            seed=seed,
            max_time=trial.max_time,
        )
        transactions = trial.workload.factory(trial.n, seed)
        report = run_cluster(config, transactions)
    except Exception:
        base.error = traceback.format_exc(limit=8)
        return base

    base.execution_class = fault_plan.execution_class(delay_model.bound())
    base.decisions = {o.txn_id: o.decision for o in report.outcomes}
    base.decision_latencies = sorted(report.commit_latencies())
    if base.decision_latencies:
        base.first_decision = base.decision_latencies[0]
        base.last_decision = base.decision_latencies[-1]
    base.messages_total = report.messages_total
    base.messages_main = report.messages_by_module.get("main", 0)
    base.messages_consensus = base.messages_total - base.messages_main
    base.messages_until_last_decision = report.messages_until_last_decision
    base.termination = report.incomplete == 0
    base.crashes = dict(fault_plan.crashes)
    summary = report.summary_row()
    summary["protocol"] = trial.protocol.label  # the sweep's label, not the class name
    base.extra = summary
    if collector is not None:
        base.extra = {**summary, **(collector(trial, report) or {})}
    return base


# --------------------------------------------------------------------------- #
# worker plumbing (fork start method only; see module docstring)
# --------------------------------------------------------------------------- #
def _pool_init(trials: List[TrialSpec], collector: Optional[Collector]) -> None:
    global _WORKER_TRIALS, _WORKER_COLLECTOR
    _WORKER_TRIALS = trials
    _WORKER_COLLECTOR = collector


def _run_index(index: int) -> TrialResult:
    return run_trial(_WORKER_TRIALS[index], _WORKER_COLLECTOR)


def _resolve_workers(workers: Optional[int], n_trials: int) -> int:
    """Resolve the worker count, validating explicit and environment overrides.

    A malformed or non-positive ``REPRO_EXP_WORKERS`` (or ``workers=``
    argument) raises :class:`~repro.errors.ConfigurationError` naming the
    offending value, rather than leaking a bare ``ValueError`` or silently
    clamping a negative count to 1.
    """
    if workers is None:
        env = os.environ.get("REPRO_EXP_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_EXP_WORKERS must be a positive integer, got {env!r}"
                ) from None
            if workers <= 0:
                raise ConfigurationError(
                    f"REPRO_EXP_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            workers = os.cpu_count() or 1
    else:
        try:
            workers = int(workers)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"workers must be a positive integer, got {workers!r}"
            ) from None
        if workers <= 0:
            raise ConfigurationError(
                f"workers must be a positive integer, got {workers}"
            )
    return max(1, min(workers, n_trials))


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


#: cap on the pool chunk size in streaming mode, so a worker never buffers an
#: unbounded slice of results before shipping them back
_MAX_STREAM_CHUNK = 64

#: the modes run_trials/run_sweep accept
_MODES = ("full", "aggregate")


def run_trials(
    trials: Sequence[TrialSpec],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
    mode: str = "full",
    reducer: Optional[Any] = None,
) -> Union[SweepResult, Any]:
    """Run an explicit trial list (see :func:`repro.exp.spec.make_cases`)."""
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown sweep mode {mode!r}; expected one of {_MODES}"
        )
    trials = list(trials)
    streaming = mode == "aggregate" or reducer is not None
    n_workers = _resolve_workers(workers, len(trials))
    use_pool = (
        n_workers > 1 and len(trials) >= _MIN_TRIALS_FOR_POOL and _fork_available()
    )
    exec_mode = "parallel" if use_pool else "serial"
    meta = {
        "mode": exec_mode,
        "workers": n_workers if use_pool else 1,
        "requested_workers": workers,
        "trials": len(trials),
        "sweep_mode": "aggregate" if streaming else "full",
    }

    if not streaming:
        if use_pool:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(
                processes=n_workers, initializer=_pool_init, initargs=(trials, collector)
            ) as pool:
                chunk = max(1, len(trials) // (n_workers * 4))
                results = pool.map(_run_index, range(len(trials)), chunksize=chunk)
        else:
            results = [run_trial(trial, collector) for trial in trials]
        return SweepResult(trials=results, meta=meta)

    # streaming: fold each result the moment it arrives, in trial-index order
    # (imap yields in submission order), then drop it — identical operation
    # order to a serial run, bounded memory
    sink = reducer if reducer is not None else SweepAggregate()
    if use_pool:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(
            processes=n_workers, initializer=_pool_init, initargs=(trials, collector)
        ) as pool:
            chunk = max(1, min(_MAX_STREAM_CHUNK, len(trials) // (n_workers * 4)))
            for result in pool.imap(_run_index, range(len(trials)), chunksize=chunk):
                sink.fold(result)
    else:
        for trial in trials:
            sink.fold(run_trial(trial, collector))
    if hasattr(sink, "meta"):
        sink.meta.update(meta)
    return sink


def run_sweep(
    grid: Union[GridSpec, Sequence[TrialSpec]],
    workers: Optional[int] = None,
    collector: Optional[Collector] = None,
    mode: str = "full",
    reducer: Optional[Any] = None,
) -> Union[SweepResult, Any]:
    """Expand a grid and run every trial, fanning out across workers.

    Parameters
    ----------
    grid:
        A :class:`~repro.exp.spec.GridSpec` (or an already-expanded trial
        list) describing the protocol x (n, f) x delay x fault x votes x
        workload x seed cross product.
    workers:
        Worker process count.  ``None`` means "one per CPU" (overridable via
        the ``REPRO_EXP_WORKERS`` environment variable, which must be a
        positive integer); ``1`` forces the serial path.  Parallel and serial
        runs produce identical results.
    collector:
        Optional per-trial hook run *inside the worker* with the live
        :class:`~repro.sim.runner.SimulationResult` (the
        :class:`~repro.db.cluster.ClusterReport` for cluster trials);
        whatever picklable dict it returns lands in ``TrialResult.extra``.
    mode:
        ``"full"`` (default) returns a :class:`~repro.exp.results.SweepResult`
        holding every trial.  ``"aggregate"`` streams: trial results are
        folded into a :class:`~repro.exp.results.SweepAggregate` and
        discarded, so memory is bounded by the grid's cell count instead of
        its trial count, and the aggregate tables are byte-identical to the
        in-memory path on the same grid and seeds.
    reducer:
        Custom streaming sink: any object with a ``fold(TrialResult)``
        method.  Implies streaming regardless of ``mode``; the engine folds
        every result in trial-index order and returns the reducer (updating
        its ``meta`` dict attribute, if present, with execution metadata).
    """
    trials = grid.trials() if isinstance(grid, GridSpec) else list(grid)
    return run_trials(trials, workers=workers, collector=collector, mode=mode, reducer=reducer)
