"""Registry-named delay models, reducers and vote patterns.

The sweep engine's default ``fork`` pool ships closures to workers by memory
inheritance, so grids may freely carry lambdas.  The ``spawn`` start method
(the only one available on Windows, and the macOS default) pickles everything
instead — and a lambda, or a factory closed over one, cannot cross that
boundary.  This module provides the *spawn-safe spec subset*: named factories
whose state is plain data, registered under short strings, so a grid built
from registry names pickles by construction.

* :func:`named_delay` / ``delays=["uniform", ...]`` — delay-model factories
  (``fixed``, ``uniform``, ``lognormal`` built in, extensible via
  :func:`register_delay_model`);
* :func:`named_workload` / ``workloads=["uniform", ...]`` — transaction
  workload factories for cluster trials (``uniform``, ``hotspot``,
  ``bank-transfer`` built in, extensible via :func:`register_workload`);
  the builder receives ``(n, seed)`` — the trial's partition count and
  derived seed — plus the registered parameters;
* :func:`make_reducer` / ``run_sweep(reducer="violations")`` — streaming
  sinks by name (``aggregate``, ``robustness``, ``violations``);
* schedule strategies are registry-named at the source (see
  :mod:`repro.explore.strategies`), so every
  :class:`~repro.exp.spec.ScheduleSpec` is spawn-safe already.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan
from repro.sim.network import (
    DelayModel,
    FixedDelay,
    FlakyLinkDelay,
    LognormalDelay,
    UniformDelay,
)

# --------------------------------------------------------------------------- #
# delay models
# --------------------------------------------------------------------------- #

#: name -> builder(seed, **params) -> DelayModel
_DELAY_BUILDERS: Dict[str, Callable[..., DelayModel]] = {}


def register_delay_model(name: str, builder: Callable[..., DelayModel]) -> None:
    """Register a delay-model builder callable under ``name``.

    The builder receives the trial seed as its first argument plus the
    keyword parameters given to :func:`named_delay`; it must be a module-level
    callable for the registration to be spawn-safe.
    """
    _DELAY_BUILDERS[name] = builder


def delay_model_names() -> List[str]:
    return list(_DELAY_BUILDERS)


def _build_fixed(seed: int, u: float = 1.0) -> DelayModel:
    return FixedDelay(u)


def _build_uniform(
    seed: int, lo: float = 0.3, hi: float = 1.0, u: float = None
) -> DelayModel:
    return UniformDelay(lo, hi, u=u, seed=seed)


def _build_lognormal(
    seed: int, median: float = 0.3, sigma: float = 0.6, u: float = 1.0
) -> DelayModel:
    return LognormalDelay(median=median, sigma=sigma, u=u, seed=seed)


def _build_flaky_link(
    seed: int,
    u: float = 1.0,
    jitter: float = 0.2,
    slow_pairs: tuple = (((1, 2), 3.0),),
    outages: tuple = ((2, 1, 4.0, 8.0),),
) -> DelayModel:
    # gray-failure profile: P1->P2 slow-but-alive, P2->P1 partitioned over
    # [4, 8) then healed — an asymmetric degradation, not a clean crash.
    # Parameters are nested tuples (not dicts) so the factory stays hashable
    # and spawn-picklable.
    return FlakyLinkDelay(
        u=u,
        jitter=jitter,
        slow_pairs={tuple(pair): factor for pair, factor in slow_pairs},
        outages=tuple(tuple(w) for w in outages),
        seed=seed,
    )


register_delay_model("fixed", _build_fixed)
register_delay_model("uniform", _build_uniform)
register_delay_model("lognormal", _build_lognormal)
register_delay_model("flaky-link", _build_flaky_link)


class NamedDelayFactory:
    """A picklable ``factory(seed) -> DelayModel`` resolved through the registry.

    Instances carry only the registry name and plain-data parameters, so a
    :class:`~repro.exp.spec.DelaySpec` built from one crosses a ``spawn``
    process boundary; the worker re-resolves the name against its own copy of
    the registry at build time.  For that to work, custom registrations must
    happen at *import time* (module level) — a name registered only in the
    parent's ``__main__`` block does not exist in a spawn worker, and the
    per-trial build below raises a named ``ConfigurationError`` (captured in
    ``TrialResult.error``) rather than an anonymous ``KeyError``.
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, params: Dict[str, Any]):
        if name not in _DELAY_BUILDERS:
            known = ", ".join(sorted(_DELAY_BUILDERS))
            raise ConfigurationError(
                f"unknown delay model {name!r}; known: {known}"
            )
        self.name = name
        self.params = dict(params)

    def __call__(self, seed: int) -> DelayModel:
        try:
            builder = _DELAY_BUILDERS[self.name]
        except KeyError:
            known = ", ".join(sorted(_DELAY_BUILDERS))
            raise ConfigurationError(
                f"delay model {self.name!r} is not registered in this process "
                f"(known: {known}); under the spawn start method, "
                f"register_delay_model must run at import time so workers "
                f"re-register it"
            ) from None
        return builder(seed, **self.params)

    def __getstate__(self):
        return (self.name, self.params)

    def __setstate__(self, state):
        self.name, self.params = state

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, NamedDelayFactory)
            and other.name == self.name
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params.items()))))


def named_delay(name: str, label: str = None, **params: Any):
    """A spawn-safe :class:`~repro.exp.spec.DelaySpec` from a registry name."""
    from repro.exp.spec import DelaySpec

    if label is None:
        label = name if not params else "{}({})".format(
            name, ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        )
    return DelaySpec(label=label, factory=NamedDelayFactory(name, params))


# --------------------------------------------------------------------------- #
# fault plans
# --------------------------------------------------------------------------- #

#: name -> builder(**params) -> FaultPlan
_FAULT_BUILDERS: Dict[str, Callable[..., FaultPlan]] = {}


def register_fault_plan(name: str, builder: Callable[..., FaultPlan]) -> None:
    """Register a fault-plan builder callable under ``name``.

    The builder receives the keyword parameters given to :func:`named_fault`
    and returns a *fresh* :class:`~repro.sim.faults.FaultPlan` (plans are
    stateful: DelayRules carry match counters); it must be a module-level
    callable for the registration to be spawn-safe.
    """
    _FAULT_BUILDERS[name] = builder


def fault_plan_names() -> List[str]:
    return list(_FAULT_BUILDERS)


def _build_failure_free() -> FaultPlan:
    return FaultPlan.failure_free()


def _build_crash(pid: int = 1, at: float = 5.0) -> FaultPlan:
    return FaultPlan.crash(pid, at=at)


def _build_rejoin(
    pid: int = 1, at: float = 6.0, rejoin_at: float = 18.0
) -> FaultPlan:
    return FaultPlan.crash_recover(pid, at=at, rejoin_at=rejoin_at)


register_fault_plan("failure-free", _build_failure_free)
register_fault_plan("crash", _build_crash)
register_fault_plan("rejoin", _build_rejoin)


class NamedFaultFactory:
    """A picklable ``factory() -> FaultPlan`` resolved through the registry.

    The exact analogue of :class:`NamedDelayFactory` for the faults axis:
    instances carry only the registry name and plain-data parameters, so a
    :class:`~repro.exp.spec.FaultSpec` built from one crosses a ``spawn``
    process boundary and equal factories compare equal.
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, params: Dict[str, Any]):
        if name not in _FAULT_BUILDERS:
            known = ", ".join(sorted(_FAULT_BUILDERS))
            raise ConfigurationError(
                f"unknown fault plan {name!r}; known: {known}"
            )
        self.name = name
        self.params = dict(params)

    def __call__(self) -> FaultPlan:
        try:
            builder = _FAULT_BUILDERS[self.name]
        except KeyError:
            known = ", ".join(sorted(_FAULT_BUILDERS))
            raise ConfigurationError(
                f"fault plan {self.name!r} is not registered in this process "
                f"(known: {known}); under the spawn start method, "
                f"register_fault_plan must run at import time so workers "
                f"re-register it"
            ) from None
        return builder(**self.params)

    def __getstate__(self):
        return (self.name, self.params)

    def __setstate__(self, state):
        self.name, self.params = state

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, NamedFaultFactory)
            and other.name == self.name
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params.items()))))


def named_fault(name: str, label: str = None, **params: Any):
    """A spawn-safe :class:`~repro.exp.spec.FaultSpec` from a registry name."""
    from repro.exp.spec import FaultSpec

    if label is None:
        label = name if not params else "{}({})".format(
            name, ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        )
    return FaultSpec(label=label, factory=NamedFaultFactory(name, params))


# --------------------------------------------------------------------------- #
# transaction workloads
# --------------------------------------------------------------------------- #

#: name -> builder(n, seed, **params) -> sequence of Transactions
_WORKLOAD_BUILDERS: Dict[str, Callable[..., Any]] = {}


def register_workload(name: str, builder: Callable[..., Any]) -> None:
    """Register a transaction-workload builder callable under ``name``.

    The builder receives the trial's partition count and derived seed as its
    first two arguments plus the keyword parameters given to
    :func:`named_workload`, and returns the transaction sequence; it must be
    a module-level callable for the registration to be spawn-safe.
    """
    _WORKLOAD_BUILDERS[name] = builder


def workload_names() -> List[str]:
    return list(_WORKLOAD_BUILDERS)


def _build_uniform_txns(n: int, seed: int, transactions: int = 6, **params: Any):
    from repro.workloads.transactions import uniform_workload

    params.setdefault("participants_per_txn", min(3, n))
    return uniform_workload(transactions, n, seed=seed, **params).transactions


def _build_hotspot_txns(n: int, seed: int, transactions: int = 6, **params: Any):
    from repro.workloads.transactions import hotspot_workload

    params.setdefault("participants_per_txn", min(2, n))
    return hotspot_workload(transactions, n, seed=seed, **params).transactions


def _build_bank_transfer_txns(
    n: int, seed: int, transactions: int = 6, **params: Any
):
    from repro.workloads.transactions import bank_transfer_workload

    return bank_transfer_workload(transactions, n, seed=seed, **params).transactions


register_workload("uniform", _build_uniform_txns)
register_workload("hotspot", _build_hotspot_txns)
register_workload("bank-transfer", _build_bank_transfer_txns)


class NamedWorkloadFactory:
    """A picklable ``factory(n, seed) -> transactions`` resolved by name.

    The exact analogue of :class:`NamedDelayFactory` for the workload axis:
    instances carry only the registry name and plain-data parameters, so a
    :class:`~repro.exp.spec.WorkloadSpec` built from one crosses a ``spawn``
    process boundary, and equal factories compare equal (feeding the
    engine's per-cell memoisation).
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, params: Dict[str, Any]):
        if name not in _WORKLOAD_BUILDERS:
            known = ", ".join(sorted(_WORKLOAD_BUILDERS))
            raise ConfigurationError(
                f"unknown workload {name!r}; known: {known}"
            )
        self.name = name
        self.params = dict(params)

    def __call__(self, n: int, seed: int):
        try:
            builder = _WORKLOAD_BUILDERS[self.name]
        except KeyError:
            known = ", ".join(sorted(_WORKLOAD_BUILDERS))
            raise ConfigurationError(
                f"workload {self.name!r} is not registered in this process "
                f"(known: {known}); under the spawn start method, "
                f"register_workload must run at import time so workers "
                f"re-register it"
            ) from None
        return builder(n, seed, **self.params)

    def __getstate__(self):
        return (self.name, self.params)

    def __setstate__(self, state):
        self.name, self.params = state

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, NamedWorkloadFactory)
            and other.name == self.name
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params.items()))))


def named_workload(name: str, label: str = None, **params: Any):
    """A spawn-safe :class:`~repro.exp.spec.WorkloadSpec` from a registry name."""
    from repro.exp.spec import WorkloadSpec

    if label is None:
        label = name if not params else "{}({})".format(
            name, ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        )
    return WorkloadSpec(label=label, factory=NamedWorkloadFactory(name, params))


# --------------------------------------------------------------------------- #
# reducers
# --------------------------------------------------------------------------- #

#: name -> zero-argument reducer factory
_REDUCER_BUILDERS: Dict[str, Callable[[], Any]] = {}


def register_reducer(name: str, builder: Callable[[], Any]) -> None:
    """Register a streaming-sink factory under ``name``."""
    _REDUCER_BUILDERS[name] = builder


def reducer_names() -> List[str]:
    return list(_REDUCER_BUILDERS)


def make_reducer(name: str) -> Any:
    """Instantiate a registered reducer (``run_sweep(reducer="...")``)."""
    try:
        builder = _REDUCER_BUILDERS[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REDUCER_BUILDERS))
        raise ConfigurationError(
            f"unknown reducer {name!r}; known: {known}"
        ) from exc
    return builder()


def _build_aggregate():
    from repro.exp.results import SweepAggregate

    return SweepAggregate()


def _build_robustness():
    from repro.exp.results import RobustnessFold

    return RobustnessFold()


def _build_violations():
    from repro.explore.fold import ViolationFold

    return ViolationFold()


register_reducer("aggregate", _build_aggregate)
register_reducer("robustness", _build_robustness)
register_reducer("violations", _build_violations)
