"""Registry-named delay models, reducers and vote patterns.

The sweep engine's default ``fork`` pool ships closures to workers by memory
inheritance, so grids may freely carry lambdas.  The ``spawn`` start method
(the only one available on Windows, and the macOS default) pickles everything
instead — and a lambda, or a factory closed over one, cannot cross that
boundary.  This module provides the *spawn-safe spec subset*: named factories
whose state is plain data, registered under short strings, so a grid built
from registry names pickles by construction.

* :func:`named_delay` / ``delays=["uniform", ...]`` — delay-model factories
  (``fixed``, ``uniform``, ``lognormal`` built in, extensible via
  :func:`register_delay_model`);
* :func:`make_reducer` / ``run_sweep(reducer="violations")`` — streaming
  sinks by name (``aggregate``, ``robustness``, ``violations``);
* schedule strategies are registry-named at the source (see
  :mod:`repro.explore.strategies`), so every
  :class:`~repro.exp.spec.ScheduleSpec` is spawn-safe already.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ConfigurationError
from repro.sim.network import DelayModel, FixedDelay, LognormalDelay, UniformDelay

# --------------------------------------------------------------------------- #
# delay models
# --------------------------------------------------------------------------- #

#: name -> builder(seed, **params) -> DelayModel
_DELAY_BUILDERS: Dict[str, Callable[..., DelayModel]] = {}


def register_delay_model(name: str, builder: Callable[..., DelayModel]) -> None:
    """Register a delay-model builder callable under ``name``.

    The builder receives the trial seed as its first argument plus the
    keyword parameters given to :func:`named_delay`; it must be a module-level
    callable for the registration to be spawn-safe.
    """
    _DELAY_BUILDERS[name] = builder


def delay_model_names() -> List[str]:
    return list(_DELAY_BUILDERS)


def _build_fixed(seed: int, u: float = 1.0) -> DelayModel:
    return FixedDelay(u)


def _build_uniform(
    seed: int, lo: float = 0.3, hi: float = 1.0, u: float = None
) -> DelayModel:
    return UniformDelay(lo, hi, u=u, seed=seed)


def _build_lognormal(
    seed: int, median: float = 0.3, sigma: float = 0.6, u: float = 1.0
) -> DelayModel:
    return LognormalDelay(median=median, sigma=sigma, u=u, seed=seed)


register_delay_model("fixed", _build_fixed)
register_delay_model("uniform", _build_uniform)
register_delay_model("lognormal", _build_lognormal)


class NamedDelayFactory:
    """A picklable ``factory(seed) -> DelayModel`` resolved through the registry.

    Instances carry only the registry name and plain-data parameters, so a
    :class:`~repro.exp.spec.DelaySpec` built from one crosses a ``spawn``
    process boundary; the worker re-resolves the name against its own copy of
    the registry at build time.  For that to work, custom registrations must
    happen at *import time* (module level) — a name registered only in the
    parent's ``__main__`` block does not exist in a spawn worker, and the
    per-trial build below raises a named ``ConfigurationError`` (captured in
    ``TrialResult.error``) rather than an anonymous ``KeyError``.
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, params: Dict[str, Any]):
        if name not in _DELAY_BUILDERS:
            known = ", ".join(sorted(_DELAY_BUILDERS))
            raise ConfigurationError(
                f"unknown delay model {name!r}; known: {known}"
            )
        self.name = name
        self.params = dict(params)

    def __call__(self, seed: int) -> DelayModel:
        try:
            builder = _DELAY_BUILDERS[self.name]
        except KeyError:
            known = ", ".join(sorted(_DELAY_BUILDERS))
            raise ConfigurationError(
                f"delay model {self.name!r} is not registered in this process "
                f"(known: {known}); under the spawn start method, "
                f"register_delay_model must run at import time so workers "
                f"re-register it"
            ) from None
        return builder(seed, **self.params)

    def __getstate__(self):
        return (self.name, self.params)

    def __setstate__(self, state):
        self.name, self.params = state

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, NamedDelayFactory)
            and other.name == self.name
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.params.items()))))


def named_delay(name: str, label: str = None, **params: Any):
    """A spawn-safe :class:`~repro.exp.spec.DelaySpec` from a registry name."""
    from repro.exp.spec import DelaySpec

    if label is None:
        label = name if not params else "{}({})".format(
            name, ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        )
    return DelaySpec(label=label, factory=NamedDelayFactory(name, params))


# --------------------------------------------------------------------------- #
# reducers
# --------------------------------------------------------------------------- #

#: name -> zero-argument reducer factory
_REDUCER_BUILDERS: Dict[str, Callable[[], Any]] = {}


def register_reducer(name: str, builder: Callable[[], Any]) -> None:
    """Register a streaming-sink factory under ``name``."""
    _REDUCER_BUILDERS[name] = builder


def reducer_names() -> List[str]:
    return list(_REDUCER_BUILDERS)


def make_reducer(name: str) -> Any:
    """Instantiate a registered reducer (``run_sweep(reducer="...")``)."""
    try:
        builder = _REDUCER_BUILDERS[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REDUCER_BUILDERS))
        raise ConfigurationError(
            f"unknown reducer {name!r}; known: {known}"
        ) from exc
    return builder()


def _build_aggregate():
    from repro.exp.results import SweepAggregate

    return SweepAggregate()


def _build_robustness():
    from repro.exp.results import RobustnessFold

    return RobustnessFold()


def _build_violations():
    from repro.explore.fold import ViolationFold

    return ViolationFold()


register_reducer("aggregate", _build_aggregate)
register_reducer("robustness", _build_robustness)
register_reducer("violations", _build_violations)
