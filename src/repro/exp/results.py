"""Structured sweep results and their deterministic aggregation.

Workers return :class:`TrialResult` records — plain picklable data, no traces
and no live process objects — and :class:`SweepResult` turns the flat trial
list into the shapes the rest of the repo consumes: per-coordinate aggregate
rows for :func:`repro.analysis.render.render_table`, robustness summaries in
the style of Table 5's bottom row, and a canonical fingerprint used to assert
that two sweeps (e.g. a serial and a parallel run of the same grid) produced
byte-identical aggregates.

For sweeps too large to hold every trial (the engine's ``mode="aggregate"``),
:class:`SweepAggregate` folds the same trial stream into per-coordinate
accumulators instead: counts, commit/abort tallies, message totals, and exact
value -> multiplicity digests for latencies and decision times.  Every
accumulator statistic is *order-independent* (integer tallies, digests,
boolean ANDs; the float reductions are computed from sorted digests at row
time), so the aggregate rows — and therefore
:meth:`SweepAggregate.aggregate_fingerprint` — are byte-identical to
:meth:`SweepResult.aggregate_rows` on the same grid and seeds, and partial
accumulators folded on different workers merge (:meth:`SweepAggregate.merge`)
to the same bytes as a single-stream fold.  Memory stays bounded by the
number of grid cells (plus distinct latency values), never by the number of
trials.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: grid-cell coordinates; trials explored under a schedule strategy carry an
#: eighth element (the schedule label) so strategies aggregate separately
GroupKey = Tuple[str, ...]

#: property label + the TrialResult attribute that records whether it held
_PROPERTIES = (("A", "agreement"), ("V", "validity"), ("T", "termination"))


def held_label(trials: Iterable["TrialResult"]) -> str:
    """Compact ``"AVT"``-style label of the properties that held in *every* trial."""
    trials = list(trials)
    return "".join(
        label
        for label, attr in _PROPERTIES
        if all(getattr(t, attr) for t in trials)
    )


@dataclass
class TrialResult:
    """Everything measured in one simulated execution, ready to pickle.

    ``decision_latencies`` holds each deciding process' decision time in
    units of the delay bound ``U``, sorted ascending — the raw material for
    latency distributions across a sweep.
    """

    index: int
    protocol: str
    n: int
    f: int
    delay_label: str
    fault_label: str
    votes_label: str
    base_seed: int
    derived_seed: int
    workload_label: str = "-"
    schedule_label: str = "-"
    execution_class: str = "failure-free"
    decisions: Dict[int, Any] = field(default_factory=dict)
    decision_latencies: List[float] = field(default_factory=list)
    first_decision: Optional[float] = None
    last_decision: Optional[float] = None
    messages_total: int = 0
    messages_main: int = 0
    messages_consensus: int = 0
    messages_until_last_decision: int = 0
    agreement: bool = True
    validity: bool = True
    termination: bool = True
    crashes: Dict[int, float] = field(default_factory=dict)
    error: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> GroupKey:
        base = (
            self.protocol,
            self.n,
            self.f,
            self.delay_label,
            self.fault_label,
            self.votes_label,
            self.workload_label,
        )
        # the schedule coordinate exists only for explored trials, so grids
        # without a schedules axis keep their pre-existing keys (and
        # therefore their aggregate fingerprints) byte for byte
        if self.schedule_label != "-":
            return base + (self.schedule_label,)
        return base

    @property
    def decided(self) -> int:
        return len(self.decisions)

    @property
    def all_committed(self) -> bool:
        return bool(self.decisions) and set(self.decisions.values()) == {1}

    def solves_nbac(self) -> bool:
        return self.agreement and self.validity and self.termination

    def held_label(self) -> str:
        """Compact ``"AVT"``-style label of the properties that held."""
        return held_label([self])

    def as_row(self) -> Dict[str, Any]:
        """One flat dict per trial (render_table- and JSON-friendly)."""
        row = {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "delay": self.delay_label,
            "fault": self.fault_label,
            "votes": self.votes_label,
            "workload": self.workload_label,
            "seed": self.base_seed,
            "class": self.execution_class,
            "decided": self.decided,
            "outcome": "commit" if self.all_committed else
                       ("abort" if self.decisions and set(self.decisions.values()) == {0}
                        else "mixed/none"),
            "delays": self.last_decision,
            "messages": self.messages_until_last_decision,
            "messages_sent": self.messages_total,
            "properties": self.held_label(),
        }
        if self.schedule_label != "-":
            row["schedule"] = self.schedule_label
        return row


def _percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _digest_percentile(counts: Dict[float, int], total: int, q: float) -> Optional[float]:
    """Nearest-rank percentile over a value -> multiplicity digest.

    Walking the sorted distinct values while accumulating multiplicities
    selects exactly the element that :func:`_percentile` would select from the
    expanded sorted list, so digest- and list-based percentiles agree on the
    same data down to the byte.
    """
    if total == 0:
        return None
    rank = min(max(1, math.ceil(q / 100.0 * total)), total)
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen >= rank:
            return value
    return None  # pragma: no cover - rank <= total guarantees a hit


def _digest_sum(counts: Dict[float, int]) -> float:
    """Deterministic sum over a value → multiplicity digest.

    Walking the *sorted* distinct values makes the floating-point operation
    sequence a pure function of the digest contents — independent of the
    order the values were folded in.  This is what lets partial accumulators
    folded on different workers merge into byte-identical aggregates.
    """
    total = 0.0
    for value in sorted(counts):
        total += value * counts[value]
    return total


class CellAccumulator:
    """Streaming aggregate of all trials sharing one grid coordinate.

    Every statistic is kept in an *order-independent* representation —
    integer tallies, value → multiplicity digests, boolean ANDs — and the
    floating-point reductions (means, percentiles) are computed from the
    digests at :meth:`row` time over sorted distinct values.  The produced
    row is therefore a pure function of the trial *set*, which makes three
    paths byte-identical by construction: in-memory aggregation
    (:meth:`SweepResult.aggregate_rows`), per-trial streaming folds, and
    worker-side partial accumulators combined with :meth:`merge`.

    State is O(1) per cell plus the digests (one entry per *distinct*
    latency / last-decision value — bounded by the delay model's support,
    not by the trial count, for the deterministic models large sweeps use).
    """

    __slots__ = (
        "key", "first_index", "execution_class", "count", "commits", "solved",
        "last_counts", "n_last", "latency_counts", "n_latencies",
        "sum_messages", "sum_messages_sent", "all_held",
    )

    def __init__(self, key: GroupKey, first_index: int, execution_class: str):
        self.key = key
        self.first_index = first_index
        self.execution_class = execution_class
        self.count = 0
        self.commits = 0
        self.solved = 0
        self.last_counts: Dict[float, int] = {}
        self.n_last = 0
        self.latency_counts: Dict[float, int] = {}
        self.n_latencies = 0
        self.sum_messages = 0
        self.sum_messages_sent = 0
        self.all_held = {attr: True for _, attr in _PROPERTIES}

    def fold(self, trial: "TrialResult") -> None:
        self.count += 1
        if trial.all_committed:
            self.commits += 1
        if trial.solves_nbac():
            self.solved += 1
        if trial.last_decision is not None:
            last = trial.last_decision
            self.last_counts[last] = self.last_counts.get(last, 0) + 1
            self.n_last += 1
        for latency in trial.decision_latencies:
            self.latency_counts[latency] = self.latency_counts.get(latency, 0) + 1
            self.n_latencies += 1
        self.sum_messages += trial.messages_until_last_decision
        self.sum_messages_sent += trial.messages_total
        for _, attr in _PROPERTIES:
            if not getattr(trial, attr):
                self.all_held[attr] = False

    def merge(self, other: "CellAccumulator") -> None:
        """Fold another accumulator of the *same cell* into this one.

        Exact for every statistic: tallies add, digests add multiplicities,
        property flags AND — no float summation order is involved, so a
        chunked worker-side fold merges to the same bytes a per-trial fold
        produces.
        """
        if other.first_index < self.first_index:
            self.first_index = other.first_index
            self.execution_class = other.execution_class
        self.count += other.count
        self.commits += other.commits
        self.solved += other.solved
        for value, count in other.last_counts.items():
            self.last_counts[value] = self.last_counts.get(value, 0) + count
        self.n_last += other.n_last
        for value, count in other.latency_counts.items():
            self.latency_counts[value] = self.latency_counts.get(value, 0) + count
        self.n_latencies += other.n_latencies
        self.sum_messages += other.sum_messages
        self.sum_messages_sent += other.sum_messages_sent
        for _, attr in _PROPERTIES:
            self.all_held[attr] = self.all_held[attr] and other.all_held[attr]

    def held_label(self) -> str:
        return "".join(label for label, attr in _PROPERTIES if self.all_held[attr])

    def row(self) -> Dict[str, Any]:
        protocol, n, f, delay, fault, votes, workload = self.key[:7]
        row = {
            "protocol": protocol,
            "n": n,
            "f": f,
            "delay": delay,
            "fault": fault,
            "votes": votes,
            "workload": workload,
            "trials": self.count,
            "class": self.execution_class,
            "commit_rate": round(self.commits / self.count, 6),
            "solved_rate": round(self.solved / self.count, 6),
            "mean_delays": _round_opt(
                _digest_sum(self.last_counts) / self.n_last if self.n_last else None
            ),
            "max_delays": max(self.last_counts) if self.last_counts else None,
            "p50_latency": _round_opt(
                _digest_percentile(self.latency_counts, self.n_latencies, 50)
            ),
            "p99_latency": _round_opt(
                _digest_percentile(self.latency_counts, self.n_latencies, 99)
            ),
            "mean_messages": _round_opt(self.sum_messages / self.count),
            "mean_messages_sent": _round_opt(self.sum_messages_sent / self.count),
            "properties": self.held_label(),
        }
        if len(self.key) > 7:
            # schedule-explored cells: name the strategy and count violations
            # (trials where at least one of A/V/T failed to hold)
            row["schedule"] = self.key[7]
            row["violations"] = self.count - self.solved
        return row


@dataclass
class SweepResult:
    """All trials of one sweep plus how the sweep was executed."""

    trials: List[TrialResult]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.trials = sorted(self.trials, key=lambda t: t.index)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def errors(self) -> List[TrialResult]:
        return [t for t in self.trials if t.error is not None]

    def select(self, **criteria: Any) -> List[TrialResult]:
        """Trials whose attributes match all keyword criteria.

        >>> sweep.select(protocol="INBAC", fault_label="failure-free")
        """
        out = []
        for trial in self.trials:
            if all(getattr(trial, attr) == wanted for attr, wanted in criteria.items()):
                out.append(trial)
        return out

    def trial_rows(self) -> List[Dict[str, Any]]:
        return [t.as_row() for t in self.trials]

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def groups(self) -> Dict[GroupKey, List[TrialResult]]:
        """Trials grouped by grid coordinates (all seeds of one cell together)."""
        grouped: Dict[GroupKey, List[TrialResult]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.key(), []).append(trial)
        return grouped

    def aggregate_rows(self) -> List[Dict[str, Any]]:
        """One row per grid cell, averaged over seeds — ready for render_table.

        Row order and contents are a pure function of the trial list, so a
        parallel sweep aggregates identically to a serial one.  The rows are
        built by folding each cell's trials (in index order) through the same
        :class:`CellAccumulator` the streaming ``mode="aggregate"`` path uses,
        which is what makes the two modes byte-identical.
        """
        accumulators: List[CellAccumulator] = []
        for key, trials in sorted(self.groups().items(), key=lambda kv: kv[1][0].index):
            acc = CellAccumulator(
                key=key,
                first_index=trials[0].index,
                execution_class=trials[0].execution_class,
            )
            for trial in trials:
                acc.fold(trial)
            accumulators.append(acc)
        return _cell_rows(accumulators)

    def robustness_rows(self) -> List[Dict[str, Any]]:
        """Per protocol, which properties held in *every* trial of each class.

        The paper's quantifier ("every crash-failure execution satisfies X"),
        computed across whatever fault plans the sweep ran: one row per
        protocol with one ``A``/``V``/``T`` label per execution class seen.
        """
        fold = RobustnessFold()
        for trial in self.trials:
            fold.fold(trial)
        return fold.rows()

    # ------------------------------------------------------------------ #
    # reproducibility
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Canonical digest of all trial data (excludes execution metadata).

        Two sweeps of the same grid — serial or parallel, any worker count —
        must produce the same fingerprint; determinism tests assert exactly
        that.
        """
        canonical = json.dumps(
            [_canonical_trial(t) for t in self.trials],
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def aggregate_fingerprint(self) -> str:
        """Digest of the aggregate rows only (what reports are built from)."""
        return _rows_fingerprint(self.aggregate_rows())


class RobustnessFold:
    """Streaming robustness summary: protocol x execution class -> A/V/T fold."""

    def __init__(self) -> None:
        #: protocol -> execution class -> {property attr: held in every trial}
        self._held: Dict[str, Dict[str, Dict[str, bool]]] = {}
        self._classes_seen: List[str] = []

    def fold(self, trial: "TrialResult") -> None:
        per_class = self._held.setdefault(trial.protocol, {})
        flags = per_class.get(trial.execution_class)
        if flags is None:
            flags = per_class[trial.execution_class] = {
                attr: True for _, attr in _PROPERTIES
            }
            if trial.execution_class not in self._classes_seen:
                self._classes_seen.append(trial.execution_class)
        for _, attr in _PROPERTIES:
            if not getattr(trial, attr):
                flags[attr] = False

    def merge(self, other: "RobustnessFold") -> None:
        """AND-combine another fold (exact: the quantifier is associative)."""
        for cls in other._classes_seen:
            if cls not in self._classes_seen:
                self._classes_seen.append(cls)
        for protocol, per_class in other._held.items():
            mine = self._held.setdefault(protocol, {})
            for cls, flags in per_class.items():
                existing = mine.get(cls)
                if existing is None:
                    mine[cls] = dict(flags)
                else:
                    for _, attr in _PROPERTIES:
                        existing[attr] = existing[attr] and flags[attr]

    def rows(self) -> List[Dict[str, Any]]:
        rows = []
        for protocol in sorted(self._held):
            row: Dict[str, Any] = {"protocol": protocol}
            for cls in self._classes_seen:
                flags = self._held[protocol].get(cls)
                if flags is None:
                    row[cls] = "-"
                else:
                    row[cls] = "".join(
                        label for label, attr in _PROPERTIES if flags[attr]
                    )
            rows.append(row)
        return rows


class SweepAggregate:
    """Aggregate-only view of a sweep: per-cell accumulators, no trial list.

    The engine's streaming mode folds every :class:`TrialResult` into this
    object *in trial-index order* and discards it, so a million-trial sweep
    holds one accumulator per grid cell instead of a million records.  The
    shapes exposed (``aggregate_rows`` / ``robustness_rows`` /
    ``aggregate_fingerprint``) match :class:`SweepResult` byte-for-byte on the
    same grid and seeds; per-trial views (``trials``, ``select``,
    ``fingerprint``) intentionally do not exist here.

    Error handling: failed trials are folded into the aggregates exactly as
    the in-memory path would (they carry default measurements), and the first
    few tracebacks are kept in ``sample_errors`` for diagnosis.
    """

    #: how many failing-trial tracebacks to retain
    MAX_SAMPLE_ERRORS = 5

    def __init__(self) -> None:
        self._cells: Dict[GroupKey, CellAccumulator] = {}
        self._robustness = RobustnessFold()
        self.meta: Dict[str, Any] = {}
        self.total_trials = 0
        self.error_count = 0
        self.sample_errors: List[str] = []

    def __len__(self) -> int:
        return self.total_trials

    def fold(self, trial: TrialResult) -> None:
        """Fold one trial into the aggregates (called in trial-index order)."""
        self.total_trials += 1
        if trial.error is not None:
            self.error_count += 1
            if len(self.sample_errors) < self.MAX_SAMPLE_ERRORS:
                self.sample_errors.append(trial.error)
        key = trial.key()
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = CellAccumulator(
                key=key, first_index=trial.index, execution_class=trial.execution_class
            )
        cell.fold(trial)
        self._robustness.fold(trial)

    def merge(self, other: "SweepAggregate") -> None:
        """Combine a partial aggregate (one worker's contiguous trial chunk).

        The engine's chunk fold calls this once per chunk *in trial-index
        order*; because every cell statistic is order-independent (see
        :meth:`CellAccumulator.merge`), the merged aggregate is byte-identical
        to folding the same trials one at a time.
        """
        self.total_trials += other.total_trials
        self.error_count += other.error_count
        for error in other.sample_errors:
            if len(self.sample_errors) >= self.MAX_SAMPLE_ERRORS:
                break
            self.sample_errors.append(error)
        for key, cell in other._cells.items():
            mine = self._cells.get(key)
            if mine is None:
                self._cells[key] = cell
            else:
                mine.merge(cell)
        self._robustness.merge(other._robustness)

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def aggregate_rows(self) -> List[Dict[str, Any]]:
        """Identical rows (and row order) to ``SweepResult.aggregate_rows``."""
        cells = sorted(self._cells.values(), key=lambda cell: cell.first_index)
        return _cell_rows(cells)

    def robustness_rows(self) -> List[Dict[str, Any]]:
        return self._robustness.rows()

    def aggregate_fingerprint(self) -> str:
        """Digest of the aggregate rows (comparable across execution modes)."""
        return _rows_fingerprint(self.aggregate_rows())


def _cell_rows(cells: List[CellAccumulator]) -> List[Dict[str, Any]]:
    """Render cell accumulators to rows, harmonising the schedule columns.

    A grid mixing unexplored cells (``schedules=[None, ...]``) with explored
    ones would otherwise produce heterogeneous rows, and column-driven
    renderers (``render_table`` keys off the first row) would drop the
    schedule/violations columns entirely.  Grids without any schedules axis
    keep their exact historical rows — and fingerprints — byte for byte.
    """
    rows = [cell.row() for cell in cells]
    if any(len(cell.key) > 7 for cell in cells):
        for cell, row in zip(cells, rows):
            if "schedule" not in row:
                row["schedule"] = "-"
                row["violations"] = cell.count - cell.solved
    return rows


def _rows_fingerprint(rows: List[Dict[str, Any]]) -> str:
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_trial(trial: TrialResult) -> Dict[str, Any]:
    data = asdict(trial)
    # dict keys become strings in JSON; make that explicit and ordered
    data["decisions"] = {str(k): v for k, v in sorted(trial.decisions.items())}
    data["crashes"] = {str(k): v for k, v in sorted(trial.crashes.items())}
    if data.get("schedule_label") == "-":
        # absent for unexplored trials, keeping pre-schedule-axis sweep
        # fingerprints byte-identical
        del data["schedule_label"]
    return data


def _round_opt(value: Optional[float], digits: int = 6) -> Optional[float]:
    return None if value is None else round(value, digits)
