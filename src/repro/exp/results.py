"""Structured sweep results and their deterministic aggregation.

Workers return :class:`TrialResult` records — plain picklable data, no traces
and no live process objects — and :class:`SweepResult` turns the flat trial
list into the shapes the rest of the repo consumes: per-coordinate aggregate
rows for :func:`repro.analysis.render.render_table`, robustness summaries in
the style of Table 5's bottom row, and a canonical fingerprint used to assert
that two sweeps (e.g. a serial and a parallel run of the same grid) produced
byte-identical aggregates.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

GroupKey = Tuple[str, int, int, str, str, str]

#: property label + the TrialResult attribute that records whether it held
_PROPERTIES = (("A", "agreement"), ("V", "validity"), ("T", "termination"))


def held_label(trials: Iterable["TrialResult"]) -> str:
    """Compact ``"AVT"``-style label of the properties that held in *every* trial."""
    trials = list(trials)
    return "".join(
        label
        for label, attr in _PROPERTIES
        if all(getattr(t, attr) for t in trials)
    )


@dataclass
class TrialResult:
    """Everything measured in one simulated execution, ready to pickle.

    ``decision_latencies`` holds each deciding process' decision time in
    units of the delay bound ``U``, sorted ascending — the raw material for
    latency distributions across a sweep.
    """

    index: int
    protocol: str
    n: int
    f: int
    delay_label: str
    fault_label: str
    votes_label: str
    base_seed: int
    derived_seed: int
    execution_class: str = "failure-free"
    decisions: Dict[int, Any] = field(default_factory=dict)
    decision_latencies: List[float] = field(default_factory=list)
    first_decision: Optional[float] = None
    last_decision: Optional[float] = None
    messages_total: int = 0
    messages_main: int = 0
    messages_consensus: int = 0
    messages_until_last_decision: int = 0
    agreement: bool = True
    validity: bool = True
    termination: bool = True
    crashes: Dict[int, float] = field(default_factory=dict)
    error: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> GroupKey:
        return (
            self.protocol,
            self.n,
            self.f,
            self.delay_label,
            self.fault_label,
            self.votes_label,
        )

    @property
    def decided(self) -> int:
        return len(self.decisions)

    @property
    def all_committed(self) -> bool:
        return bool(self.decisions) and set(self.decisions.values()) == {1}

    def solves_nbac(self) -> bool:
        return self.agreement and self.validity and self.termination

    def held_label(self) -> str:
        """Compact ``"AVT"``-style label of the properties that held."""
        return held_label([self])

    def as_row(self) -> Dict[str, Any]:
        """One flat dict per trial (render_table- and JSON-friendly)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "delay": self.delay_label,
            "fault": self.fault_label,
            "votes": self.votes_label,
            "seed": self.base_seed,
            "class": self.execution_class,
            "decided": self.decided,
            "outcome": "commit" if self.all_committed else
                       ("abort" if self.decisions and set(self.decisions.values()) == {0}
                        else "mixed/none"),
            "delays": self.last_decision,
            "messages": self.messages_until_last_decision,
            "messages_sent": self.messages_total,
            "properties": self.held_label(),
        }


def _percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class SweepResult:
    """All trials of one sweep plus how the sweep was executed."""

    trials: List[TrialResult]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.trials = sorted(self.trials, key=lambda t: t.index)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def errors(self) -> List[TrialResult]:
        return [t for t in self.trials if t.error is not None]

    def select(self, **criteria: Any) -> List[TrialResult]:
        """Trials whose attributes match all keyword criteria.

        >>> sweep.select(protocol="INBAC", fault_label="failure-free")
        """
        out = []
        for trial in self.trials:
            if all(getattr(trial, attr) == wanted for attr, wanted in criteria.items()):
                out.append(trial)
        return out

    def trial_rows(self) -> List[Dict[str, Any]]:
        return [t.as_row() for t in self.trials]

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def groups(self) -> Dict[GroupKey, List[TrialResult]]:
        """Trials grouped by grid coordinates (all seeds of one cell together)."""
        grouped: Dict[GroupKey, List[TrialResult]] = {}
        for trial in self.trials:
            grouped.setdefault(trial.key(), []).append(trial)
        return grouped

    def aggregate_rows(self) -> List[Dict[str, Any]]:
        """One row per grid cell, averaged over seeds — ready for render_table.

        Row order and contents are a pure function of the trial list, so a
        parallel sweep aggregates identically to a serial one.
        """
        rows: List[Dict[str, Any]] = []
        for key, trials in sorted(self.groups().items(), key=lambda kv: kv[1][0].index):
            protocol, n, f, delay, fault, votes = key
            latencies = sorted(
                lat for t in trials for lat in t.decision_latencies
            )
            last_decisions = [t.last_decision for t in trials if t.last_decision is not None]
            rows.append(
                {
                    "protocol": protocol,
                    "n": n,
                    "f": f,
                    "delay": delay,
                    "fault": fault,
                    "votes": votes,
                    "trials": len(trials),
                    "class": trials[0].execution_class,
                    "commit_rate": round(
                        sum(1 for t in trials if t.all_committed) / len(trials), 6
                    ),
                    "solved_rate": round(
                        sum(1 for t in trials if t.solves_nbac()) / len(trials), 6
                    ),
                    "mean_delays": _round_opt(_mean(last_decisions)),
                    "max_delays": max(last_decisions) if last_decisions else None,
                    "p50_latency": _round_opt(_percentile(latencies, 50)),
                    "p99_latency": _round_opt(_percentile(latencies, 99)),
                    "mean_messages": _round_opt(
                        _mean([t.messages_until_last_decision for t in trials])
                    ),
                    "mean_messages_sent": _round_opt(
                        _mean([t.messages_total for t in trials])
                    ),
                    "properties": held_label(trials),
                }
            )
        return rows

    def robustness_rows(self) -> List[Dict[str, Any]]:
        """Per protocol, which properties held in *every* trial of each class.

        The paper's quantifier ("every crash-failure execution satisfies X"),
        computed across whatever fault plans the sweep ran: one row per
        protocol with one ``A``/``V``/``T`` label per execution class seen.
        """
        by_protocol: Dict[str, Dict[str, List[TrialResult]]] = {}
        classes_seen: List[str] = []
        for trial in self.trials:
            per_class = by_protocol.setdefault(trial.protocol, {})
            per_class.setdefault(trial.execution_class, []).append(trial)
            if trial.execution_class not in classes_seen:
                classes_seen.append(trial.execution_class)
        rows = []
        for protocol in sorted(by_protocol):
            row: Dict[str, Any] = {"protocol": protocol}
            for cls in classes_seen:
                trials = by_protocol[protocol].get(cls, [])
                row[cls] = held_label(trials) if trials else "-"
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # reproducibility
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Canonical digest of all trial data (excludes execution metadata).

        Two sweeps of the same grid — serial or parallel, any worker count —
        must produce the same fingerprint; determinism tests assert exactly
        that.
        """
        canonical = json.dumps(
            [_canonical_trial(t) for t in self.trials],
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def aggregate_fingerprint(self) -> str:
        """Digest of the aggregate rows only (what reports are built from)."""
        canonical = json.dumps(
            self.aggregate_rows(), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_trial(trial: TrialResult) -> Dict[str, Any]:
    data = asdict(trial)
    # dict keys become strings in JSON; make that explicit and ordered
    data["decisions"] = {str(k): v for k, v in sorted(trial.decisions.items())}
    data["crashes"] = {str(k): v for k, v in sorted(trial.crashes.items())}
    return data


def _mean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def _round_opt(value: Optional[float], digits: int = 6) -> Optional[float]:
    return None if value is None else round(value, digits)
