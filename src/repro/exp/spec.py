"""Declarative experiment grids: what to run, not how to run it.

A :class:`GridSpec` names one value set per experimental axis —

* **protocol** — registry names, process classes, or ``(label, class)`` pairs;
* **system size** — ``(n, f)`` pairs;
* **delay model** — factories so each trial gets a *fresh*, per-trial-seeded
  model (stateful models such as :class:`~repro.sim.network.UniformDelay`
  carry an RNG and must never be shared between trials);
* **fault plan** — plans or plan factories, rebuilt per trial because
  :class:`~repro.sim.faults.DelayRule` tracks match counts internally;
* **votes** — named vote patterns, functions of ``n``;
* **workload** — optional :mod:`repro.db` transaction batteries; a trial with
  a workload runs a simulated cluster (``n`` partitions, the protocol axis
  embedded as the commit protocol) instead of a bare protocol execution;
* **schedule** — optional schedule-exploration strategies (see
  :mod:`repro.explore`): a trial carrying a :class:`ScheduleSpec` runs under
  a schedule controller built from ``(strategy, params, derived seed)``
  instead of strict timestamp order;
* **seed** — base seeds, one full grid repetition each

— and expands their cross product into a flat list of :class:`TrialSpec`
records.  Each trial carries a *derived* seed computed from the base seed and
the trial's coordinates, so the seed a trial uses is a pure function of what
the trial *is*, never of where in the sweep (or on which worker process) it
runs.  That property is what makes parallel and serial sweeps bit-identical.

For batteries that are not cross products (e.g. hand-picked scenario lists
where votes and fault plan vary together), build :class:`TrialSpec` lists
directly with :func:`make_cases`.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import inspect
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan
from repro.sim.network import DelayModel
from repro.sim.trace import TRACE_LEVELS

# --------------------------------------------------------------------------- #
# vote patterns
# --------------------------------------------------------------------------- #


def all_yes(n: int) -> List[int]:
    """Every process votes 1 (the nice-execution vote vector)."""
    return [1] * n


def all_no(n: int) -> List[int]:
    return [0] * n


class _OneNoPattern:
    """Everyone votes 1 except one process (picklable, unlike a closure)."""

    __slots__ = ("pid",)

    def __init__(self, pid: int):
        self.pid = pid

    def __call__(self, n: int) -> List[int]:
        if not 1 <= self.pid <= n:
            raise ConfigurationError(f"one_no({self.pid}) used with n={n}")
        votes = [1] * n
        votes[self.pid - 1] = 0
        return votes


def one_no(pid: int) -> Callable[[int], List[int]]:
    """Everyone votes 1 except process ``pid``."""
    return _OneNoPattern(pid)


class _FixedVotesPattern:
    """A literal vote vector (picklable, unlike a closure)."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence[int]):
        self.values = tuple(values)

    def __call__(self, n: int) -> List[int]:
        if len(self.values) != n:
            raise ConfigurationError(
                f"fixed vote vector has {len(self.values)} entries but n={n}"
            )
        return list(self.values)


def fixed_votes(values: Sequence[int]) -> Callable[[int], List[int]]:
    """A literal vote vector; only valid for the matching ``n``."""
    return _FixedVotesPattern(values)


class _WeightedVotesPattern:
    """Weighted random votes, drawn per trial from the trial's derived seed."""

    __slots__ = ("no_probability",)

    def __init__(self, no_probability: float):
        if not 0.0 <= no_probability <= 1.0:
            raise ConfigurationError(
                f"no_probability must be in [0, 1], got {no_probability}"
            )
        self.no_probability = no_probability

    def __call__(self, n: int, seed: int) -> List[int]:
        from repro.workloads.votes import random_votes

        return random_votes(n, no_probability=self.no_probability, seed=seed)


def mixed_votes(no_probability: float, label: Optional[str] = None) -> "VoteSpec":
    """A mixed-vote axis value: each trial draws a fresh weighted vote vector.

    The vector is a pure function of ``(n, derived seed)``, so a trial's votes
    are identical wherever (and however many times) it runs, while the seeds
    axis sweeps genuinely different vote mixes through one grid cell.
    """
    if label is None:
        label = f"mixed({no_probability:g})"
    return VoteSpec(label=label, seeded=_WeightedVotesPattern(no_probability))


# --------------------------------------------------------------------------- #
# axis specs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol column of the sweep."""

    label: str
    cls: type
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def protocol_kwargs(self) -> Dict[str, Any]:
        return dict(self.kwargs)


@dataclass(frozen=True)
class DelaySpec:
    """A named delay-model factory; called once per trial with the trial seed."""

    label: str
    factory: Callable[[int], DelayModel]


@dataclass(frozen=True)
class FaultSpec:
    """A named fault-plan factory; called once per trial (plans are stateful)."""

    label: str
    factory: Callable[[], FaultPlan]


@dataclass(frozen=True)
class VoteSpec:
    """A named vote pattern: a function of ``n``, or of ``(n, trial seed)``.

    Exactly one of ``pattern`` (deterministic in ``n``; resolvable once per
    grid cell) or ``seeded`` (drawn per trial from the derived seed, e.g.
    weighted random vote mixes — see :func:`mixed_votes`) must be set.
    """

    label: str
    pattern: Optional[Callable[[int], List[int]]] = None
    seeded: Optional[Callable[[int, int], List[int]]] = None

    def __post_init__(self) -> None:
        if (self.pattern is None) == (self.seeded is None):
            raise ConfigurationError(
                f"VoteSpec {self.label!r} needs exactly one of pattern= or seeded="
            )

    @property
    def per_trial(self) -> bool:
        """Whether the vote vector depends on the trial seed."""
        return self.seeded is not None

    def resolve(self, n: int, seed: int) -> List[int]:
        if self.seeded is not None:
            return self.seeded(n, seed)
        return self.pattern(n)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named transaction-workload factory for :mod:`repro.db` cluster trials.

    A trial carrying a workload runs a *cluster* battery instead of a bare
    protocol execution: ``n`` becomes the partition count, ``f`` the embedded
    commit protocol's resilience, and ``factory(n, seed)`` produces the
    transaction list (rebuilt per trial so workloads can scale with the
    partition count and reseed with the trial).  The votes axis does not apply
    to cluster trials — votes come from lock conflicts inside the partitions.
    """

    label: str
    factory: Callable[[int, int], Sequence[Any]]


@dataclass(frozen=True)
class ScheduleSpec:
    """A named schedule-exploration strategy for the ``schedules`` axis.

    Pure plain data — a registry strategy name plus parameter pairs — so a
    grid carrying schedules pickles under any multiprocessing start method.
    ``build(seed)`` resolves the name against
    :mod:`repro.explore.strategies` and returns a fresh controller seeded
    with the trial's derived seed (controllers are single-use).
    """

    label: str
    strategy: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def strategy_params(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self, seed: int):
        # resolved lazily: repro.explore sits above the sim layer and is only
        # needed by trials that actually explore
        from repro.explore.strategies import make_strategy

        return make_strategy(self.strategy, seed=seed, **dict(self.params))


# Accepted shorthand for each axis (normalised by the coerce_* helpers below).
ProtocolLike = Union[str, type, Tuple[str, type], ProtocolSpec]
DelayLike = Union[None, str, DelayModel, Tuple[str, Callable[..., DelayModel]], DelaySpec]
FaultLike = Union[None, str, FaultPlan, Tuple[str, Union[FaultPlan, Callable[[], FaultPlan]]], FaultSpec]
VoteLike = Union[str, Tuple[str, Callable[[int], List[int]]], VoteSpec]
WorkloadLike = Union[None, str, Tuple[str, Any], WorkloadSpec]
ScheduleLike = Union[None, str, Tuple[str, str], Tuple[str, str, Dict[str, Any]], ScheduleSpec]

_NAMED_PATTERNS: Dict[str, Callable[[int], List[int]]] = {
    "all-yes": all_yes,
    "all-no": all_no,
}


def coerce_protocol(value: ProtocolLike) -> ProtocolSpec:
    if isinstance(value, ProtocolSpec):
        return value
    if isinstance(value, str):
        # resolved against the registry lazily to avoid import cycles
        from repro.protocols.registry import get_protocol

        info = get_protocol(value)
        return ProtocolSpec(label=value, cls=info.cls)
    if isinstance(value, tuple):
        label, cls = value
        return ProtocolSpec(label=label, cls=cls)
    if isinstance(value, type):
        return ProtocolSpec(label=getattr(value, "protocol_name", value.__name__), cls=value)
    raise ConfigurationError(f"cannot interpret {value!r} as a protocol axis value")


class _TemplateDelayFactory:
    """Per-trial deep copy of a delay-model instance, reseeded with the trial.

    A model instance on the axis must be deep-copied per trial so RNG state
    is never shared, then reseeded with the trial seed — otherwise every seed
    on the seeds axis would replay the identical delay sequence.  Picklable
    whenever the template model is.
    """

    __slots__ = ("template",)

    def __init__(self, template: DelayModel):
        self.template = template

    def __call__(self, seed: int) -> DelayModel:
        model = copy.deepcopy(self.template)
        rng = getattr(model, "_rng", None)
        if isinstance(rng, random.Random):
            rng.seed(seed)
        return model


def coerce_delay(value: DelayLike) -> DelaySpec:
    # resolved lazily to keep module import order simple
    from repro.exp.registry import NamedDelayFactory, named_delay

    if isinstance(value, DelaySpec):
        return value
    if value is None:
        return DelaySpec(label="U=1", factory=NamedDelayFactory("fixed", {}))
    if isinstance(value, str):
        # a registry name: always spawn-safe (see repro.exp.registry)
        return named_delay(value)
    if isinstance(value, tuple):
        if len(value) == 3:
            label, name, params = value
            if not isinstance(name, str):
                raise ConfigurationError(
                    f"cannot interpret {value!r} as a delay axis value: a "
                    f"3-tuple must be (label, registry_name, params)"
                )
            return named_delay(name, label=label, **dict(params))
        label, factory = value
        if isinstance(factory, str):
            return named_delay(factory, label=label)
        return DelaySpec(label=label, factory=_seed_aware(factory))
    if hasattr(value, "delay") and hasattr(value, "bound"):
        return DelaySpec(
            label=type(value).__name__, factory=_TemplateDelayFactory(value)
        )
    raise ConfigurationError(f"cannot interpret {value!r} as a delay axis value")


class _SeedAwareFactory:
    """Adapter letting a factory take the trial seed or no argument at all.

    Picklable whenever the wrapped factory is (a lambda still is not — use a
    registry name for spawn-safe grids).
    """

    __slots__ = ("factory", "takes_seed")

    def __init__(self, factory: Callable[..., DelayModel], takes_seed: bool):
        self.factory = factory
        self.takes_seed = takes_seed

    def __call__(self, seed: int) -> DelayModel:
        return self.factory(seed) if self.takes_seed else self.factory()


def _seed_aware(factory: Callable[..., DelayModel]) -> Callable[[int], DelayModel]:
    """Wrap a factory so it may take the trial seed or no argument at all.

    Arity is decided by signature inspection, not by catching TypeError — a
    TypeError raised *inside* the factory body must propagate as-is rather
    than trigger a misleading second, argument-less call.
    """
    try:
        takes_seed = any(
            p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
            for p in inspect.signature(factory).parameters.values()
        )
    except (TypeError, ValueError):  # builtins / C callables without signatures
        takes_seed = True
    return _SeedAwareFactory(factory, takes_seed)


def _fresh_plan(plan: FaultPlan) -> FaultPlan:
    """Rebuild a plan with pristine DelayRules (their match counters reset)."""
    rules = [dataclasses.replace(rule) for rule in plan.delay_rules]
    return FaultPlan(
        crashes=dict(plan.crashes),
        delay_rules=rules,
        description=plan.description,
        recoveries=dict(plan.recoveries),
    )


class _PlanTemplateFactory:
    """Per-trial fresh copy of a literal fault plan.

    Picklable whenever the plan is (plans whose DelayRules carry lambda
    predicates still are not — those need the fork start method).
    """

    __slots__ = ("plan",)

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def __call__(self) -> FaultPlan:
        return _fresh_plan(self.plan)


def coerce_fault(value: FaultLike) -> FaultSpec:
    # resolved lazily to keep module import order simple
    from repro.exp.registry import named_fault

    if isinstance(value, FaultSpec):
        return value
    if value is None:
        return FaultSpec(label="failure-free", factory=FaultPlan.failure_free)
    if isinstance(value, str):
        # a registry name ("failure-free", "crash", "rejoin", ...):
        # always spawn-safe (see repro.exp.registry)
        return named_fault(value)
    if isinstance(value, FaultPlan):
        label = value.description or "fault-plan"
        return FaultSpec(label=label, factory=_PlanTemplateFactory(value))
    if isinstance(value, tuple):
        if len(value) == 3:
            label, name, params = value
            if not isinstance(name, str) or not isinstance(params, dict):
                raise ConfigurationError(
                    f"cannot interpret {value!r} as a fault axis value: a "
                    f"3-tuple must be (label, registry_name, params_dict)"
                )
            return named_fault(name, label=label, **params)
        label, plan_or_factory = value
        if isinstance(plan_or_factory, FaultPlan):
            return FaultSpec(label=label, factory=_PlanTemplateFactory(plan_or_factory))
        if plan_or_factory is None:
            return FaultSpec(label=label, factory=FaultPlan.failure_free)
        if isinstance(plan_or_factory, str):
            return named_fault(plan_or_factory, label=label)
        return FaultSpec(label=label, factory=plan_or_factory)
    raise ConfigurationError(f"cannot interpret {value!r} as a fault axis value")


def coerce_votes(value: VoteLike) -> VoteSpec:
    if isinstance(value, VoteSpec):
        return value
    if isinstance(value, str):
        if value in _NAMED_PATTERNS:
            return VoteSpec(label=value, pattern=_NAMED_PATTERNS[value])
        # parameterised registry names, always spawn-safe:
        #   "one-no:3"    -> everyone votes 1 except P3
        #   "mixed:0.25"  -> per-trial weighted random votes, P(no) = 0.25
        if ":" in value:
            name, _, arg = value.partition(":")
            try:
                if name == "one-no":
                    return VoteSpec(label=value, pattern=_OneNoPattern(int(arg)))
                if name == "mixed":
                    return VoteSpec(
                        label=value, seeded=_WeightedVotesPattern(float(arg))
                    )
            except ValueError as exc:
                raise ConfigurationError(
                    f"malformed vote pattern {value!r}: {exc}"
                ) from None
        known = ", ".join(sorted(_NAMED_PATTERNS) + ["one-no:<pid>", "mixed:<p>"])
        raise ConfigurationError(f"unknown vote pattern {value!r}; known: {known}")
    if isinstance(value, tuple):
        label, pattern = value
        if not callable(pattern):
            pattern = fixed_votes(pattern)
        return VoteSpec(label=label, pattern=pattern)
    raise ConfigurationError(f"cannot interpret {value!r} as a votes axis value")


class _VerbatimWorkload:
    """A fixed transaction list replayed identically in every trial."""

    __slots__ = ("transactions",)

    def __init__(self, transactions: Sequence[Any]):
        self.transactions = list(transactions)

    def __call__(self, n: int, seed: int) -> Sequence[Any]:
        return self.transactions


def _workload_factory(source: Any) -> Callable[[int, int], Sequence[Any]]:
    """Normalise a workload source into a ``factory(n, seed)`` callable.

    Accepted sources: a factory callable, a
    :class:`~repro.workloads.transactions.TransactionWorkload`, or a plain
    transaction sequence (the latter two are replayed verbatim per trial).
    """
    if callable(source):
        return source
    return _VerbatimWorkload(getattr(source, "transactions", source))


def coerce_workload(value: WorkloadLike) -> Optional[WorkloadSpec]:
    if value is None:
        return None
    if isinstance(value, WorkloadSpec):
        return value
    if isinstance(value, str):
        # a registry name: always spawn-safe (see repro.exp.registry)
        from repro.exp.registry import named_workload

        return named_workload(value)
    if isinstance(value, tuple):
        if len(value) == 3:
            label, name, params = value
            if not isinstance(name, str) or not isinstance(params, dict):
                raise ConfigurationError(
                    f"cannot interpret {value!r} as a workload axis value: a "
                    f"3-tuple must be (label, registry_name, params_dict)"
                )
            from repro.exp.registry import named_workload

            return named_workload(name, label=label, **params)
        label, source = value
        if isinstance(source, str):
            from repro.exp.registry import named_workload

            return named_workload(source, label=label)
        return WorkloadSpec(label=label, factory=_workload_factory(source))
    raise ConfigurationError(f"cannot interpret {value!r} as a workload axis value")


def coerce_schedule(value: ScheduleLike) -> Optional[ScheduleSpec]:
    """Normalise a schedules-axis value.

    Accepted shorthand: ``None`` (strict timestamp order — the default
    scheduling, no controller attached), a strategy name string, a
    ``(label, strategy)`` pair, or ``(label, strategy, params)`` with a
    plain-data params dict.
    """
    if value is None:
        return None
    if isinstance(value, ScheduleSpec):
        return value
    if isinstance(value, str):
        return ScheduleSpec(label=value, strategy=value)
    if isinstance(value, tuple):
        if len(value) == 2:
            label, strategy = value
            params: Dict[str, Any] = {}
        elif len(value) == 3:
            label, strategy, params = value
        else:
            raise ConfigurationError(
                f"cannot interpret {value!r} as a schedules axis value"
            )
        return ScheduleSpec(
            label=label, strategy=strategy, params=tuple(sorted(dict(params).items()))
        )
    raise ConfigurationError(f"cannot interpret {value!r} as a schedules axis value")


# --------------------------------------------------------------------------- #
# trials
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TrialSpec:
    """One fully-determined simulation run of a sweep.

    A trial with ``workload=None`` runs a bare protocol execution; a trial
    carrying a :class:`WorkloadSpec` runs a :mod:`repro.db` cluster battery
    with ``n`` partitions and the protocol embedded as the commit protocol.
    """

    index: int
    protocol: ProtocolSpec
    n: int
    f: int
    delay: DelaySpec
    fault: FaultSpec
    votes: VoteSpec
    base_seed: int
    max_time: float = 500.0
    workload: Optional[WorkloadSpec] = None
    #: ``None`` defers to the engine (aggregate-mode sweeps run "counters",
    #: everything else "full"); an explicit level pins this trial.  Not part
    #: of :meth:`key`, so the derived seed — and therefore every measurement
    #: — is identical across trace levels.
    trace_level: Optional[str] = None
    #: optional schedule-exploration strategy (see :mod:`repro.explore`).
    #: Like ``trace_level``, deliberately *not* part of :meth:`key`: the
    #: derived seed fixes the underlying execution (votes, delays, faults),
    #: and the schedule only perturbs its event order — so strategies compare
    #: apples to apples, and a stored schedule replays against the same seed.
    schedule: Optional[ScheduleSpec] = None

    @property
    def workload_label(self) -> str:
        return self.workload.label if self.workload is not None else "-"

    @property
    def schedule_label(self) -> str:
        return self.schedule.label if self.schedule is not None else "-"

    def key(self) -> Tuple[str, int, int, str, str, str, str]:
        """The trial's grid coordinates (everything except seed and schedule)."""
        return (
            self.protocol.label,
            self.n,
            self.f,
            self.delay.label,
            self.fault.label,
            self.votes.label,
            self.workload_label,
        )

    @property
    def derived_seed(self) -> int:
        """Per-trial seed: a pure function of coordinates + base seed.

        Independent of trial order and of which worker runs the trial, which
        is what makes parallel sweeps reproduce serial ones exactly.
        """
        material = "|".join(str(part) for part in (self.base_seed, *self.key()))
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")


@dataclass
class GridSpec:
    """The cross product protocol x (n, f) x delay x fault x votes x workload x schedule x seed."""

    protocols: Sequence[ProtocolLike] = ()
    systems: Sequence[Tuple[int, int]] = ((5, 2),)
    delays: Sequence[DelayLike] = (None,)
    faults: Sequence[FaultLike] = (None,)
    votes: Sequence[VoteLike] = ("all-yes",)
    workloads: Sequence[WorkloadLike] = (None,)
    schedules: Sequence[ScheduleLike] = (None,)
    seeds: Sequence[int] = (0,)
    max_time: float = 500.0
    #: ``None`` (default) lets the engine pick per sweep mode: "counters"
    #: for aggregate-mode sweeps, "full" otherwise.  Set explicitly to pin.
    trace_level: Optional[str] = None
    #: alias for ``votes`` matching the mixed-vote-workload vocabulary
    #: (``vote_pattern=[mixed_votes(0.3)]``); exactly one of the two may be
    #: customised.
    vote_pattern: Optional[Sequence[VoteLike]] = None

    def __post_init__(self) -> None:
        if self.trace_level is not None and self.trace_level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"unknown trace_level {self.trace_level!r}; "
                f"expected one of {TRACE_LEVELS} (or None to defer to the engine)"
            )
        if self.vote_pattern is not None:
            if tuple(self.votes) != ("all-yes",):
                raise ConfigurationError(
                    "give either votes= or vote_pattern=, not both "
                    "(vote_pattern is an alias for the votes axis)"
                )
            self.votes = tuple(self.vote_pattern)
        if not self.protocols:
            # registry-driven default: sweep every implemented protocol
            from repro.protocols.registry import protocol_names

            self.protocols = tuple(protocol_names())
        self._protocol_specs = [coerce_protocol(p) for p in self.protocols]
        self._delay_specs = [coerce_delay(d) for d in self.delays]
        self._fault_specs = [coerce_fault(fp) for fp in self.faults]
        self._vote_specs = [coerce_votes(v) for v in self.votes]
        self._workload_specs = [coerce_workload(w) for w in self.workloads]
        self._schedule_specs = [coerce_schedule(s) for s in self.schedules]
        schedule_labels = [s.label for s in self._schedule_specs if s is not None]
        if len(set(schedule_labels)) != len(schedule_labels):
            raise ConfigurationError(
                f"duplicate schedule labels in grid: {schedule_labels}"
            )
        for n, f in self.systems:
            if not 1 <= f <= n - 1:
                raise ConfigurationError(f"invalid system size (n={n}, f={f})")
        labels = [p.label for p in self._protocol_specs]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate protocol labels in grid: {labels}")
        # cluster trials derive their votes from lock conflicts, so crossing a
        # workload with a multi-valued votes axis would just replay identical
        # cluster runs under different vote labels — misleading, not useful.
        # (schedules x workloads, by contrast, is a supported grid: a cluster
        # trial carrying a ScheduleSpec runs under the schedule controller.)
        if any(w is not None for w in self._workload_specs) and len(self._vote_specs) > 1:
            workload_labels = [
                w.label for w in self._workload_specs if w is not None
            ]
            vote_labels = [v.label for v in self._vote_specs]
            raise ConfigurationError(
                f"unsupported axis combination: workloads={workload_labels!r} "
                f"cannot be crossed with the multi-valued votes axis "
                f"votes={vote_labels!r} — cluster trials derive their votes "
                f"from lock conflicts inside the partitions, so every vote "
                f"label would replay the identical cluster run; sweep the "
                f"votes axis in a separate, workload-free grid"
            )

    @property
    def size(self) -> int:
        return (
            len(self._protocol_specs)
            * len(self.systems)
            * len(self._delay_specs)
            * len(self._fault_specs)
            * len(self._vote_specs)
            * len(self._workload_specs)
            * len(self._schedule_specs)
            * len(self.seeds)
        )

    def trials(self) -> List[TrialSpec]:
        """Expand the grid into its flat, deterministically-ordered trial list."""
        out: List[TrialSpec] = []
        index = 0
        for protocol in self._protocol_specs:
            for n, f in self.systems:
                for delay in self._delay_specs:
                    for fault in self._fault_specs:
                        for votes in self._vote_specs:
                            for workload in self._workload_specs:
                                for schedule in self._schedule_specs:
                                    for seed in self.seeds:
                                        out.append(
                                            TrialSpec(
                                                index=index,
                                                protocol=protocol,
                                                n=n,
                                                f=f,
                                                delay=delay,
                                                fault=fault,
                                                votes=votes,
                                                base_seed=seed,
                                                max_time=self.max_time,
                                                workload=workload,
                                                trace_level=self.trace_level,
                                                schedule=schedule,
                                            )
                                        )
                                        index += 1
        return out


def make_cases(
    cases: Sequence[Dict[str, Any]],
    *,
    max_time: float = 500.0,
    base_seed: int = 0,
) -> List[TrialSpec]:
    """Build trials from explicit per-case dicts (for non-cross-product batteries).

    Each case dict may contain ``protocol``, ``n``, ``f``, ``delay``,
    ``fault``, ``votes``, ``seed`` and ``max_time``; missing entries fall back
    to the defaults above.  Example::

        trials = make_cases([
            {"protocol": "INBAC", "n": 5, "f": 2, "votes": ("one-no", [1, 1, 0, 1, 1])},
            {"protocol": "INBAC", "n": 5, "f": 2, "fault": ("crash P1", FaultPlan.crash(1))},
        ])
    """
    out: List[TrialSpec] = []
    for index, case in enumerate(cases):
        unknown = set(case) - {
            "protocol", "n", "f", "delay", "fault", "votes", "workload", "seed",
            "max_time", "trace_level", "schedule",
        }
        if unknown:
            raise ConfigurationError(f"unknown case keys: {sorted(unknown)}")
        trace_level = case.get("trace_level")
        if trace_level is not None and trace_level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"unknown trace_level {trace_level!r}; expected one of {TRACE_LEVELS}"
            )
        out.append(
            TrialSpec(
                index=index,
                protocol=coerce_protocol(case.get("protocol", "INBAC")),
                n=int(case.get("n", 5)),
                f=int(case.get("f", 2)),
                delay=coerce_delay(case.get("delay")),
                fault=coerce_fault(case.get("fault")),
                votes=coerce_votes(case.get("votes", "all-yes")),
                base_seed=int(case.get("seed", base_seed)),
                max_time=float(case.get("max_time", max_time)),
                workload=coerce_workload(case.get("workload")),
                trace_level=trace_level,
                schedule=coerce_schedule(case.get("schedule")),
            )
        )
    return out
