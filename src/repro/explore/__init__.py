"""repro.explore — adversarial schedule exploration with seeded replay.

The paper's claims are quantified over *all* admissible executions: every
message ordering the asynchronous network may produce and every crash point
the adversary may pick.  The rest of this repo *measures* hand-written
scenarios; this package *searches* the execution space:

* :mod:`repro.explore.schedule` — the decision vocabulary.  A schedule
  controller (hooked into :class:`repro.sim.runner.Scheduler`) may defer a
  delivery (extend its delay, possibly beyond the bound ``U``) or inject a
  crash before an event — exactly the adversary of the paper's model.  Every
  applied decision is recorded, and :class:`ScheduleTrace` serialises
  ``(strategy, seed, decisions)`` so any explored execution replays
  byte-identically (:meth:`repro.sim.trace.Trace.fingerprint`).
* :mod:`repro.explore.strategies` — pluggable, registry-named strategies:
  seeded random walks, bounded delay reordering, and crash-point enumeration
  at protocol phase boundaries.
* :mod:`repro.explore.driver` — :func:`explore` runs a schedule budget
  through :func:`repro.exp.run_sweep` (the ``schedules`` axis fans out over
  the existing process pool), checks every execution against
  :mod:`repro.core.properties` (optionally cell-aware), and greedily shrinks
  violating schedules to minimal counterexamples.  Passing a ``workload=``
  hunts *transaction anomalies* instead: every schedule drives a full
  :mod:`repro.db` cluster and is checked against the cluster-invariant
  battery (:mod:`repro.db.invariants` — atomicity, WAL-replay durability,
  lock safety); ``preset="cluster-anomaly"`` enumerates crash points over
  every partition and the client coordinator.
* :mod:`repro.explore.fold` — :class:`ViolationFold`, the bounded-memory
  reducer for huge exploration budgets (``reducer="violations"``).

Example
-------
>>> from repro.explore import explore
>>> report = explore("2PC", n=5, f=2, budget=100, strategy="random-walk")
>>> report.found                     # 2PC blocks when the coordinator dies
True
>>> print(report.violations[0].describe())      # doctest: +SKIP
violated: termination (crash-failure execution, seed 17)
explored schedule: 3 decisions
minimal counterexample: 1 decisions
  step 9: crash P1
"""

from repro.explore.driver import (
    CLUSTER_SAFETY_PROPS,
    EXPLORATION_PRESETS,
    ExplorationReport,
    Violation,
    explore,
    replay_trial,
    shrink_violation,
)
from repro.explore.fold import ViolationFold
from repro.explore.schedule import (
    DECISION_KINDS,
    ReplayController,
    ScheduleController,
    ScheduleTrace,
)
from repro.explore.strategies import (
    STRATEGIES,
    CrashPoint,
    DelayReorder,
    RandomWalk,
    TimestampOrder,
    make_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "CLUSTER_SAFETY_PROPS",
    "DECISION_KINDS",
    "EXPLORATION_PRESETS",
    "STRATEGIES",
    "CrashPoint",
    "DelayReorder",
    "ExplorationReport",
    "RandomWalk",
    "ReplayController",
    "ScheduleController",
    "ScheduleTrace",
    "TimestampOrder",
    "Violation",
    "ViolationFold",
    "explore",
    "make_strategy",
    "register_strategy",
    "replay_trial",
    "shrink_violation",
    "strategy_names",
]
