"""The exploration driver: search schedules, collect violations, shrink them.

:func:`explore` turns the reproduction from a *measuring* tool into a
*checking* one: instead of running hand-written fault plans, it searches the
space of admissible schedules — message-delivery reorderings and crash points
— for executions that violate the paper's Definition 1 properties.  The
search fans out over :func:`repro.exp.run_sweep`'s process pool (exploration
is just a sweep over the ``schedules`` axis), every explored schedule is
replayable from ``(strategy, seed, decisions)``, and each violating schedule
is greedily shrunk to a minimal counterexample by dropping decisions while
the violation persists.

Which violations count is cell-aware: by default all three properties are
required, but passing the protocol's problem cell (``cell=``, a
:class:`~repro.core.lattice.PropertyPair`) checks only the properties the
cell requires for each execution's class — e.g. a synchronous NBAC protocol
is *allowed* to lose agreement once a schedule delays a message beyond the
bound, and such runs are not violations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.checker import required_properties
from repro.core.lattice import ALL_PROPS, Prop, PropertyPair
from repro.errors import ConfigurationError
from repro.exp.engine import run_trial, run_trials
from repro.exp.results import TrialResult
from repro.exp.spec import GridSpec, ScheduleSpec, TrialSpec, coerce_schedule
from repro.explore.schedule import ScheduleTrace

#: property name -> TrialResult attribute
_PROP_ATTRS = {
    Prop.AGREEMENT: "agreement",
    Prop.VALIDITY: "validity",
    Prop.TERMINATION: "termination",
}

_PROP_BY_NAME = {
    "agreement": Prop.AGREEMENT,
    "validity": Prop.VALIDITY,
    "termination": Prop.TERMINATION,
    "A": Prop.AGREEMENT,
    "V": Prop.VALIDITY,
    "T": Prop.TERMINATION,
    # cluster-invariant aliases: for workload trials the engine maps the
    # repro.db.invariants battery onto the property flags (atomicity ->
    # agreement, durability & lock safety -> validity), so the invariants
    # can be named directly when hunting transaction anomalies
    "atomicity": Prop.AGREEMENT,
    "durability": Prop.VALIDITY,
    "lock-safety": Prop.VALIDITY,
}

#: default required properties for cluster (workload) exploration: the
#: safety invariants only — an injected crash legitimately leaves in-doubt
#: transactions behind, so termination is opt-in (properties=..., or cell=)
CLUSTER_SAFETY_PROPS = frozenset({Prop.AGREEMENT, Prop.VALIDITY})

#: exploration presets: named search plans expanded by :func:`explore`
EXPLORATION_PRESETS = ("cluster-anomaly", "cluster-rejoin")


def _coerce_properties(properties: Optional[Sequence[Union[str, Prop]]]):
    if properties is None:
        return None
    out = []
    for prop in properties:
        if isinstance(prop, Prop):
            out.append(prop)
            continue
        try:
            out.append(_PROP_BY_NAME[prop])
        except KeyError:
            known = ", ".join(sorted(k for k in _PROP_BY_NAME if len(k) > 1))
            raise ConfigurationError(
                f"unknown property {prop!r}; known: {known}"
            ) from None
    return frozenset(out)


@dataclass
class Violation:
    """One property-violating schedule, plus its shrunk counterexample."""

    trial_index: int
    base_seed: int
    derived_seed: int
    execution_class: str
    #: names of the required properties that failed ("termination", ...)
    properties: Tuple[str, ...]
    #: the schedule as explored (every applied decision)
    schedule: ScheduleTrace
    #: fingerprint of the violating execution's trace
    fingerprint: str
    #: greedily-minimised schedule still producing a violation (None until
    #: shrinking ran; equals ``schedule`` when nothing could be dropped)
    shrunk: Optional[ScheduleTrace] = None
    #: fingerprint of the shrunk schedule's execution
    shrunk_fingerprint: Optional[str] = None
    #: cluster-invariant violation details (empty for bare protocol trials):
    #: the repro.db.invariants strings naming partitions, transactions, keys
    details: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"violated: {', '.join(self.properties)} "
            f"({self.execution_class} execution, seed {self.base_seed})",
        ]
        for detail in self.details:
            lines.append(f"  {detail}")
        lines.append(f"explored schedule: {len(self.schedule)} decisions")
        minimal = self.shrunk if self.shrunk is not None else self.schedule
        lines.append(f"minimal counterexample: {len(minimal)} decisions")
        for line in minimal.describe():
            lines.append(f"  {line}")
        return "\n".join(lines)


@dataclass
class ExplorationReport:
    """Everything one :func:`explore` call found."""

    protocol: str
    n: int
    f: int
    strategy: str
    schedules_run: int
    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.violations)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def violations_of(self, prop: str) -> List[Violation]:
        return [v for v in self.violations if prop in v.properties]

    def summary_row(self) -> Dict[str, Any]:
        minimal = min(
            (len(v.shrunk if v.shrunk is not None else v.schedule)
             for v in self.violations),
            default=None,
        )
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "strategy": self.strategy,
            "schedules": self.schedules_run,
            "violations": self.violation_count,
            "violated": ",".join(
                sorted({p for v in self.violations for p in v.properties})
            ) or "-",
            "min_counterexample": minimal,
        }


def _required_props(
    properties: Optional[frozenset],
    cell: Optional[PropertyPair],
    execution_class: str,
) -> frozenset:
    if properties is not None:
        return properties
    if cell is not None:
        return required_properties(cell, execution_class)
    return ALL_PROPS


def _violated_props(
    trial: TrialResult,
    properties: Optional[frozenset],
    cell: Optional[PropertyPair],
) -> Tuple[str, ...]:
    required = _required_props(properties, cell, trial.execution_class)
    return tuple(
        sorted(
            _PROP_ATTRS[prop]
            for prop in required
            if not getattr(trial, _PROP_ATTRS[prop])
        )
    )


def _schedule_specs(
    strategy: str,
    params: Optional[Dict[str, Any]],
    budget: int,
    n: int,
) -> Tuple[List[ScheduleSpec], List[int]]:
    """Expand the strategy into (schedules axis, seeds axis) within budget.

    Seeded strategies use one spec and ``budget`` seeds.  ``crash-point`` is
    deterministic (seed-insensitive): without an explicit ``point`` it
    enumerates its ``(pid, point)`` space as separate axis values, clipped to
    the budget; with one, exactly one schedule runs — repeating a
    seed-insensitive strategy across seeds would re-run identical executions.
    """
    params = dict(params or {})
    if strategy == "crash-point":
        if "point" in params:
            return [coerce_schedule((strategy, strategy, params))], [0]
        # enumerate phase-boundary ordinals; each boundary's owning process
        # is crashed unless an explicit pid pins the victim
        points = int(params.pop("points", max(4, 2 * n)))
        pid = params.pop("pid", 0)
        specs = [
            coerce_schedule(
                (f"crash-point[pid={pid},point={point}]", "crash-point",
                 {**params, "pid": pid, "point": point})
            )
            for point in range(points)
        ]
        return specs[:budget], [0]
    spec = coerce_schedule((strategy, strategy, params))
    return [spec], list(range(budget))


def _cluster_anomaly_specs(
    budget: int, n: int
) -> Tuple[List[ScheduleSpec], List[int]]:
    """The ``cluster-anomaly`` preset: crash-point enumeration over the cluster.

    Enumerates ``(pid, point)`` crash points over every partition (``1..n``)
    *and* the client coordinator (``n + 1``), point-major so a small budget
    still covers every process at the earliest phase boundaries.  Each spec
    injects exactly one crash, so a violating schedule is already near its
    1-minimal counterexample before shrinking even starts.
    """
    pids = list(range(1, n + 2))
    points = max(2, -(-budget // len(pids)))  # ceil(budget / processes)
    specs = [
        coerce_schedule(
            (f"crash[P{pid}@{point}]", "crash-point", {"pid": pid, "point": point})
        )
        for point in range(points)
        for pid in pids
    ]
    return specs[:budget], [0]


def _cluster_rejoin_specs(
    budget: int, n: int
) -> Tuple[List[ScheduleSpec], List[int]]:
    """The ``cluster-rejoin`` preset: crash-and-rejoin enumeration.

    Like ``cluster-anomaly``, but every crash is followed by a WAL rejoin a
    few phase boundaries later — hunting recovery bugs (double replay, lost
    in-doubt resolution, stale-timer resurrection) instead of plain crash
    anomalies.  Only the partitions (``1..n``) are enumerated: the client
    coordinator's outcome log is volatile, so it cannot rejoin.
    """
    pids = list(range(1, n + 1))
    gaps = (2, 5)
    per_point = len(pids) * len(gaps)
    points = max(2, -(-budget // per_point))  # ceil(budget / (pids x gaps))
    specs = [
        coerce_schedule(
            (
                f"rejoin[P{pid}@{point}+{gap}]",
                "crash-point",
                {"pid": pid, "point": point, "recover_after": gap},
            )
        )
        for point in range(points)
        for pid in pids
        for gap in gaps
    ]
    return specs[:budget], [0]


def explore(
    protocol: Any,
    n: int,
    f: int,
    budget: int = 200,
    *,
    strategy: str = "random-walk",
    params: Optional[Dict[str, Any]] = None,
    preset: Optional[str] = None,
    properties: Optional[Sequence[Union[str, Prop]]] = None,
    cell: Optional[PropertyPair] = None,
    votes: Any = "all-yes",
    delay: Any = None,
    fault: Any = None,
    workload: Any = None,
    seed: int = 0,
    max_time: float = 500.0,
    workers: Optional[int] = 1,
    shrink: bool = True,
    max_counterexamples: int = 5,
) -> ExplorationReport:
    """Search ``budget`` schedules of one protocol for property violations.

    The search runs as a :mod:`repro.exp` sweep over the ``schedules`` axis
    (``workers>1`` fans it out over the process pool; results are identical
    at any worker count), checks every execution against the required
    properties, and greedily shrinks up to ``max_counterexamples`` violating
    schedules to minimal counterexamples.

    Parameters mirror the sweep axes: ``votes`` / ``delay`` / ``fault`` /
    ``workload`` take any axis shorthand
    :class:`~repro.exp.spec.GridSpec` accepts.  Pass
    ``properties=("termination",)`` to hunt one property, or ``cell=`` to
    check a protocol against its own problem cell (class-aware requirements).

    Passing a ``workload`` turns the search into a *transaction-anomaly*
    hunt: every schedule drives a full :mod:`repro.db` cluster (``n``
    partitions, the protocol embedded as the commit layer), and the checked
    properties default to the cluster-invariant battery
    (:mod:`repro.db.invariants` — atomicity and durability/lock safety;
    termination is opt-in because injected crashes legitimately leave
    in-doubt transactions).  ``preset="cluster-anomaly"`` replaces the
    seeded strategy with deterministic crash-point enumeration over every
    partition and the client coordinator; ``preset="cluster-rejoin"``
    enumerates crash-*and-rejoin* points over the partitions instead,
    hunting WAL-recovery bugs.
    """
    if budget < 1:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    props = _coerce_properties(properties)
    if props is None and cell is None and workload is not None:
        props = CLUSTER_SAFETY_PROPS
    if preset is not None:
        if preset not in EXPLORATION_PRESETS:
            known = ", ".join(EXPLORATION_PRESETS)
            raise ConfigurationError(
                f"unknown exploration preset {preset!r}; known: {known}"
            )
        if strategy != "random-walk" or params:
            # a preset replaces the strategy wholesale; silently discarding
            # an explicit strategy/params would misreport what was searched
            raise ConfigurationError(
                f"preset={preset!r} defines the search plan itself and cannot "
                f"be combined with strategy={strategy!r} / params={params!r}; "
                f"drop the preset or the strategy arguments"
            )
        if workload is None:
            raise ConfigurationError(
                f"preset={preset!r} explores cluster trials; pass a "
                f"workload= (any GridSpec workloads-axis shorthand, e.g. "
                f"'uniform' or ('name', factory))"
            )
        if preset == "cluster-rejoin":
            schedules, seed_axis = _cluster_rejoin_specs(budget, n)
        else:
            schedules, seed_axis = _cluster_anomaly_specs(budget, n)
        strategy_label = preset
    else:
        schedules, seed_axis = _schedule_specs(strategy, params, budget, n)
        strategy_label = strategy
    base_seeds = [seed + s for s in seed_axis]
    grid = GridSpec(
        protocols=[protocol],
        systems=[(n, f)],
        delays=[delay],
        faults=[fault],
        votes=[votes],
        workloads=[workload],
        schedules=schedules,
        seeds=base_seeds,
        max_time=max_time,
        trace_level="full",
    )
    trials = grid.trials()
    sweep = run_trials(trials, workers=workers, mode="full")

    report = ExplorationReport(
        protocol=trials[0].protocol.label if trials else str(protocol),
        n=n,
        f=f,
        strategy=strategy_label,
        schedules_run=len(trials),
        meta=dict(sweep.meta),
    )
    if preset is not None:
        report.meta["preset"] = preset
    trials_by_index = {t.index: t for t in trials}
    for result in sweep:
        if result.error is not None:
            report.errors.append(result.error)
            continue
        violated = _violated_props(result, props, cell)
        if not violated:
            continue
        schedule = ScheduleTrace.from_jsonable(result.extra["schedule_trace"])
        violation = Violation(
            trial_index=result.index,
            base_seed=result.base_seed,
            derived_seed=result.derived_seed,
            execution_class=result.execution_class,
            properties=violated,
            schedule=schedule,
            fingerprint=result.extra["trace_fingerprint"],
            details=tuple(result.extra.get("invariant_violations", ())),
        )
        report.violations.append(violation)
    if shrink:
        for violation in report.violations[:max_counterexamples]:
            shrink_violation(
                trials_by_index[violation.trial_index], violation,
                properties=props, cell=cell,
            )
    return report


# --------------------------------------------------------------------------- #
# replay and shrinking
# --------------------------------------------------------------------------- #


def replay_trial(trial: TrialSpec, schedule: ScheduleTrace) -> TrialResult:
    """Re-run one explored trial under a stored schedule.

    The trial's coordinates (and therefore its derived seed — the schedule is
    deliberately not part of it) pin the underlying execution; the replayed
    decisions pin the event order.  The returned result's
    ``extra["trace_fingerprint"]`` must equal the original run's fingerprint
    — the subsystem's replay-determinism guarantee.
    """
    replay_spec = ScheduleSpec(
        label="replay",
        strategy="replay",
        params=(("decisions", tuple(tuple(d) for d in schedule.decisions)),),
    )
    replayed = dataclasses.replace(trial, schedule=replay_spec)
    return run_trial(replayed, trace_level="full")


def shrink_violation(
    trial: TrialSpec,
    violation: Violation,
    *,
    properties: Optional[frozenset] = None,
    cell: Optional[PropertyPair] = None,
) -> Violation:
    """Greedily minimise a violating schedule in place.

    Repeatedly tries to drop each decision (re-running the trial each time);
    a drop is kept when the violation persists, and the loop restarts until
    no single decision can be removed — a 1-minimal counterexample in the
    delta-debugging sense.  The shrunk schedule's decision list is re-read
    from the replay's applied decisions, so decisions that became
    inapplicable after earlier drops disappear from the counterexample too.
    """

    def still_violates(schedule: ScheduleTrace):
        result = replay_trial(trial, schedule)
        if result.error is not None:
            return None
        violated = _violated_props(result, properties, cell)
        if not set(violation.properties) <= set(violated):
            return None
        return result

    current = violation.schedule
    current_result = still_violates(current)
    if current_result is None:  # pragma: no cover - a violation must replay
        raise ConfigurationError(
            "stored schedule no longer reproduces its violation; the trial "
            "spec does not match the one it was explored on"
        )
    # normalise to the replay's applied decisions before shrinking
    current = ScheduleTrace.from_jsonable(current_result.extra["schedule_trace"])
    reduced = True
    while reduced and len(current):
        reduced = False
        for index in range(len(current)):
            candidate = current.without_decision(index)
            result = still_violates(candidate)
            if result is None:
                continue
            current = ScheduleTrace.from_jsonable(
                result.extra["schedule_trace"]
            )
            current_result = result
            reduced = True
            break
    violation.shrunk = ScheduleTrace(
        strategy=violation.schedule.strategy,
        seed=violation.schedule.seed,
        params=dict(violation.schedule.params),
        decisions=current.decisions,
    )
    violation.shrunk_fingerprint = current_result.extra["trace_fingerprint"]
    # re-read the invariant details from the *shrunk* run: dropping decisions
    # may have changed which transactions/partitions the violation names
    violation.details = tuple(
        current_result.extra.get("invariant_violations", ())
    )
    return violation
