"""Streaming violation accounting for aggregate-mode exploration sweeps.

Huge exploration budgets (10^4-10^6 schedules) should not materialise one
:class:`~repro.exp.results.TrialResult` per schedule.  :class:`ViolationFold`
is a custom reducer for :func:`repro.exp.run_sweep`: each trial folds into
per-cell violation tallies the moment it arrives, and only the first few
violating schedules are retained (they are replayable, so keeping more buys
nothing — any violation can be regenerated from its seed).  Registered as
``reducer="violations"`` in :mod:`repro.exp.registry`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.exp.results import _PROPERTIES, TrialResult


class ViolationFold:
    """Per-cell violation counts plus a bounded sample of violating schedules."""

    #: how many violating schedule traces to retain across the whole sweep
    MAX_SAMPLES = 10

    def __init__(self) -> None:
        #: cell key -> {"trials": int, "violations": int, per-property counts}
        self._cells: Dict[tuple, Dict[str, Any]] = {}
        self._order: List[tuple] = []
        self.total_trials = 0
        self.total_violations = 0
        self.error_count = 0
        #: up to MAX_SAMPLES violating trials' schedule/fingerprint extras
        self.samples: List[Dict[str, Any]] = []
        self.meta: Dict[str, Any] = {}

    def __len__(self) -> int:
        return self.total_trials

    def fold(self, trial: TrialResult) -> None:
        self.total_trials += 1
        if trial.error is not None:
            self.error_count += 1
            return
        key = trial.key()
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = {
                "trials": 0,
                "violations": 0,
                **{f"broke_{attr}": 0 for _, attr in _PROPERTIES},
            }
            self._order.append(key)
        cell["trials"] += 1
        broken = [attr for _, attr in _PROPERTIES if not getattr(trial, attr)]
        if not broken:
            return
        cell["violations"] += 1
        self.total_violations += 1
        for attr in broken:
            cell[f"broke_{attr}"] += 1
        if len(self.samples) < self.MAX_SAMPLES and "schedule_trace" in trial.extra:
            self.samples.append(
                {
                    "index": trial.index,
                    "key": key,
                    "base_seed": trial.base_seed,
                    "properties": tuple(broken),
                    "schedule_trace": trial.extra["schedule_trace"],
                    "trace_fingerprint": trial.extra.get("trace_fingerprint"),
                }
            )

    def rows(self) -> List[Dict[str, Any]]:
        """One row per grid cell, in first-seen (trial-index) order."""
        out = []
        for key in self._order:
            cell = self._cells[key]
            row: Dict[str, Any] = {
                "protocol": key[0],
                "n": key[1],
                "f": key[2],
                "delay": key[3],
                "fault": key[4],
                "votes": key[5],
                "workload": key[6],
                "schedule": key[7] if len(key) > 7 else "-",
                "trials": cell["trials"],
                "violations": cell["violations"],
            }
            for label, attr in _PROPERTIES:
                row[f"broke_{label}"] = cell[f"broke_{attr}"]
            out.append(row)
        return out
