"""Schedule decisions, replayable schedule traces, and the controller base.

The scheduler's controller hook (see :mod:`repro.sim.runner`) offers every
popped event to a controller, which may answer with one of two *actions*:

* ``("defer", extra)``  — postpone the delivery by ``extra`` time units;
* ``("crash", pid)``    — crash ``pid`` before the event is dispatched;
* ``("recover", pid)``  — rejoin a previously crashed ``pid`` (only applies
  when the scheduler has a recovery factory installed, i.e. on cluster runs
  where partitions rebuild from their write-ahead log).

A controller therefore explores exactly the adversary's power in the paper's
model: it may extend message delays (possibly beyond the bound ``U``, turning
the run into a network-failure execution) and pick crash points, but can never
reorder timers or drop messages.  The scheduler records every decision that
*applied* as a ``(step, kind, arg)`` tuple, and the full run is reproducible
from ``(strategy, seed, decisions)`` alone — which is what
:class:`ScheduleTrace` serialises and :class:`ReplayController` replays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: the decision kinds a controller may emit
DECISION_KINDS = ("defer", "crash", "recover")

#: one applied decision: (intercept step, kind, argument)
Decision = Tuple[int, str, Any]


def _normalise_decision(entry: Any) -> Decision:
    step, kind, arg = entry
    if kind not in DECISION_KINDS:
        raise ConfigurationError(
            f"unknown schedule decision kind {kind!r}; expected one of {DECISION_KINDS}"
        )
    return (int(step), str(kind), float(arg) if kind == "defer" else int(arg))


@dataclass
class ScheduleTrace:
    """A compact, serialisable record of one explored schedule.

    ``decisions`` holds the decisions that actually applied, in intercept-step
    order.  Replaying them through a :class:`ReplayController` on the same
    trial (same protocol, votes, delay model, fault plan and derived seed)
    reproduces the execution byte-identically — asserted via
    :meth:`repro.sim.trace.Trace.fingerprint`.
    """

    strategy: str
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    decisions: List[Decision] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.decisions = [_normalise_decision(d) for d in self.decisions]

    def __len__(self) -> int:
        return len(self.decisions)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "params": dict(self.params),
            "decisions": [list(d) for d in self.decisions],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ScheduleTrace":
        return cls(
            strategy=data["strategy"],
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params", {})),
            decisions=[tuple(d) for d in data.get("decisions", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        return cls.from_jsonable(json.loads(text))

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay_controller(self) -> "ReplayController":
        """A controller that re-applies exactly these decisions."""
        return ReplayController(decisions=self.decisions)

    def without_decision(self, index: int) -> "ScheduleTrace":
        """A copy with the ``index``-th decision dropped (used by shrinking)."""
        pruned = [d for i, d in enumerate(self.decisions) if i != index]
        return ScheduleTrace(
            strategy=self.strategy, seed=self.seed,
            params=dict(self.params), decisions=pruned,
        )

    def describe(self) -> List[str]:
        """Human-readable one-liner per decision (for reports and examples)."""
        out = []
        for step, kind, arg in self.decisions:
            if kind == "crash":
                out.append(f"step {step}: crash P{arg}")
            elif kind == "recover":
                out.append(f"step {step}: rejoin P{arg} from its WAL")
            else:
                out.append(f"step {step}: defer delivery by {arg} time units")
        return out


class ScheduleController:
    """Base controller: strict timestamp order (every intercept says "fire").

    Subclasses implement :meth:`intercept` and may use :meth:`begin` (called
    once by the scheduler before the first event) for setup that needs the
    scheduler.  Controllers are single-use: one controller instance drives
    one execution.
    """

    strategy_name = "timestamp-order"

    def __init__(self, seed: int = 0, **params: Any):
        self.seed = seed
        self.params = dict(params)

    def begin(self, scheduler: Any) -> None:
        """Called by the scheduler once, before the first event fires."""

    def intercept(self, scheduler: Any, event: Any, step: int) -> Optional[tuple]:
        """Offered each event before dispatch; return an action or ``None``.

        The applied decisions land in ``scheduler.applied_schedule_actions``
        (and ``trace.metadata["schedule_decisions"]``), from which the sweep
        engine builds the run's :class:`ScheduleTrace`.
        """
        return None


class ReplayController(ScheduleController):
    """Re-applies a recorded decision list, step for step.

    Decisions from a *shrunk* list may no longer apply at their step (the
    earlier decisions that shaped the event order are gone); the scheduler
    ignores inapplicable actions deterministically, so replaying any decision
    subset is still a well-defined execution.
    """

    strategy_name = "replay"

    def __init__(self, decisions: Any = (), seed: int = 0, **params: Any):
        super().__init__(seed=seed, **params)
        normalised = [_normalise_decision(d) for d in decisions]
        self._by_step: Dict[int, Tuple[str, Any]] = {
            step: (kind, arg) for step, kind, arg in normalised
        }

    def intercept(self, scheduler: Any, event: Any, step: int) -> Optional[tuple]:
        action = self._by_step.get(step)
        if action is None:
            return None
        return action
