"""Pluggable schedule-exploration strategies.

Every strategy is a :class:`~repro.explore.schedule.ScheduleController` that
derives all its choices from a seed (or from explicit parameters), so an
explored schedule is a pure function of ``(strategy, seed, params)`` and the
trial it runs on.  The registry maps strategy names to classes; names are
plain data, which is what makes a :class:`~repro.exp.spec.ScheduleSpec`
picklable under any multiprocessing start method.

Built-in strategies
-------------------
* ``timestamp-order`` — the identity strategy (no decisions); used by the
  fingerprint guards that pin the controlled path to the default path.
* ``random-walk`` — at every intercept, a seeded RNG chooses to defer the
  delivery, crash the event's target process, or fire as scheduled.
* ``delay-reorder`` — bounded delay-reordering: defers up to ``k`` seeded
  delivery positions (each deferral swaps the delivery past its neighbours).
* ``crash-point`` — deterministic crash-point enumeration: crashes one
  process immediately before the ``point``-th protocol phase boundary it
  observes (timer expiries and proposal deliveries mark phase transitions).
* ``replay`` — re-applies a stored decision list (see
  :class:`~repro.explore.schedule.ReplayController`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.explore.schedule import ReplayController, ScheduleController
from repro.sim.events import MessageDeliveryEvent, ProposeEvent, TimerEvent

#: deferral magnitudes the seeded strategies draw from, in units of the
#: delay bound ``U`` (scaled by ``scheduler.network.u`` at decision time, so
#: exploration crosses the bound under any delay model): past the next
#: same-time batch, past the bound, well past it
DEFER_CHOICES = (0.7, 1.0, 1.6, 2.5)


class TimestampOrder(ScheduleController):
    """The identity strategy: every event fires in default order."""

    strategy_name = "timestamp-order"


class RandomWalk(ScheduleController):
    """Seeded random walk over defer / crash / fire decisions.

    Parameters
    ----------
    defer_prob:
        Per-delivery probability of postponing the delivery.
    crash_prob:
        Per-event probability of crashing the event's target process (the
        destination of a delivery, the owner of a timer or proposal) right
        before it handles the event — subject to the scheduler's ``f`` budget.
    max_defers:
        Hard cap on deferrals, so a walk always terminates.
    """

    strategy_name = "random-walk"

    def __init__(
        self,
        seed: int = 0,
        defer_prob: float = 0.15,
        crash_prob: float = 0.05,
        max_defers: int = 12,
        max_crashes: Optional[int] = None,
    ):
        super().__init__(
            seed=seed, defer_prob=defer_prob, crash_prob=crash_prob,
            max_defers=max_defers, max_crashes=max_crashes,
        )
        if not 0.0 <= defer_prob <= 1.0 or not 0.0 <= crash_prob <= 1.0:
            raise ConfigurationError(
                f"probabilities must be in [0, 1], got defer_prob={defer_prob}, "
                f"crash_prob={crash_prob}"
            )
        self._rng = random.Random(seed)
        self._defer_prob = defer_prob
        self._crash_prob = crash_prob
        self._defers_left = max_defers
        self._crashes_left = max_crashes if max_crashes is not None else 1 << 30

    @staticmethod
    def _target_pid(event: Any) -> Optional[int]:
        if isinstance(event, MessageDeliveryEvent):
            return event.dst
        pid = getattr(event, "pid", None)
        return pid if isinstance(pid, int) and pid > 0 else None

    def intercept(self, scheduler: Any, event: Any, step: int) -> Optional[tuple]:
        # one RNG draw per branch, consumed unconditionally, so the decision
        # sequence is a pure function of the seed and the intercept count
        crash_draw = self._rng.random()
        defer_draw = self._rng.random()
        extra = self._rng.choice(DEFER_CHOICES)
        if crash_draw < self._crash_prob and self._crashes_left > 0:
            pid = self._target_pid(event)
            if pid is not None and scheduler.can_inject_crash(pid):
                self._crashes_left -= 1
                return ("crash", pid)
        if (
            defer_draw < self._defer_prob
            and self._defers_left > 0
            and isinstance(event, MessageDeliveryEvent)
            and event.src != event.dst
        ):
            self._defers_left -= 1
            return ("defer", extra * scheduler.network.u)
        return None


class DelayReorder(ScheduleController):
    """Bounded delay-reordering: defer up to ``k`` seeded delivery positions.

    The strategy watches the stream of (non-self) deliveries and defers the
    ones whose ordinal was selected by the seed — each deferral swaps the
    delivery past the events scheduled within ``extra`` of it, so ``k``
    bounds the number of reordered delivery pairs.  ``window`` bounds the
    ordinal range the seed selects from.
    """

    strategy_name = "delay-reorder"

    def __init__(self, seed: int = 0, k: int = 2, window: int = 24):
        super().__init__(seed=seed, k=k, window=window)
        if k < 0 or window < 1:
            raise ConfigurationError(f"invalid delay-reorder parameters k={k}, window={window}")
        rng = random.Random(seed)
        count = min(k, window)
        self._targets: Dict[int, float] = {
            ordinal: rng.choice(DEFER_CHOICES)
            for ordinal in rng.sample(range(window), count)
        }
        self._deliveries_seen = 0

    def intercept(self, scheduler: Any, event: Any, step: int) -> Optional[tuple]:
        if not isinstance(event, MessageDeliveryEvent) or event.src == event.dst:
            return None
        ordinal = self._deliveries_seen
        self._deliveries_seen += 1
        extra = self._targets.pop(ordinal, None)
        if extra is None:
            return None
        return ("defer", extra * scheduler.network.u)


class CrashPoint(ScheduleController):
    """Crash-point enumeration at protocol phase boundaries.

    A *phase boundary* is an event that moves the protocol between phases:
    the delivery of a proposal (the protocol starts) or a timer expiry (a
    synchronous round ends).  The strategy crashes ``pid`` — or, when ``pid``
    is 0, the process owning the boundary event — immediately before the
    ``point``-th boundary it observes.  Enumerating ``(pid, point)`` pairs
    walks every crash point of the protocol's phase structure.

    With ``recover_after`` set, the strategy additionally rejoins the crashed
    process ``recover_after`` phase boundaries after the crash — walking every
    (crash point, rejoin point) pair of the recovery surface.  The rejoin only
    applies on runs where the scheduler has a recovery factory installed
    (cluster runs rebuilding partitions from their WAL); elsewhere the action
    is ignored deterministically.
    """

    strategy_name = "crash-point"

    def __init__(
        self,
        seed: int = 0,
        pid: int = 0,
        point: int = 0,
        recover_after: Optional[int] = None,
    ):
        super().__init__(seed=seed, pid=pid, point=point, recover_after=recover_after)
        if point < 0:
            raise ConfigurationError(f"crash point must be >= 0, got {point}")
        if recover_after is not None and recover_after < 1:
            raise ConfigurationError(
                f"recover_after must be >= 1 boundary after the crash, "
                f"got {recover_after}"
            )
        self._pid = pid
        self._point = point
        self._recover_after = recover_after
        self._boundaries_seen = 0
        self._crashed_pid: Optional[int] = None
        self._crash_boundary: Optional[int] = None
        self._done = False

    def intercept(self, scheduler: Any, event: Any, step: int) -> Optional[tuple]:
        if self._done or not isinstance(event, (TimerEvent, ProposeEvent)):
            return None
        boundary = self._boundaries_seen
        self._boundaries_seen += 1
        if self._crashed_pid is not None:
            # crash already emitted; waiting to emit the rejoin
            if boundary - self._crash_boundary >= self._recover_after:
                self._done = True
                return ("recover", self._crashed_pid)
            return None
        if boundary != self._point:
            return None
        pid = self._pid if self._pid > 0 else event.pid
        if not scheduler.can_inject_crash(pid):
            self._done = True
            return None
        if self._recover_after is None:
            self._done = True
        else:
            self._crashed_pid = pid
            self._crash_boundary = boundary
        return ("crash", pid)


#: strategy name -> controller class (extensible; keys are plain data, so a
#: ScheduleSpec naming a strategy pickles under the spawn start method)
STRATEGIES: Dict[str, Type[ScheduleController]] = {
    TimestampOrder.strategy_name: TimestampOrder,
    RandomWalk.strategy_name: RandomWalk,
    DelayReorder.strategy_name: DelayReorder,
    CrashPoint.strategy_name: CrashPoint,
    ReplayController.strategy_name: ReplayController,
}


def register_strategy(cls: Type[ScheduleController]) -> Type[ScheduleController]:
    """Register a strategy class under its ``strategy_name`` (decorator-friendly)."""
    name = getattr(cls, "strategy_name", None)
    if not name:
        raise ConfigurationError(f"{cls!r} has no strategy_name")
    STRATEGIES[name] = cls
    return cls


def strategy_names() -> list:
    return list(STRATEGIES)


def make_strategy(name: str, seed: int = 0, **params: Any) -> ScheduleController:
    """Instantiate a registered strategy from plain data."""
    try:
        cls = STRATEGIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(STRATEGIES))
        raise ConfigurationError(
            f"unknown schedule strategy {name!r}; known: {known}"
        ) from exc
    return cls(seed=seed, **params)
