"""repro.lint — determinism & spawn-safety static analysis for this repo.

The repo's load-bearing guarantee is that sweep aggregates and schedule
traces are byte-identical across trace levels × fold paths × serial/fork/
spawn execution.  This package enforces the coding rules that guarantee
rests on, *before* an end-to-end fingerprint test can catch a violation:

======  ==============================================================
rule    what it flags
======  ==============================================================
DET001  iteration over a bare ``set``/``frozenset`` whose order escapes
DET002  wall-clock reads / interpreter-global ``random.*`` calls
DET003  ``id()``/``hash()``-keyed ordering
FP001   ``json.dumps`` without ``sort_keys=True`` in a digest function
FP002   ``set``/``frozenset`` inside a sent message payload
FP003   order-sensitive iteration in fold/merge/row/digest code
SP001   lambda / local closure in a spawn-crossing spec field
LNT000  allowlist pragma without a justification
======  ==============================================================

Run it::

    python -m repro.lint src benchmarks tests
    python -m repro.lint --format=json src
    python -m repro.lint --sanitize          # runtime sanitizer + hash-seed diff

Suppress a finding (justification mandatory)::

    # lint: allow[DET001] all entries share one value, so order cannot matter

The runtime twin lives in :mod:`repro.lint.sanitizer`: setting
``REPRO_SANITIZE=1`` wraps the trace/accumulator digest pipeline with
insertion-order perturbation checks, and the hash-seed harness re-runs a
reference sweep under two ``PYTHONHASHSEED`` values and diffs fingerprints.
"""

from repro.lint.ast_checks import (
    FileContext,
    Rule,
    lint_file,
    lint_paths,
    load_context,
)
from repro.lint.report import Finding, LintReport
from repro.lint.rules import default_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "default_rules",
    "lint_file",
    "lint_paths",
    "load_context",
]
