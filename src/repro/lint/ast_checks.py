"""AST rule engine for :mod:`repro.lint`.

The engine walks Python files, parses each once, and hands a
:class:`FileContext` to every applicable rule.  Rules are small classes with

* ``rule_id`` — stable identifier (``DET001``, ``SP001``, ...),
* ``applies_to(ctx)`` — path-based scoping (most determinism rules only run
  over ``src/``; spawn-safety also covers ``benchmarks/``),
* ``check(ctx)`` — yields :class:`~repro.lint.report.Finding` objects.

Allowlist policy: a finding may be suppressed by an inline pragma on the
flagged line or the line directly above it::

    # lint: allow[DET001] one-line justification of why this order is safe

The justification is mandatory — a bare ``allow`` pragma is itself reported
(rule ``LNT000``), so the allowlist can never silently grow.

The module also hosts the shared set-type inference helpers the determinism
and fingerprint-path rules use: a deliberately conservative, syntactic
propagation of "this expression is a ``set``/``frozenset``" through literals,
constructors, annotated locals/attributes and set operators.  Conservative
means: unknown types are never flagged, so the rules stay at zero false
positives on the idioms the codebase relies on (``sorted(set(...))``,
seeded ``Random`` threading, digest folds over ``sorted(counts)``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.report import Finding, LintReport

#: directories the file walker never descends into
SKIP_DIRS = {"__pycache__", "lint_fixtures", ".git", ".claude", ".pytest_cache"}

#: builtins whose consumption of an unordered iterable is order-insensitive
SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: method calls that fold an element into an unordered container (commutative)
ORDER_FREE_METHODS = frozenset({"add", "update", "discard", "remove", "merge"})

#: set-typed annotation heads (``Set[...]``, ``frozenset``, ...)
_SET_ANN_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_DICT_ANN_NAMES = frozenset({"dict", "Dict", "DefaultDict", "MutableMapping", "Mapping"})

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\[(?P<rule>[A-Za-z0-9_,\s-]+)\]\s*(?P<why>.*)$"
)


# --------------------------------------------------------------------------- #
# file context
# --------------------------------------------------------------------------- #
@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    path: Path
    relpath: str
    kind: str  # "src" | "benchmarks" | "tests" | "other"
    text: str
    tree: ast.Module
    lines: List[str]
    #: line number -> (rule ids allowed, justification)
    allow_pragmas: Dict[int, Tuple[Set[str], str]] = field(default_factory=dict)
    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            col=col + 1,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class every lint rule derives from."""

    rule_id: str = ""
    description: str = ""
    #: which tree kinds the rule runs over by default
    kinds: Tuple[str, ...] = ("src",)
    #: repo-relative posix path prefixes the rule is scoped *out* of — the
    #: per-package policy (see ``repro.lint.rules.SCOPE_EXEMPTIONS``); unlike
    #: an allowlist pragma this silences the rule for a whole package whose
    #: purpose conflicts with it, with the justification kept at the policy
    #: table instead of sprayed across call sites
    exempt_prefixes: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.kind not in self.kinds:
            return False
        return not any(
            ctx.relpath.startswith(prefix) for prefix in self.exempt_prefixes
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# allowlist pragmas
# --------------------------------------------------------------------------- #
def parse_allow_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Tuple[Set[str], str]], List[Tuple[int, str]]]:
    """Extract ``# lint: allow[RULE] why`` pragmas.

    Returns ``(pragmas, malformed)`` where ``pragmas`` maps the line number a
    pragma *covers* (its own line and, for comment-only lines, the next line)
    to the allowed rule ids and justification, and ``malformed`` lists
    pragmas with an empty justification.
    """
    pragmas: Dict[int, Tuple[Set[str], str]] = {}
    malformed: List[Tuple[int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group("rule").split(",") if r.strip()}
        why = match.group("why").strip().lstrip("-").strip()
        if not why:
            malformed.append((lineno, line.strip()))
            continue
        pragmas[lineno] = (rules, why)
        if line.lstrip().startswith("#"):
            # a comment-only pragma covers the statement on the next line
            pragmas.setdefault(lineno + 1, (rules, why))
    return pragmas, malformed


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #
def call_func_name(node: ast.Call) -> str:
    """Last path segment of the called object (``sorted``, ``dumps``, ...)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _ann_head(ann: ast.AST) -> str:
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript):
        return _ann_head(ann.value)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        # string annotations: take the head up to the first bracket
        return ann.value.split("[", 1)[0].split(".")[-1].strip()
    return ""


def ann_is_set(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    head = _ann_head(ann)
    if head in _SET_ANN_NAMES:
        return True
    if head == "Optional" and isinstance(ann, ast.Subscript):
        return ann_is_set(ann.slice)
    return False


def ann_is_dict_of_sets(ann: Optional[ast.AST]) -> bool:
    """``Dict[K, Set[V]]``-shaped annotations (subscripts yield sets)."""
    if not isinstance(ann, ast.Subscript) or _ann_head(ann) not in _DICT_ANN_NAMES:
        return False
    slc = ann.slice
    if isinstance(slc, ast.Tuple) and len(slc.elts) == 2:
        return ann_is_set(slc.elts[1])
    return False


@dataclass
class SetEnv:
    """Names known to be set-typed within one lexical scope."""

    set_names: Set[str] = field(default_factory=set)
    self_set_attrs: Set[str] = field(default_factory=set)
    dict_of_set_names: Set[str] = field(default_factory=set)
    self_dict_of_set_attrs: Set[str] = field(default_factory=set)
    set_returning_funcs: Set[str] = field(default_factory=set)


def is_set_expr(node: ast.AST, env: SetEnv) -> bool:
    """Conservative: True only when ``node`` is definitely an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in env.set_names
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr in env.self_set_attrs
        return False
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Name):
            return value.id in env.dict_of_set_names
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            if value.value.id == "self":
                return value.attr in env.self_dict_of_set_attrs
        return False
    if isinstance(node, ast.Call):
        name = call_func_name(node)
        if isinstance(node.func, ast.Name):
            if name in ("set", "frozenset"):
                return True
            return name in env.set_returning_funcs
        if isinstance(node.func, ast.Attribute):
            if name in ("union", "intersection", "difference", "symmetric_difference", "copy"):
                return is_set_expr(node.func.value, env)
            if name == "get" and len(node.args) >= 2:
                # d.get(k, set()) — set-valued when the default is a set
                return is_set_expr(node.args[1], env)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, env) or is_set_expr(node.right, env)
    if isinstance(node, ast.IfExp):
        return is_set_expr(node.body, env) or is_set_expr(node.orelse, env)
    return False


def is_dict_view(node: ast.AST) -> bool:
    """``x.items()`` / ``x.keys()`` / ``x.values()`` calls."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("items", "keys", "values")
        and not node.args
        and not node.keywords
    )


def build_module_env(tree: ast.Module) -> SetEnv:
    """Module-level names and annotated ``self`` attributes that are sets."""
    env = SetEnv()
    for node in tree.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if ann_is_set(node.annotation):
                env.set_names.add(node.target.id)
            elif ann_is_dict_of_sets(node.annotation):
                env.dict_of_set_names.add(node.target.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and is_set_expr(node.value, env):
                env.set_names.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ann_is_set(node.returns):
                env.set_returning_funcs.add(node.name)
    # self attributes: any `self.x: Set[...]` annotation anywhere in a class
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Attribute):
            target = node.target
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                if ann_is_set(node.annotation):
                    env.self_set_attrs.add(target.attr)
                elif ann_is_dict_of_sets(node.annotation):
                    env.self_dict_of_set_attrs.add(target.attr)
    return env


def function_env(func: ast.AST, module_env: SetEnv) -> SetEnv:
    """The module env extended with the function's set-typed params/locals."""
    env = SetEnv(
        set_names=set(module_env.set_names),
        self_set_attrs=set(module_env.self_set_attrs),
        dict_of_set_names=set(module_env.dict_of_set_names),
        self_dict_of_set_attrs=set(module_env.self_dict_of_set_attrs),
        set_returning_funcs=set(module_env.set_returning_funcs),
    )
    args = getattr(func, "args", None)
    if args is not None:
        for arg in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs):
            if ann_is_set(arg.annotation):
                env.set_names.add(arg.arg)
            elif ann_is_dict_of_sets(arg.annotation):
                env.dict_of_set_names.add(arg.arg)
    # two passes so `x = a | b` after `a = set()` resolves regardless of
    # statement distance; assignment-order subtleties stay conservative
    for _ in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if ann_is_set(node.annotation):
                    env.set_names.add(node.target.id)
                elif ann_is_dict_of_sets(node.annotation):
                    env.dict_of_set_names.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and is_set_expr(node.value, env):
                    env.set_names.add(target.id)
    return env


def consumed_safely(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when the expression's order cannot escape: every enclosing
    consumer up the chain is an order-insensitive builtin call."""
    current = node
    parent = parents.get(current)
    while parent is not None:
        if isinstance(parent, ast.Call) and current in parent.args:
            name = call_func_name(parent)
            if name in SAFE_CONSUMERS:
                return True
            return False
        if isinstance(parent, (ast.Compare, ast.BoolOp)):
            # membership / equality tests never observe iteration order
            return True
        if isinstance(parent, (ast.expr,)) and not isinstance(
            parent, (ast.ListComp, ast.DictComp, ast.GeneratorExp, ast.SetComp)
        ):
            current, parent = parent, parents.get(parent)
            continue
        return False
    return False


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def body_is_order_free(stmts: Sequence[ast.stmt], loop_names: Set[str]) -> bool:
    """True when every statement folds commutatively (order cannot matter).

    Recognised shapes: unordered-container mutation (``s.add``/``update``/
    ``merge``), counter bumps (``x += 1``), subscript assignment keyed by the
    loop variable (each distinct element writes a distinct slot), pure-read
    helper binds (``v = d.get(k)`` / ``d.setdefault(k, default)``), early
    exits returning constants, and recursively clean ``if``/``for`` blocks.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        if isinstance(stmt, ast.Return):
            if stmt.value is None or isinstance(stmt.value, ast.Constant):
                continue
            return False
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            if (
                isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in ORDER_FREE_METHODS
            ):
                continue
            return False
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.op, (ast.Add, ast.BitOr)) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Subscript):
                index_names = _target_names(target.slice)
                if index_names and index_names <= loop_names:
                    continue
                return False
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                if (
                    isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr in ("get", "setdefault")
                ):
                    # binds a per-key slot; mutation through it is checked
                    # by the statements that follow
                    loop_names = loop_names | {target.id}
                    continue
            return False
        if isinstance(stmt, ast.If):
            if body_is_order_free(stmt.body, loop_names) and body_is_order_free(
                stmt.orelse, loop_names
            ):
                continue
            return False
        if isinstance(stmt, ast.For):
            inner = loop_names | _target_names(stmt.target)
            if body_is_order_free(stmt.body, inner) and not stmt.orelse:
                continue
            return False
        return False
    return True


def unwrap_sorted(node: ast.AST) -> bool:
    """True when the iterable is already ``sorted(...)`` (or a sort call)."""
    return isinstance(node, ast.Call) and call_func_name(node) == "sorted"


def contains_set_expr(
    node: ast.AST, env: SetEnv
) -> Optional[ast.AST]:
    """First definitely-set-typed subexpression not wrapped in ``sorted``."""
    if unwrap_sorted(node):
        return None
    if is_set_expr(node, env):
        return node
    for child in ast.iter_child_nodes(node):
        hit = contains_set_expr(child, env)
        if hit is not None:
            return hit
    return None


# --------------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------------- #
def classify_path(path: Path, root: Optional[Path] = None) -> Tuple[str, str]:
    """Return ``(kind, relpath)`` for a file, relative to the repo root."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        rel = resolved.relative_to(base)
    except ValueError:
        rel = Path(resolved.name)
    parts = rel.parts
    kind = "other"
    if parts:
        if parts[0] in ("src", "benchmarks", "tests"):
            kind = parts[0]
        elif "site-packages" not in parts and "repro" in parts:
            kind = "src"
    return kind, rel.as_posix()


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(
                    part in SKIP_DIRS or part.startswith(".")
                    for part in sub.relative_to(path).parts[:-1]
                ):
                    continue
                yield sub


def load_context(
    path: Path, root: Optional[Path] = None, kind: Optional[str] = None
) -> FileContext:
    text = Path(path).read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    detected_kind, relpath = classify_path(Path(path), root)
    lines = text.splitlines()
    pragmas, _ = parse_allow_pragmas(lines)
    return FileContext(
        path=Path(path),
        relpath=relpath,
        kind=kind or detected_kind,
        text=text,
        tree=tree,
        lines=lines,
        allow_pragmas=pragmas,
    )


def lint_file(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    kind: Optional[str] = None,
) -> LintReport:
    """Lint a single file; ``kind`` overrides path-based rule scoping."""
    if rules is None:
        from repro.lint.rules import default_rules

        rules = default_rules()
    report = LintReport(files_checked=1)
    ctx = load_context(path, root=root, kind=kind)
    _, malformed = parse_allow_pragmas(ctx.lines)
    for lineno, snippet in malformed:
        report.findings.append(
            Finding(
                rule="LNT000",
                path=ctx.relpath,
                line=lineno,
                col=1,
                message="allowlist pragma needs a one-line justification",
                snippet=snippet,
            )
        )
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            pragma = ctx.allow_pragmas.get(finding.line)
            if pragma and finding.rule in pragma[0]:
                report.suppressed.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        snippet=finding.snippet,
                        justification=pragma[1],
                    )
                )
            else:
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` (``lint_fixtures`` excluded)."""
    if rules is None:
        from repro.lint.rules import default_rules

        rules = default_rules()
    report = LintReport()
    for path in iter_python_files(paths):
        sub = lint_file(path, rules=rules, root=root)
        report.files_checked += 1
        report.findings.extend(sub.findings)
        report.suppressed.extend(sub.suppressed)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
