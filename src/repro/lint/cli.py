"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit status is 0 when every rule passes (suppressed findings with a
justified allowlist pragma do not fail the run) and 1 otherwise, so the
smoke script can gate on it directly.  ``--format=json`` emits a stable
machine-readable report for diffing rule counts across revisions;
``--sanitize`` additionally runs the runtime sanitizer sweep and the
cross-``PYTHONHASHSEED`` harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.ast_checks import lint_paths
from repro.lint.rules import default_rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & spawn-safety static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "tests"],
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is stable for automation diffs)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also run the runtime sanitizer sweep and the "
        "cross-PYTHONHASHSEED fingerprint diff",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the active rule set and exit",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  [{','.join(rule.kinds)}]  {rule.description}")
        return 0

    started = time.perf_counter()
    report = lint_paths([Path(p) for p in args.paths], rules=rules)
    elapsed = time.perf_counter() - started

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
        print(f"lint wall time: {elapsed:.2f}s")
    status = 0 if report.ok else 1

    if args.sanitize:
        from repro.lint.sanitizer import run_hashseed_check, run_sanitized_sweep

        sanitized = run_sanitized_sweep()
        print(
            "sanitizer sweep: ok "
            f"({sanitized['observations']['record_send']} payloads, "
            f"{sanitized['observations']['fingerprint']} fingerprints, "
            f"{sanitized['observations']['row']} rows checked)"
        )
        check = run_hashseed_check()
        if check["ok"]:
            seeds = ", ".join(sorted(check["fingerprints"]))
            print(f"hash-seed check: fingerprints identical (PYTHONHASHSEED {seeds})")
        else:
            for line in check["diverging"]:
                print(f"hash-seed check FAILED: {line}", file=sys.stderr)
            status = 1

    return status
