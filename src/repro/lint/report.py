"""Findings and report rendering for :mod:`repro.lint`.

A :class:`Finding` is one rule violation anchored to a file and line.  The
two renderers — compact text for humans, JSON for automation — consume the
same finding list, so ``python -m repro.lint --format=json`` can be diffed
across revisions while the default output stays terminal-friendly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class Finding:
    """One rule violation (or one suppressed-by-allowlist observation)."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    #: set when an allowlist pragma suppressed this finding
    justification: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Any]:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }
        if self.justification:
            data["justification"] = self.justification
        return data


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(f"{finding.location()} {finding.rule} {finding.message}")
            if finding.snippet:
                lines.append(f"    {finding.snippet}")
        for finding in self.suppressed:
            lines.append(
                f"{finding.location()} {finding.rule} allowed: "
                f"{finding.justification}"
            )
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
        )
        if self.suppressed:
            summary += f", {len(self.suppressed)} suppressed by allowlist"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "counts": self.counts(),
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
                "ok": self.ok,
            },
            sort_keys=True,
            indent=2,
        )
