"""Rule registry for :mod:`repro.lint`.

``default_rules()`` assembles one instance of every built-in rule; the CLI
and the test suite both go through it so the active rule set has a single
definition point.
"""

from __future__ import annotations

from typing import List

from repro.lint.ast_checks import Rule
from repro.lint.rules.determinism import (
    IdHashOrderingRule,
    UnorderedIterationRule,
    WallClockAndGlobalRandomRule,
)
from repro.lint.rules.fingerprint_paths import (
    DigestSerialisationRule,
    SetInMessagePayloadRule,
    UnsortedFoldRule,
)
from repro.lint.rules.spawn_safety import SpawnSafetyRule

__all__ = [
    "default_rules",
    "IdHashOrderingRule",
    "UnorderedIterationRule",
    "WallClockAndGlobalRandomRule",
    "DigestSerialisationRule",
    "SetInMessagePayloadRule",
    "UnsortedFoldRule",
    "SpawnSafetyRule",
]


def default_rules() -> List[Rule]:
    return [
        UnorderedIterationRule(),
        WallClockAndGlobalRandomRule(),
        IdHashOrderingRule(),
        DigestSerialisationRule(),
        SetInMessagePayloadRule(),
        UnsortedFoldRule(),
        SpawnSafetyRule(),
    ]
