"""Rule registry for :mod:`repro.lint`.

``default_rules()`` assembles one instance of every built-in rule; the CLI
and the test suite both go through it so the active rule set has a single
definition point.

Per-package scoping
-------------------
Some packages exist precisely to do what a rule forbids.  Rather than
spraying ``# lint: allow[...]`` pragmas over every call site (noise that
drowns the allowlist audit), the registry scopes such a rule *out* of the
package wholesale via :data:`SCOPE_EXEMPTIONS` — rule id to repo-relative
path prefixes, each entry justified in place.  Every other rule still runs
over those files, and the exempted rule still runs everywhere else.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.ast_checks import Rule
from repro.lint.rules.determinism import (
    IdHashOrderingRule,
    UnorderedIterationRule,
    WallClockAndGlobalRandomRule,
)
from repro.lint.rules.fingerprint_paths import (
    DigestSerialisationRule,
    SetInMessagePayloadRule,
    UnsortedFoldRule,
)
from repro.lint.rules.obs_isolation import ObsIsolationRule
from repro.lint.rules.spawn_safety import SpawnSafetyRule

__all__ = [
    "default_rules",
    "SCOPE_EXEMPTIONS",
    "IdHashOrderingRule",
    "UnorderedIterationRule",
    "WallClockAndGlobalRandomRule",
    "DigestSerialisationRule",
    "SetInMessagePayloadRule",
    "UnsortedFoldRule",
    "ObsIsolationRule",
    "SpawnSafetyRule",
]

#: rule id -> repo-relative path prefixes (posix) the rule does not run under.
#: Keep this table small and every entry justified: an exemption here must be
#: *definitional* (the package's purpose conflicts with the rule), never a
#: convenience.
SCOPE_EXEMPTIONS: Dict[str, Tuple[str, ...]] = {
    # The asyncio transport runtime exists to run the protocols on the wall
    # clock: time.monotonic() is its clock source, not an accident.  The
    # observability package exists to timestamp telemetry and compute live
    # rates — wall-clock time is its subject matter, and the OBS001 rule plus
    # the determinism-under-observation battery guarantee none of it can leak
    # back into computation.  The determinism contract is carried by the
    # simulator, which stays fully covered; DET002 still runs over everything
    # else under src/.
    "DET002": ("src/repro/runtime/", "src/repro/obs/"),
}


def default_rules() -> List[Rule]:
    rules: List[Rule] = [
        UnorderedIterationRule(),
        WallClockAndGlobalRandomRule(),
        IdHashOrderingRule(),
        DigestSerialisationRule(),
        SetInMessagePayloadRule(),
        UnsortedFoldRule(),
        SpawnSafetyRule(),
        ObsIsolationRule(),
    ]
    for rule in rules:
        rule.exempt_prefixes = SCOPE_EXEMPTIONS.get(rule.rule_id, ())
    return rules
