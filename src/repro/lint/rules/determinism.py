"""Determinism rules: unordered iteration, wall clocks, unseeded randomness.

These guard the simulator's core contract — a trial's outcome is a pure
function of its spec and derived seed.  Anything that lets hash order, wall
time or interpreter-global RNG state leak into protocol or engine code breaks
byte-identical replay across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.ast_checks import (
    FileContext,
    Rule,
    SetEnv,
    body_is_order_free,
    build_module_env,
    call_func_name,
    consumed_safely,
    function_env,
    is_set_expr,
    unwrap_sorted,
    _target_names,
)
from repro.lint.report import Finding

#: conversions that freeze an iteration order into an ordered value
_ORDER_ESCAPES = frozenset({"list", "tuple", "enumerate", "repr"})


def iter_scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(scope, nodes)`` — each function scope's own nodes only.

    Nested function bodies are excluded from the enclosing scope's node list
    (they form their own scope with their own type environment).
    """
    scopes = [tree] + [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        nodes: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        yield scope, nodes


class UnorderedIterationRule(Rule):
    """DET001 — iteration over a bare set leaks hash/insertion order.

    Flags ``for``-loops and comprehensions whose iterable is definitely a
    ``set``/``frozenset`` (and not wrapped in ``sorted(...)``) unless the
    consumption is provably order-insensitive: the loop body only folds into
    unordered containers / counters, or the comprehension feeds an
    order-insensitive builtin (``sum``/``any``/``min``/``set``/...).
    Also flags ``list()``/``tuple()``/``repr()``/``enumerate()``/``join()``
    over a set, which freeze the arbitrary order into an ordered value.
    """

    rule_id = "DET001"
    description = "unordered set iteration escapes into an ordered result"
    kinds = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_env = build_module_env(ctx.tree)
        parents = ctx.parents()
        flagged: Set[int] = set()

        def emit(node: ast.AST, message: str) -> Iterator[Finding]:
            if id(node) not in flagged:
                flagged.add(id(node))
                yield ctx.finding(self.rule_id, node, message)

        for scope, nodes in iter_scopes(ctx.tree):
            env = (
                module_env
                if isinstance(scope, ast.Module)
                else function_env(scope, module_env)
            )
            for node in nodes:
                if isinstance(node, ast.For):
                    if unwrap_sorted(node.iter) or not is_set_expr(node.iter, env):
                        continue
                    loop_names = _target_names(node.target)
                    if body_is_order_free(node.body, loop_names) and not node.orelse:
                        continue
                    yield from emit(
                        node.iter,
                        "loop over an unordered set with an order-sensitive "
                        "body; iterate sorted(...) or fold commutatively",
                    )
                elif isinstance(
                    node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if unwrap_sorted(gen.iter) or not is_set_expr(gen.iter, env):
                            continue
                        if consumed_safely(node, parents):
                            continue
                        yield from emit(
                            gen.iter,
                            "comprehension over an unordered set escapes its "
                            "iteration order; wrap the set in sorted(...)",
                        )
                elif isinstance(node, ast.Call):
                    name = call_func_name(node)
                    is_escape = (
                        isinstance(node.func, ast.Name) and name in _ORDER_ESCAPES
                    ) or (isinstance(node.func, ast.Attribute) and name == "join")
                    if not is_escape or not node.args:
                        continue
                    if not is_set_expr(node.args[0], env):
                        continue
                    if consumed_safely(node, parents):
                        continue
                    yield from emit(
                        node,
                        f"{name}() over an unordered set freezes an arbitrary "
                        "order; use sorted(...) instead",
                    )


#: ``time`` module functions that read the wall clock (``perf_counter`` and
#: friends are measurement-only and stay allowed in benchmark timing code)
_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns"})
_DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})
#: the only attributes of the ``random`` module deterministic code may touch
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})
#: ``numpy.random`` attributes that construct explicitly seeded generators —
#: everything else (``np.random.seed``, ``np.random.uniform``, ...) drives
#: numpy's interpreter-global RandomState and is as non-deterministic across
#: processes as bare ``random.random()``
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "RandomState",
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)


class WallClockAndGlobalRandomRule(Rule):
    """DET002 — wall-clock reads and interpreter-global RNG calls.

    Trial outcomes must be pure functions of ``(spec, derived_seed)``: a
    seeded ``random.Random`` instance threaded through the call chain is the
    only sanctioned randomness, and simulated time is the only clock.
    """

    rule_id = "DET002"
    description = "wall clock or module-level random.* in deterministic code"
    kinds = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_ALLOWED:
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"'from random import {alias.name}' pulls in the "
                                "interpreter-global RNG; thread a seeded "
                                "random.Random instead",
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_ATTRS:
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"'from time import {alias.name}' reads the wall "
                                "clock; simulated time is the only clock here",
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NUMPY_RANDOM_ALLOWED:
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"'from numpy.random import {alias.name}' pulls "
                                "in numpy's interpreter-global RNG; construct a "
                                "seeded RandomState/Generator instead",
                            )
                continue
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            func = node.func
            base = func.value
            if isinstance(base, ast.Name) and base.id == "random":
                if func.attr not in _RANDOM_ALLOWED:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"random.{func.attr}() uses the interpreter-global RNG; "
                        "thread a seeded random.Random through the call chain",
                    )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("numpy", "np")
            ):
                # np.random.X(...) / numpy.random.X(...): the module-level
                # calls share one hidden global RandomState across the whole
                # process; only explicitly seeded constructors are allowed
                if func.attr not in _NUMPY_RANDOM_ALLOWED:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{base.value.id}.random.{func.attr}() uses numpy's "
                        "interpreter-global RNG; construct a seeded "
                        "RandomState/Generator and call methods on it",
                    )
            elif isinstance(base, ast.Name) and base.id == "time":
                if func.attr in _WALL_CLOCK_ATTRS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"time.{func.attr}() reads the wall clock; trial "
                        "outcomes must be pure functions of the derived seed",
                    )
            elif func.attr in _DATETIME_NOW_ATTRS:
                root = base
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in ("datetime", "date"):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{root.id}.{func.attr}() reads the wall clock; "
                        "deterministic code may not observe real time",
                    )


class IdHashOrderingRule(Rule):
    """DET003 — sorting keyed on ``id()``/``hash()`` is process-dependent.

    ``id()`` is an address and ``hash()`` of str/bytes is randomised by
    ``PYTHONHASHSEED``, so any ordering derived from them differs across
    processes — exactly what the fingerprint contract forbids.
    """

    rule_id = "DET003"
    description = "id()/hash()-keyed ordering"
    kinds = ("src", "benchmarks", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_func_name(node)
            if not (
                (isinstance(node.func, ast.Name) and name == "sorted")
                or (isinstance(node.func, ast.Attribute) and name == "sort")
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                key = keyword.value
                if isinstance(key, ast.Name) and key.id in ("id", "hash"):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"sort keyed on builtin {key.id}; the order differs "
                        "across processes and PYTHONHASHSEED values",
                    )
                elif isinstance(key, ast.Lambda):
                    for sub in ast.walk(key.body):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id in ("id", "hash")
                        ):
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"sort key calls {sub.func.id}(); the order "
                                "differs across processes and PYTHONHASHSEED "
                                "values",
                            )
                            break
