"""Fingerprint-path rules: digest serialisation, payload canonicalisation,
and fold/merge ordering.

The repo's reproducibility contract funnels through a handful of functions:
``Trace._canonical``/``fingerprint``, the ``CellAccumulator`` fold/merge/row
pipeline, the reducer folds, and ``ScheduleTrace.to_json``.  These rules
police exactly those choke points:

* **FP001** — ``json.dumps`` inside a digest function must pass
  ``sort_keys=True`` (dict insertion order differs between the per-trial and
  chunked fold paths, so it may never reach the bytes being hashed);
* **FP002** — message payloads may not contain bare ``set``/``frozenset``
  values: ``Trace._canonical`` serialises payloads via ``repr``, and a set's
  repr order is implementation-defined (hash-seed-dependent for strings).
  Canonicalise with ``tuple(sorted(...))`` before ``self.send``;
* **FP003** — fold/merge/row code may not iterate unsorted dict views or
  sets order-sensitively (the PR 3 rule: float reductions happen over
  ``sorted(counts)`` at ``row()`` time; everything before that must be a
  commutative fold).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.ast_checks import (
    FileContext,
    Rule,
    body_is_order_free,
    build_module_env,
    call_func_name,
    contains_set_expr,
    function_env,
    is_dict_view,
    is_set_expr,
    unwrap_sorted,
    _target_names,
)
from repro.lint.report import Finding

#: function names that form the digest/fold pipeline (checked wherever they
#: appear under src/ — the pipeline is defined by role, not by module list)
SINK_FUNCS = frozenset(
    {
        "fingerprint",
        "aggregate_fingerprint",
        "_canonical",
        "_canonical_trial",
        "_rows_fingerprint",
        "_cell_rows",
        "_digest_sum",
        "_digest_percentile",
        "row",
        "merge",
        "fold",
        "to_json",
    }
)

#: consumers that stay order-insensitive even for float payloads
#: (``sum`` is deliberately absent: float addition is not associative, which
#: is exactly why ``_digest_sum`` walks sorted distinct values)
_FOLD_SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
)


def _sink_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name in SINK_FUNCS
    ]


class DigestSerialisationRule(Rule):
    """FP001 — ``json.dumps`` without ``sort_keys=True`` in a digest function."""

    rule_id = "FP001"
    description = "json.dumps without sort_keys=True in a digest function"
    kinds = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _sink_functions(ctx.tree):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if call_func_name(node) != "dumps":
                    continue
                base = node.func.value if isinstance(node.func, ast.Attribute) else None
                if not (isinstance(base, ast.Name) and base.id == "json"):
                    continue
                sorts = any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
                if not sorts:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"json.dumps in digest function {func.name}() must "
                        "pass sort_keys=True — dict insertion order depends "
                        "on the fold path",
                    )


class SetInMessagePayloadRule(Rule):
    """FP002 — a ``set``/``frozenset`` inside a sent message payload.

    Payload reprs are part of the full-level trace fingerprint, and a set's
    repr order is implementation-defined; emit ``tuple(sorted(...))``.
    """

    rule_id = "FP002"
    description = "unordered set inside a message payload"
    kinds = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_env = build_module_env(ctx.tree)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = function_env(func, module_env)
            # locals bound to an expression that embeds a set (the common
            # `ack = ("C", frozenset(...))` share-one-copy idiom)
            tainted: dict = {}
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        hit = contains_set_expr(node.value, env)
                        if hit is not None:
                            tainted[target.id] = hit
            flagged: Set[int] = set()
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if not (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                ):
                    continue
                for arg in node.args:
                    hit = contains_set_expr(arg, env)
                    if hit is None:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name) and sub.id in tainted:
                                hit = tainted[sub.id]
                                break
                    if hit is not None and id(hit) not in flagged:
                        flagged.add(id(hit))
                        yield ctx.finding(
                            self.rule_id,
                            hit,
                            "message payload contains an unordered set; its "
                            "repr feeds the trace fingerprint — send "
                            "tuple(sorted(...)) instead",
                        )


class UnsortedFoldRule(Rule):
    """FP003 — order-sensitive iteration in fold/merge/row/digest code."""

    rule_id = "FP003"
    description = "unsorted dict-view/set iteration in fold or digest code"
    kinds = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_env = build_module_env(ctx.tree)
        parents = ctx.parents()
        flagged: Set[int] = set()
        for func in _sink_functions(ctx.tree):
            env = function_env(func, module_env)
            for node in ast.walk(func):
                if isinstance(node, ast.For):
                    iterable = node.iter
                    if unwrap_sorted(iterable):
                        continue
                    if not (is_dict_view(iterable) or is_set_expr(iterable, env)):
                        continue
                    loop_names = _target_names(node.target)
                    if body_is_order_free(node.body, loop_names) and not node.orelse:
                        continue
                    if id(iterable) in flagged:
                        continue
                    flagged.add(id(iterable))
                    yield ctx.finding(
                        self.rule_id,
                        iterable,
                        f"{func.name}() iterates an unsorted collection with "
                        "an order-sensitive body; reduce over sorted(...) "
                        "(digests sort at row() time) or fold commutatively",
                    )
                elif isinstance(
                    node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        iterable = gen.iter
                        if unwrap_sorted(iterable):
                            continue
                        if not (
                            is_dict_view(iterable) or is_set_expr(iterable, env)
                        ):
                            continue
                        parent = parents.get(node)
                        if (
                            isinstance(parent, ast.Call)
                            and node in parent.args
                            and call_func_name(parent) in _FOLD_SAFE_CONSUMERS
                        ):
                            continue
                        if id(iterable) in flagged:
                            continue
                        flagged.add(id(iterable))
                        yield ctx.finding(
                            self.rule_id,
                            iterable,
                            f"{func.name}() builds an ordered value from an "
                            "unsorted collection; iterate sorted(...) so the "
                            "bytes are a pure function of the contents",
                        )
