"""OBS001 — observability must stay out of band.

The obs package (:mod:`repro.obs`) may *watch* the deterministic layers but
must never be able to *influence* them: a ``repro.obs`` import inside the
simulator, the protocol implementations, or the spec/results modules of the
sweep engine would let telemetry state leak into computation — the exact
failure mode the determinism-under-observation test battery exists to catch,
caught here statically instead.

Obs objects reach deterministic code only as duck-typed constructor
arguments (``ClusterConfig.tracer``, ``LocalTransport(metrics=...)``), so
those layers compile against nothing.  The sanctioned import sites are the
engine's lazy hooks (:mod:`repro.exp.engine` resolves ``progress=`` and the
``REPRO_PROFILE`` wrapper on demand), the CLI/analysis layers, and the obs
package itself — none of which are protected prefixes below.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.ast_checks import FileContext, Rule
from repro.lint.report import Finding

#: repo-relative prefixes (and exact files) where a repro.obs import is a
#: layering violation: everything a trial's outcome is a pure function of
PROTECTED_PREFIXES: Tuple[str, ...] = (
    "src/repro/sim/",
    "src/repro/core/",
    "src/repro/protocols/",
    "src/repro/consensus/",
    "src/repro/env",
    "src/repro/db/",
    "src/repro/exp/spec.py",
    "src/repro/exp/results.py",
)

_OBS_PACKAGE = "repro.obs"


def _is_protected(rel_path: str) -> bool:
    return any(
        rel_path == prefix or rel_path.startswith(prefix)
        for prefix in PROTECTED_PREFIXES
    )


class ObsIsolationRule(Rule):
    """OBS001 — deterministic layers must not import the obs package."""

    rule_id = "OBS001"
    description = "deterministic layer imports repro.obs (observability must stay out of band)"
    kinds = ("src",)

    def applies_to(self, ctx: FileContext) -> bool:
        return super().applies_to(ctx) and _is_protected(ctx.relpath)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _OBS_PACKAGE or alias.name.startswith(
                        _OBS_PACKAGE + "."
                    ):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"import of {alias.name!r} from a deterministic "
                            f"layer; hand obs objects in as duck-typed "
                            f"arguments instead (e.g. ClusterConfig.tracer)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and (
                    module == _OBS_PACKAGE
                    or module.startswith(_OBS_PACKAGE + ".")
                    or (
                        module == "repro"
                        and any(alias.name == "obs" for alias in node.names)
                    )
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"import from {module or 'repro'!r} pulls repro.obs "
                        f"into a deterministic layer; hand obs objects in as "
                        f"duck-typed arguments instead (e.g. "
                        f"ClusterConfig.tracer)",
                    )


__all__ = ["ObsIsolationRule", "PROTECTED_PREFIXES"]
