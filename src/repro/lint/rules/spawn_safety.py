"""Spawn-safety rule and the shared spec-field rule table.

The sweep engine's ``spawn`` start method pickles every spec component, so a
lambda (or a function defined inside another function) in a spec field dies
at the pool boundary.  :data:`SPAWN_AXIS_FIELDS` is the single source of
truth for *which* fields must survive pickling: the static rule here scans
the same fields the runtime check (:func:`repro.exp.engine.ensure_spawn_safe`)
pickles, so the two checks cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.ast_checks import FileContext, Rule, call_func_name
from repro.lint.report import Finding

#: GridSpec axis field -> TrialSpec attribute.  Shared rule table: the
#: runtime check iterates these (field, attr) pairs and pickles each spec;
#: the static rule flags lambdas/local closures in calls that build them.
SPAWN_AXIS_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("protocols", "protocol"),
    ("delays", "delay"),
    ("faults", "fault"),
    ("votes", "votes"),
    ("workloads", "workload"),
    ("schedules", "schedule"),
)

#: constructor/registration calls whose arguments become spec fields and
#: therefore must be picklable end to end
SPEC_CALLS = frozenset(
    {
        "GridSpec",
        "TrialSpec",
        "make_cases",
        "ProtocolSpec",
        "DelaySpec",
        "FaultSpec",
        "VoteSpec",
        "WorkloadSpec",
        "ScheduleSpec",
        "DelayRule",
        "FaultPlan",
        "named_delay",
        "named_workload",
        "register_delay_model",
        "register_workload",
        "register_reducer",
        "register_strategy",
    }
)

#: engine entry points where only specific keywords cross the pool boundary
RUN_CALL_KEYWORDS: Dict[str, Set[str]] = {
    "run_sweep": {"collector", "reducer"},
    "run_trials": {"collector", "reducer"},
}


def _local_def_names(tree: ast.Module) -> Dict[ast.AST, Set[str]]:
    """Per enclosing function: names of functions defined *inside* it."""
    out: Dict[ast.AST, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = {
                sub.name
                for stmt in node.body
                for sub in ast.walk(stmt)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            out[node] = inner
    return out


class SpawnSafetyRule(Rule):
    """SP001 — lambda / local closure in a spec field.

    Such values cannot cross a ``spawn`` process boundary; use a
    registry-named factory (``named_delay``/``named_workload``/register_*)
    or a module-level callable instead.  The fields scanned are exactly the
    ones :func:`repro.exp.engine.ensure_spawn_safe` pickles at runtime.
    """

    rule_id = "SP001"
    description = "non-picklable value (lambda/local closure) in a spec field"
    kinds = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        local_defs = _local_def_names(ctx.tree)
        flagged: Set[int] = set()
        # which function each node sits in, to resolve local-closure refs
        for func, inner_names in [(None, set())] + list(local_defs.items()):
            nodes = (
                ast.walk(ctx.tree)
                if func is None
                else (n for stmt in func.body for n in ast.walk(stmt))
            )
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                name = call_func_name(node)
                if name in SPEC_CALLS:
                    values = list(node.args) + [kw.value for kw in node.keywords]
                elif name in RUN_CALL_KEYWORDS:
                    wanted = RUN_CALL_KEYWORDS[name]
                    values = [
                        kw.value for kw in node.keywords if kw.arg in wanted
                    ]
                else:
                    continue
                for value in values:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Lambda):
                            if id(sub) in flagged:
                                continue
                            flagged.add(id(sub))
                            yield ctx.finding(
                                self.rule_id,
                                sub,
                                f"lambda in a {name}(...) spec field cannot "
                                "cross a spawn process boundary; use a "
                                "registry-named factory or a module-level "
                                "callable",
                            )
                        elif (
                            func is not None
                            and isinstance(sub, ast.Name)
                            and sub.id in inner_names
                        ):
                            if id(sub) in flagged:
                                continue
                            flagged.add(id(sub))
                            yield ctx.finding(
                                self.rule_id,
                                sub,
                                f"locally-defined function {sub.id!r} in a "
                                f"{name}(...) spec field cannot cross a spawn "
                                "process boundary; move it to module level",
                            )
