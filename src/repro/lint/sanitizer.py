"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The static rules in :mod:`repro.lint.rules` catch the *patterns* that break
the fingerprint contract; this module catches the *behaviour*.  Two parts:

1. **Order-perturbation wrappers** — :func:`install` monkey-patches the
   digest pipeline so that every ``Trace.fingerprint()`` and
   ``CellAccumulator.row()`` is recomputed from a clone whose dicts were
   rebuilt in reversed insertion order.  If the bytes change, the result
   depended on insertion order (which differs between the per-trial and
   chunked fold paths) and a :class:`~repro.errors.DeterminismError` is
   raised naming the diverging field.  ``record_send`` is also wrapped to
   reject payloads carrying bare ``set``/``frozenset`` values — their repr
   order is implementation-defined and feeds the full-level fingerprint.

2. **Hash-seed harness** — :func:`run_hashseed_check` re-runs a small
   reference sweep plus one schedule replay in subprocesses under two
   different ``PYTHONHASHSEED`` values (and under serial/fork/spawn pools)
   and diffs every fingerprint.  Any divergence means hash order leaked
   into the bytes.

``repro/__init__`` calls :func:`maybe_install` at import time, so setting
``REPRO_SANITIZE=1`` in the environment sanitizes spawn pool workers too —
they re-import :mod:`repro` and re-arm the wrappers themselves.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: environment variable that arms the sanitizer
ENV_FLAG = "REPRO_SANITIZE"

#: originals saved by install(), keyed by (class, attribute name)
_originals: Dict[Tuple[type, str], Any] = {}

#: how many checks each wrapper ran (for tests and reporting)
observations: Dict[str, int] = {"fingerprint": 0, "record_send": 0, "row": 0}


def is_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") == "1"


def is_installed() -> bool:
    return bool(_originals)


def maybe_install() -> bool:
    """Arm the wrappers iff ``REPRO_SANITIZE=1``; returns whether armed."""
    if is_enabled():
        install()
        return True
    return False


# --------------------------------------------------------------------------- #
# payload canonicalisation check
# --------------------------------------------------------------------------- #
def _find_unordered(value: Any, depth: int = 0) -> Optional[Any]:
    """First ``set``/``frozenset`` nested anywhere inside ``value``."""
    if isinstance(value, (set, frozenset)):
        return value
    if depth > 6:
        return None
    if isinstance(value, (tuple, list)):
        for item in value:
            hit = _find_unordered(item, depth + 1)
            if hit is not None:
                return hit
    elif isinstance(value, dict):
        for key, item in value.items():
            hit = _find_unordered(key, depth + 1)
            if hit is None:
                hit = _find_unordered(item, depth + 1)
            if hit is not None:
                return hit
    return None


def _reversed_dict(d: Dict[Any, Any]) -> Dict[Any, Any]:
    return dict(reversed(list(d.items())))


def _perturbed_trace(trace: Any) -> Any:
    """Shallow clone with every internal dict rebuilt in reversed order."""
    import copy

    clone = copy.copy(trace)
    for attr in ("decisions", "proposals", "crashes", "module_counts",
                 "recv_time_counts", "metadata"):
        value = getattr(clone, attr, None)
        if isinstance(value, dict):
            setattr(clone, attr, _reversed_dict(value))
    return clone


def _first_divergence(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    for key in sorted(set(a) | set(b)):
        if json.dumps(a.get(key), sort_keys=True, default=str) != json.dumps(
            b.get(key), sort_keys=True, default=str
        ):
            return key
    return "<unknown>"


# --------------------------------------------------------------------------- #
# install / uninstall
# --------------------------------------------------------------------------- #
def install() -> None:
    """Wrap the digest pipeline with order-perturbation checks (idempotent)."""
    if _originals:
        return
    from repro.errors import DeterminismError
    from repro.exp.results import CellAccumulator
    from repro.sim.trace import CounterTrace, Trace

    orig_fingerprint = Trace.fingerprint
    orig_send_full = Trace.record_send
    orig_send_counters = CounterTrace.record_send
    orig_row = CellAccumulator.row

    def checked_fingerprint(self):
        observations["fingerprint"] += 1
        fingerprint = orig_fingerprint(self)
        perturbed = orig_fingerprint(_perturbed_trace(self))
        if perturbed != fingerprint:
            key = _first_divergence(
                self._canonical(), _perturbed_trace(self)._canonical()
            )
            raise DeterminismError(
                f"{type(self).__name__}.fingerprint() depends on dict "
                f"insertion order (diverges at {key!r}); canonicalise with "
                f"sorted(...) in _canonical (src/repro/sim/trace.py)"
            )
        return fingerprint

    def _checked_send(orig):
        def checked_record_send(self, msg_id, src, dst, payload, send_time,
                                recv_time, counted, module="main"):
            observations["record_send"] += 1
            unordered = _find_unordered(payload)
            if unordered is not None:
                raise DeterminismError(
                    f"protocol {self.protocol or '?'} sent a payload "
                    f"containing an unordered {type(unordered).__name__} "
                    f"({payload!r}); its repr feeds the trace fingerprint — "
                    f"send tuple(sorted(...)) instead"
                )
            return orig(self, msg_id, src, dst, payload, send_time,
                        recv_time, counted, module=module)

        return checked_record_send

    def checked_row(self):
        observations["row"] += 1
        row = orig_row(self)
        clone = CellAccumulator.__new__(type(self))
        for slot in CellAccumulator.__slots__:
            value = getattr(self, slot)
            if isinstance(value, dict):
                value = _reversed_dict(value)
            setattr(clone, slot, value)
        perturbed = orig_row(clone)
        if perturbed != row:
            column = _first_divergence(row, perturbed)
            raise DeterminismError(
                f"{type(self).__name__}.row() depends on digest insertion "
                f"order (column {column!r} diverges); reduce over "
                f"sorted(counts) at row() time (src/repro/exp/results.py)"
            )
        return row

    _originals[(Trace, "fingerprint")] = orig_fingerprint
    _originals[(Trace, "record_send")] = orig_send_full
    _originals[(CounterTrace, "record_send")] = orig_send_counters
    _originals[(CellAccumulator, "row")] = orig_row
    Trace.fingerprint = checked_fingerprint
    Trace.record_send = _checked_send(orig_send_full)
    CounterTrace.record_send = _checked_send(orig_send_counters)
    CellAccumulator.row = checked_row


def uninstall() -> None:
    """Restore the unwrapped methods (test hygiene)."""
    for (cls, name), original in _originals.items():
        setattr(cls, name, original)
    _originals.clear()


# --------------------------------------------------------------------------- #
# reference probe (run in subprocesses under controlled PYTHONHASHSEED)
# --------------------------------------------------------------------------- #
#: the schedule decisions of the reference replay: crash the 2PC coordinator
#: at its collect timer (the canonical blocking counterexample)
_REPLAY_DECISIONS = ((9, "crash", 1),)


def probe(start_methods: Sequence[str] = ("serial",)) -> Dict[str, str]:
    """Fingerprints of a small reference sweep + one schedule replay.

    Pure function of the installed code and ``PYTHONHASHSEED`` — the
    hash-seed harness runs it twice under different seeds and diffs the
    returned dict.  ``start_methods`` selects which execution paths compute
    the sweep ("serial", "fork", "spawn"); every path must agree with every
    other, so each contributes its own entries.
    """
    from repro.exp import GridSpec, run_sweep, run_trials
    from repro.exp.spec import ScheduleSpec

    def sweep_grid():
        return GridSpec(
            protocols=["INBAC", "2PC"],
            systems=[(5, 2)],
            delays=["uniform"],
            votes=["all-yes", "one-no:3"],
            seeds=range(4),
        )

    def replay_grid():
        return GridSpec(
            protocols=["2PC"],
            systems=[(5, 2)],
            schedules=[
                ScheduleSpec(
                    label="replay",
                    strategy="replay",
                    params=(("decisions", _REPLAY_DECISIONS),),
                )
            ],
            seeds=[0],
            trace_level="full",
        )

    fingerprints: Dict[str, str] = {}
    for method in start_methods:
        workers = 1 if method == "serial" else 2
        start = None if method == "serial" else method
        sweep = run_sweep(sweep_grid(), workers=workers, start_method=start)
        fingerprints[f"{method}:aggregate"] = sweep.aggregate_fingerprint()
        fingerprints[f"{method}:trials"] = sweep.fingerprint()
        replay = run_trials(
            replay_grid().trials(), workers=1, mode="full", trace_level="full"
        )
        fingerprints[f"{method}:replay"] = replay.trials[0].extra[
            "trace_fingerprint"
        ]
    return fingerprints


def run_hashseed_check(
    seeds: Sequence[int] = (101, 202),
    start_methods: Sequence[str] = ("serial",),
) -> Dict[str, Any]:
    """Run :func:`probe` in one subprocess per hash seed and diff the bytes.

    Returns ``{"ok": bool, "fingerprints": {seed: {...}}, "diverging": [...]}``.
    """
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    results: Dict[str, Dict[str, str]] = {}
    for seed in seeds:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint.sanitizer",
                "--probe",
                "--start-methods",
                ",".join(start_methods),
            ],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"hash-seed probe failed under PYTHONHASHSEED={seed}:\n"
                f"{proc.stdout}\n{proc.stderr}"
            )
        results[str(seed)] = json.loads(proc.stdout)
    reference = results[str(seeds[0])]
    diverging: List[str] = []
    for seed in seeds[1:]:
        for key, value in results[str(seed)].items():
            if reference.get(key) != value:
                diverging.append(f"PYTHONHASHSEED {seeds[0]} vs {seed}: {key}")
    # every start method must also agree within one seed
    for seed_key, fingerprints in results.items():
        by_metric: Dict[str, set] = {}
        for key, value in fingerprints.items():
            metric = key.split(":", 1)[1]
            by_metric.setdefault(metric, set()).add(value)
        for metric, values in sorted(by_metric.items()):
            if len(values) > 1:
                diverging.append(
                    f"PYTHONHASHSEED {seed_key}: {metric} differs across "
                    f"start methods"
                )
    return {"ok": not diverging, "fingerprints": results, "diverging": diverging}


def run_sanitized_sweep() -> Dict[str, Any]:
    """Run the reference sweep with the wrappers armed (in-process)."""
    was_installed = is_installed()
    install()
    try:
        fingerprints = probe(start_methods=("serial",))
    finally:
        if not was_installed:
            uninstall()
    return {
        "fingerprints": fingerprints,
        "observations": dict(observations),
    }


def _main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro.lint.sanitizer")
    parser.add_argument("--probe", action="store_true")
    parser.add_argument("--start-methods", default="serial")
    args = parser.parse_args(argv)
    if args.probe:
        methods = [m.strip() for m in args.start_methods.split(",") if m.strip()]
        print(json.dumps(probe(start_methods=methods), sort_keys=True))
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(_main())
