"""repro.obs — out-of-band telemetry, tracing, and live sweep progress.

Everything under this package observes; nothing here may influence what the
simulator, the runtimes, or the sweep engine compute.  The contract is
enforced from both sides:

* the OBS001 lint rule forbids deterministic layers (``repro.sim``,
  ``repro.core``, ``repro.protocols``, ``repro.consensus``, and the spec /
  results modules of ``repro.exp``) from importing this package — obs
  objects reach them only as duck-typed constructor arguments
  (``ClusterConfig.tracer``, ``LocalTransport(metrics=...)``);
* the determinism-under-observation battery pins that sweep aggregates and
  trace fingerprints are byte-identical with observability on and off,
  across trace levels, fold paths, and start methods.

In exchange, this package is scoped *out* of the DET002 wall-clock rule:
telemetry timestamps, rates, and profiler clocks are its purpose.

Modules: :mod:`~repro.obs.metrics` (counters/gauges/histograms with exact
merges), :mod:`~repro.obs.events` (structured event bus + sinks),
:mod:`~repro.obs.progress` (the ``run_sweep(progress=...)`` protocol),
:mod:`~repro.obs.tracing` (transaction spans + Chrome trace-event export),
:mod:`~repro.obs.export` (the export CLI), :mod:`~repro.obs.profile`
(``REPRO_PROFILE`` cProfile hooks and the folding report CLI).
"""

from repro.obs.events import (
    Event,
    EventBus,
    JsonlSink,
    MemorySink,
    SINK_KINDS,
    SinkSpec,
    StderrSink,
    read_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.progress import (
    CollectingProgress,
    JsonlProgressReporter,
    MetricsProgressReporter,
    PROGRESS_PHASES,
    ProgressCallback,
    ProgressEvent,
    TTYProgressReporter,
    resolve_progress,
)
from repro.obs.tracing import CHROME_US_PER_UNIT, Span, TXN_PHASES, TraceContext

__all__ = [
    "CHROME_US_PER_UNIT",
    "CollectingProgress",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlProgressReporter",
    "JsonlSink",
    "MemorySink",
    "MetricsProgressReporter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PROGRESS_PHASES",
    "ProgressCallback",
    "ProgressEvent",
    "SINK_KINDS",
    "SinkSpec",
    "Span",
    "StderrSink",
    "TTYProgressReporter",
    "TXN_PHASES",
    "TraceContext",
    "read_jsonl",
    "resolve_progress",
]
