"""The structured event bus and its pluggable sinks.

An :class:`Event` is a name plus a flat dict of plain-data fields and a wall
clock timestamp (this package is scoped out of the DET002 wall-clock rule —
telemetry timestamps are its purpose).  An :class:`EventBus` fans each event
out to its sinks:

* :class:`MemorySink` — in-process list, for tests;
* :class:`StderrSink` — one compact line per event;
* :class:`JsonlSink` — one ``json.dumps(..., sort_keys=True)`` line per
  event, appended to a file: the format the smoke stage and the progress
  reporters validate.

Sink *configuration* is carried by :class:`SinkSpec` — a frozen plain-data
record (kind + path), picklable by construction, so it can sit in a spawn
pool's init arguments or a service config without dragging file handles
across a process boundary; ``build()`` opens the actual sink in whichever
process uses it.

Everything here is out of band: events never feed a trace or sweep
fingerprint (the OBS001 rule and the determinism-under-observation battery
enforce it).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass
class Event:
    """One structured telemetry record."""

    name: str
    #: wall-clock seconds (time.time) at emission
    wall_time: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"event": self.name, "wall_time": self.wall_time}
        for key in sorted(self.fields):
            record[key] = self.fields[key]
        return record


class MemorySink:
    """Collects events in a list (tests and programmatic inspection)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def names(self) -> List[str]:
        return [event.name for event in self.events]

    def close(self) -> None:
        pass


class StderrSink:
    """One compact ``name key=value ...`` line per event."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: Event) -> None:
        parts = [event.name] + [
            f"{key}={event.fields[key]}" for key in sorted(event.fields)
        ]
        self.stream.write("[obs] " + " ".join(parts) + "\n")

    def close(self) -> None:
        pass


class JsonlSink:
    """One sorted-keys JSON object per line, appended to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, event: Event) -> None:
        self._handle.write(
            json.dumps(event.to_jsonable(), sort_keys=True, default=str) + "\n"
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


#: the sink kinds SinkSpec.build understands
SINK_KINDS = ("memory", "stderr", "jsonl")


@dataclass(frozen=True)
class SinkSpec:
    """Plain-data sink configuration (picklable; see module docstring)."""

    kind: str = "stderr"
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SINK_KINDS:
            raise ConfigurationError(
                f"unknown sink kind {self.kind!r}; expected one of {SINK_KINDS}"
            )
        if self.kind == "jsonl" and not self.path:
            raise ConfigurationError("a jsonl sink needs a path")

    def build(self):
        if self.kind == "memory":
            return MemorySink()
        if self.kind == "jsonl":
            return JsonlSink(self.path)
        return StderrSink()


class EventBus:
    """Fans structured events out to zero or more sinks."""

    def __init__(self, sinks: Optional[List[Any]] = None) -> None:
        self.sinks: List[Any] = list(sinks or [])
        self.emitted = 0

    def add_sink(self, sink: Any) -> Any:
        self.sinks.append(sink)
        return sink

    def emit(self, name: str, **fields: Any) -> Event:
        event = Event(name=name, wall_time=time.time(), fields=fields)
        self.emitted += 1
        for sink in self.sinks:
            sink.emit(event)
        return event

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines event file back into dicts (validation helper)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


__all__ = [
    "Event",
    "EventBus",
    "JsonlSink",
    "MemorySink",
    "SINK_KINDS",
    "SinkSpec",
    "StderrSink",
    "read_jsonl",
]
