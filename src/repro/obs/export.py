"""Chrome trace-event export: ``python -m repro.obs.export --chrome trace.json``.

Runs one fixed-seed cluster workload with a :class:`~repro.obs.tracing.
TraceContext` attached and writes the resulting per-phase transaction spans
as Chrome trace-event JSON — open the file in ``chrome://tracing`` (or
Perfetto's legacy loader) to see where each commit's time went, phase by
phase, process by process.

``--backend sim`` (default) runs the deterministic simulator: the same seed
always exports the same bytes, which is what the golden test pins.
``--backend asyncio`` runs the wall-clock transport runtime: span durations
are real milliseconds (scaled to units of U), different on every run — the
point of the runtime — while the *structure* (every committed transaction
carries EXEC / PREPARE-vote / decision / DONE spans) is invariant.

The module is also the programmatic seam: :func:`traced_cluster_run` returns
``(report, tracer)`` for tests and notebooks, and :func:`write_chrome` dumps
any tracer to a file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence, Tuple

from repro.obs.tracing import TraceContext


def traced_cluster_run(
    protocol: str = "2PC",
    partitions: int = 3,
    txns: int = 4,
    seed: int = 7,
    backend: str = "sim",
    max_time: float = 400.0,
):
    """Run one traced cluster workload; returns ``(report, tracer)``."""
    # imported lazily so `python -m repro.obs.export --help` stays instant
    from repro.db.cluster import ClusterConfig, run_cluster
    from repro.workloads import uniform_workload

    tracer = TraceContext(clock="units" if backend == "sim" else "wall-units")
    config = ClusterConfig(
        num_partitions=partitions,
        commit_protocol=protocol,
        commit_f=1,
        seed=seed,
        max_time=max_time,
        tracer=tracer,
    )
    workload = uniform_workload(
        num_transactions=txns,
        num_partitions=partitions,
        participants_per_txn=min(3, partitions),
        seed=seed,
    )
    report = run_cluster(config, workload.transactions, backend=backend)
    return report, tracer


def write_chrome(tracer: TraceContext, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tracer.chrome_json())
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export a traced cluster run as Chrome trace-event JSON.",
    )
    parser.add_argument("--chrome", metavar="PATH", required=True,
                        help="where to write the trace-event JSON")
    parser.add_argument("--backend", choices=("sim", "asyncio"), default="sim",
                        help="sim (deterministic, default) or asyncio (wall clock)")
    parser.add_argument("--protocol", default="2PC",
                        help="commit protocol registry name (default: 2PC)")
    parser.add_argument("--partitions", type=int, default=3)
    parser.add_argument("--txns", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    report, tracer = traced_cluster_run(
        protocol=args.protocol,
        partitions=args.partitions,
        txns=args.txns,
        seed=args.seed,
        backend=args.backend,
    )
    write_chrome(tracer, args.chrome)
    summary = {
        "backend": report.backend,
        "protocol": report.protocol,
        "txns": len(report.outcomes),
        "committed": report.committed,
        "spans": len(tracer.spans),
        "transactions_traced": len(tracer.transaction_ids()),
        "out": args.chrome,
    }
    print(json.dumps(summary, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
