"""Process-local metrics: counters, gauges and histograms with exact merges.

A :class:`MetricsRegistry` is a plain dictionary of named instruments.  Its
design mirrors the sweep engine's :class:`~repro.exp.results.CellAccumulator`
discipline — the repo's reference pattern for statistics that must not care
about arrival order:

* counters are integer tallies (addition commutes);
* gauges merge by ``max`` (the only commutative, associative, idempotent
  reduction that needs no timestamps);
* histograms keep a value -> multiplicity digest and reduce (sum, mean,
  percentiles) over ``sorted(...)`` items only at read time, so two
  snapshots merged in either order produce byte-identical summaries.

A :class:`MetricsSnapshot` is the frozen, picklable export of a registry:
plain dicts, safe to ship across a process boundary or serialise with
``json.dumps(..., sort_keys=True)``.  ``snapshot_a.merge(snapshot_b)`` is
exact — the same guarantee :meth:`CellAccumulator.merge` gives chunk folds.

Everything here is strictly out of band: nothing in this module is allowed
to feed a trace or sweep fingerprint (enforced by the OBS001 lint rule and
the determinism-under-observation test battery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing integer tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time float measurement (last write wins locally)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A value -> multiplicity digest (exact, order-independent).

    ``observe`` folds one measurement; summaries reduce over ``sorted``
    digest items at read time, mirroring the ``_digest_percentile`` helper
    in :mod:`repro.exp.results` so the same data always yields the same
    bytes regardless of observation order.
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts: Dict[float, int] = {}
        self.total = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[value] = self.counts.get(value, 0) + 1
        self.total += 1

    def sum(self) -> float:
        return sum(value * count for value, count in sorted(self.counts.items()))

    def mean(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.sum() / self.total

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the digest (exact, byte-stable)."""
        if self.total == 0:
            return None
        rank = max(1, int(round(q / 100.0 * self.total)))
        cumulative = 0
        for value, count in sorted(self.counts.items()):
            cumulative += count
            if cumulative >= rank:
                return value
        return sorted(self.counts)[-1]  # pragma: no cover - rank <= total


@dataclass
class MetricsSnapshot:
    """Frozen, picklable export of a registry; merges exactly."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[float, int]] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> None:
        """Fold ``other`` in; commutative and associative like the cell folds."""
        for name in sorted(other.counters):
            self.counters[name] = self.counters.get(name, 0) + other.counters[name]
        for name in sorted(other.gauges):
            mine = self.gauges.get(name)
            theirs = other.gauges[name]
            self.gauges[name] = theirs if mine is None else max(mine, theirs)
        for name in sorted(other.histograms):
            digest = self.histograms.setdefault(name, {})
            for value, count in sorted(other.histograms[name].items()):
                digest[value] = digest.get(value, 0) + count

    def histogram_summary(self, name: str) -> Dict[str, Optional[float]]:
        histogram = Histogram()
        for value, count in sorted(self.histograms.get(name, {}).items()):
            histogram.counts[value] = count
            histogram.total += count
        return {
            "count": float(histogram.total),
            "mean": histogram.mean(),
            "p50": histogram.percentile(50),
            "p99": histogram.percentile(99),
        }

    def to_jsonable(self) -> Dict[str, object]:
        """Sorted plain-data rendering (JSON keys must be strings)."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: [
                    [value, count]
                    for value, count in sorted(self.histograms[name].items())
                ]
                for name in sorted(self.histograms)
            },
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use.

    Process-local and lock-free: both runtimes drive handlers from a single
    thread (the simulator's event loop or asyncio's), so plain dict updates
    are safe.  ``snapshot()`` exports the current state as plain data.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------- #
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- shorthand record paths --------------------------------------------- #
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- export -------------------------------------------------------------- #
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={
                name: self._counters[name].value for name in sorted(self._counters)
            },
            gauges={
                name: self._gauges[name].value
                for name in sorted(self._gauges)
                if self._gauges[name].value is not None
            },
            histograms={
                name: dict(sorted(self._histograms[name].counts.items()))
                for name in sorted(self._histograms)
            },
        )

    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def names(self) -> List[Tuple[str, str]]:
        """Every registered instrument as sorted ``(kind, name)`` pairs."""
        entries = (
            [("counter", name) for name in self._counters]
            + [("gauge", name) for name in self._gauges]
            + [("histogram", name) for name in self._histograms]
        )
        return sorted(entries)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]
