"""Opt-in sweep profiling: ``REPRO_PROFILE=1`` + ``python -m repro.obs.profile``.

When the environment variable ``REPRO_PROFILE`` is truthy, the sweep engine
wraps each unit of work — a chunk fold in the streaming path, a serial trial
loop otherwise — in :class:`cProfile.Profile` and dumps one ``.prof`` file
per unit into ``REPRO_PROFILE_DIR`` (default ``.repro_profile/``).  Dumping
happens in whatever process ran the work, so pooled runs produce one file
per (process, chunk) pair; filenames carry ``os.getpid()`` plus a
per-process sequence number to stay collision-free.

Profiling is observability, not measurement: it perturbs wall-clock timings
(so benchmarks refuse to certify overhead bars under it) but never the
aggregates — the determinism battery runs a profiled sweep and checks the
fingerprint is unchanged.

``python -m repro.obs.profile [DIR]`` folds every ``.prof`` file in DIR into
one :class:`pstats.Stats` report, sorted by cumulative time by default.
"""

from __future__ import annotations

import argparse
import cProfile
import glob
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

#: environment flag that turns sweep profiling on
ENV_FLAG = "REPRO_PROFILE"

#: environment variable overriding where .prof dumps land
ENV_DIR = "REPRO_PROFILE_DIR"

#: default dump directory (relative to the working directory)
DEFAULT_DIR = ".repro_profile"

_SORT_KEYS = ("cumulative", "tottime", "calls", "ncalls", "filename", "name")

# per-process sequence number so parallel chunks in one worker don't collide
_sequence = 0


def is_enabled(environ=None) -> bool:
    """True when ``REPRO_PROFILE`` is set to a non-empty, non-"0" value."""
    environ = os.environ if environ is None else environ
    value = environ.get(ENV_FLAG, "")
    return value not in ("", "0", "false", "False")


def profile_dir(environ=None) -> str:
    environ = os.environ if environ is None else environ
    return environ.get(ENV_DIR, "") or DEFAULT_DIR


@contextmanager
def profiled(label: str, directory: Optional[str] = None) -> Iterator[None]:
    """Profile the enclosed block and dump stats to ``DIR/label-pid-seq.prof``."""
    global _sequence
    directory = profile_dir() if directory is None else directory
    os.makedirs(directory, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        _sequence += 1
        path = os.path.join(
            directory, f"{label}-{os.getpid()}-{_sequence:04d}.prof"
        )
        profiler.dump_stats(path)


def fold_profiles(directory: str) -> Optional[pstats.Stats]:
    """Merge every ``.prof`` file under ``directory``; None when there are none."""
    paths = sorted(glob.glob(os.path.join(directory, "*.prof")))
    if not paths:
        return None
    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    return stats


def render_report(
    stats: pstats.Stats, sort: str = "cumulative", limit: int = 25
) -> str:
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats(sort).print_stats(limit)
    return buffer.getvalue()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Fold REPRO_PROFILE .prof dumps into one sortable report.",
    )
    parser.add_argument(
        "directory", nargs="?", default=None,
        help=f"dump directory (default: ${ENV_DIR} or {DEFAULT_DIR}/)",
    )
    parser.add_argument("--sort", choices=_SORT_KEYS, default="cumulative")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows to print (default: 25)")
    args = parser.parse_args(argv)

    directory = args.directory if args.directory is not None else profile_dir()
    stats = fold_profiles(directory)
    if stats is None:
        print(f"no .prof files under {directory!r}; "
              f"run a sweep with {ENV_FLAG}=1 first", file=sys.stderr)
        return 1
    print(render_report(stats, sort=args.sort, limit=args.limit), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
