"""Live sweep progress: the ``run_sweep(progress=...)`` callback protocol.

The engine (:mod:`repro.exp.engine`) emits :class:`ProgressEvent` records at
its sanctioned hook points — one ``start``, one per completed chunk (or
per-trial batch), one ``summary`` — always from the *parent* process, after
results have crossed the worker queue.  Two consequences, both load-bearing:

* progress callbacks never cross a process boundary, so closures are fine
  even under the ``spawn`` start method (the spec itself still has to be
  spawn-safe, exactly as without progress);
* the engine hands over raw counts only.  Rates and elapsed time are
  computed *here*, on the reporter's own clock — the engine stays under the
  DET002 wall-clock rule while this package is scoped out of it.

Reporters are plain callables taking one :class:`ProgressEvent`:

* :class:`TTYProgressReporter` — a live one-line display on a stream;
* :class:`JsonlProgressReporter` — one JSON line per event (the format the
  smoke stage validates), enriched with ``elapsed_s`` and ``trials_per_s``;
* :class:`MetricsProgressReporter` — counters/gauges only, the cheapest
  variant (the ≤5 % overhead bar in ``benchmarks/bench_obs_overhead.py`` is
  measured against it).

``resolve_progress`` turns the string forms ``"tty"`` and ``"jsonl:PATH"``
into reporters so CLI layers can pass progress through a flag.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.obs.events import JsonlSink, Event
from repro.obs.metrics import MetricsRegistry

#: the phases a ProgressEvent can carry
PROGRESS_PHASES = ("start", "chunk", "summary")


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation from the sweep engine (plain data, picklable).

    Counts only — no wall-clock fields; reporters add timing on receipt.
    ``queue_depth`` is the number of chunks (or per-trial batches) still
    outstanding, the engine's proxy for how much work the pool holds.
    """

    phase: str
    trials_total: int
    trials_done: int
    chunks_total: int
    chunks_done: int
    queue_depth: int
    workers: int
    mode: str  # "serial" | "parallel"
    fold: str  # "trial" | "chunk"

    @property
    def fraction_done(self) -> float:
        if self.trials_total == 0:
            return 1.0
        return self.trials_done / self.trials_total


ProgressCallback = Callable[[ProgressEvent], None]


class TTYProgressReporter:
    """A live one-line progress display (carriage-return rewrites)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._t0: Optional[float] = None

    def __call__(self, event: ProgressEvent) -> None:
        now = time.monotonic()
        if event.phase == "start" or self._t0 is None:
            self._t0 = now
        elapsed = max(now - self._t0, 1e-9)
        rate = event.trials_done / elapsed
        line = (
            f"sweep [{event.mode}/{event.fold} x{event.workers}] "
            f"{event.trials_done}/{event.trials_total} trials "
            f"({100.0 * event.fraction_done:5.1f}%) "
            f"{rate:8.1f} t/s  queue={event.queue_depth}"
        )
        end = "\n" if event.phase == "summary" else "\r"
        self.stream.write("\r" + line + end)


class JsonlProgressReporter:
    """One JSON line per progress event, with reporter-side timing."""

    def __init__(self, path: str) -> None:
        self.sink = JsonlSink(path)
        self.path = path
        self._t0: Optional[float] = None

    def __call__(self, event: ProgressEvent) -> None:
        now = time.monotonic()
        if event.phase == "start" or self._t0 is None:
            self._t0 = now
        elapsed = now - self._t0
        fields = {
            "phase": event.phase,
            "trials_total": event.trials_total,
            "trials_done": event.trials_done,
            "chunks_total": event.chunks_total,
            "chunks_done": event.chunks_done,
            "queue_depth": event.queue_depth,
            "workers": event.workers,
            "mode": event.mode,
            "fold": event.fold,
            "elapsed_s": round(elapsed, 6),
            "trials_per_s": (
                round(event.trials_done / elapsed, 3) if elapsed > 0 else None
            ),
        }
        self.sink.emit(Event(name="sweep.progress", wall_time=time.time(), fields=fields))
        if event.phase == "summary":
            self.close()

    def close(self) -> None:
        self.sink.close()


class MetricsProgressReporter:
    """Counters/gauges only — the minimal-overhead progress consumer."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def __call__(self, event: ProgressEvent) -> None:
        registry = self.registry
        if event.phase == "chunk":
            registry.inc("sweep.chunks_done")
        elif event.phase == "start":
            registry.inc("sweep.runs")
            registry.set_gauge("sweep.trials_total", event.trials_total)
        else:
            registry.inc("sweep.runs_completed")
        registry.set_gauge("sweep.trials_done", event.trials_done)
        registry.set_gauge("sweep.queue_depth", event.queue_depth)
        registry.set_gauge("sweep.workers", event.workers)


class CollectingProgress:
    """Accumulates every event in a list (tests)."""

    def __init__(self) -> None:
        self.events: list = []

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)


def resolve_progress(progress: Any) -> Optional[ProgressCallback]:
    """Normalise the engine's ``progress=`` argument to a callback.

    Accepts ``None``, any callable, ``"tty"`` or ``"jsonl:PATH"``; anything
    else raises :class:`~repro.errors.ConfigurationError` naming the value.
    """
    if progress is None or callable(progress):
        return progress
    if isinstance(progress, str):
        if progress == "tty":
            return TTYProgressReporter()
        if progress.startswith("jsonl:") and len(progress) > len("jsonl:"):
            return JsonlProgressReporter(progress[len("jsonl:"):])
    raise ConfigurationError(
        f"progress must be a callable, 'tty' or 'jsonl:PATH', got {progress!r}"
    )


__all__ = [
    "CollectingProgress",
    "JsonlProgressReporter",
    "MetricsProgressReporter",
    "PROGRESS_PHASES",
    "ProgressCallback",
    "ProgressEvent",
    "TTYProgressReporter",
    "resolve_progress",
]
