"""Transaction span tracing across coordinator and partitions, both runtimes.

A :class:`TraceContext` follows transactions through the cluster stack and
records one :class:`Span` per protocol phase, timestamped by whatever clock
the hosting runtime exposes through ``env.now()`` — virtual units U under
the simulator (deterministic: a fixed seed reproduces every span byte for
byte), wall-clock units under the asyncio runtime.  The phases mirror the
commit protocol's life cycle (and the paper's latency accounting — *where
the message delays go*):

* ``EXEC`` — coordinator: submission until the agreed commit-round start
  (the execute/prepare window the coordinator allots);
* ``PREPARE-vote`` — partition: EXEC receipt (locks taken, WAL ``PREPARE``
  appended, vote derived) until the commit round starts;
* ``decision`` — partition: commit-round start until the embedded commit
  protocol decides there;
* ``DONE`` — coordinator: first participant decision until the ``DONE`` ack
  lands at the client (the report's ack latency);
* ``txn`` — coordinator: the whole submission-to-ack envelope;
* ``OUTCOME?`` — recovering partition: termination query issued until the
  outcome is installed (the recovery spans of PR 8's rejoin path).

Recording is strictly out of band: the db/runtime layers call a tracer they
were *handed* (``ClusterConfig.tracer``), never import this package, and a
``None`` tracer costs one attribute check per hook point.  Spans never touch
a trace or sweep fingerprint (OBS001 + the determinism battery enforce it).

``to_chrome()`` renders the Chrome trace-event JSON consumed by
``chrome://tracing`` / Perfetto; ``python -m repro.obs.export`` wraps it in
a CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: the per-phase span names a commit transaction produces (in phase order)
TXN_PHASES = ("EXEC", "PREPARE-vote", "decision", "DONE")

#: microseconds per unit of U in the Chrome export: one unit renders as 1 ms
CHROME_US_PER_UNIT = 1000.0


@dataclass
class Span:
    """One closed interval of one transaction on one process."""

    name: str
    txn_id: str
    pid: int
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "txn_id": self.txn_id,
            "pid": self.pid,
            "start": self.start,
            "end": self.end,
            "args": {key: self.args[key] for key in sorted(self.args)},
        }


class TraceContext:
    """Collects spans; shared by every process of one cluster run.

    ``clock`` labels the time base ("units" under the simulator, "wall-units"
    under asyncio) — purely descriptive, the numbers are whatever the host
    runtime's ``now()`` returns.
    """

    def __init__(self, clock: str = "units") -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._open: Dict[Tuple[int, str, str], Span] = {}

    # -- record paths -------------------------------------------------------- #
    def begin(self, pid: int, txn_id: str, name: str, t: float, **args: Any) -> None:
        """Open a span; a re-begin of an open (pid, txn, name) restarts it."""
        self._open[(pid, txn_id, name)] = Span(
            name=name, txn_id=txn_id, pid=pid, start=t, end=t, args=dict(args)
        )

    def end(self, pid: int, txn_id: str, name: str, t: float, **args: Any) -> None:
        """Close a span opened by :meth:`begin`; unmatched ends are dropped."""
        span = self._open.pop((pid, txn_id, name), None)
        if span is None:
            return
        span.end = max(t, span.start)
        span.args.update(args)
        self.spans.append(span)

    def complete(
        self, pid: int, txn_id: str, name: str, start: float, end: float, **args: Any
    ) -> None:
        """Record a span whose bounds are both known at the call site."""
        self.spans.append(
            Span(
                name=name,
                txn_id=txn_id,
                pid=pid,
                start=start,
                end=max(end, start),
                args=dict(args),
            )
        )

    # -- queries ------------------------------------------------------------- #
    def spans_of(self, txn_id: str) -> List[Span]:
        return [span for span in self.spans if span.txn_id == txn_id]

    def phases_of(self, txn_id: str) -> List[str]:
        """Distinct span names of one transaction, in first-recorded order."""
        seen: List[str] = []
        for span in self.spans:
            if span.txn_id == txn_id and span.name not in seen:
                seen.append(span.name)
        return seen

    def transaction_ids(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.txn_id not in seen:
                seen.append(span.txn_id)
        return seen

    def open_count(self) -> int:
        """Spans begun but never ended (normally 0 after a completed run)."""
        return len(self._open)

    # -- export -------------------------------------------------------------- #
    def to_jsonable(self) -> Dict[str, Any]:
        ordered = sorted(
            self.spans, key=lambda s: (s.start, s.pid, s.txn_id, s.name, s.end)
        )
        return {
            "clock": self.clock,
            "spans": [span.to_jsonable() for span in ordered],
        }

    def to_chrome(self, us_per_unit: float = CHROME_US_PER_UNIT) -> Dict[str, Any]:
        """Chrome trace-event JSON: one complete ("X") event per span.

        The track layout puts every process on its own ``pid`` row with one
        ``tid`` lane per transaction (lanes numbered by first appearance in
        start order), so a commit's critical path reads left to right in
        ``chrome://tracing``.  Event order is canonical (sorted), so a
        fixed-seed simulator run exports byte-identical JSON.
        """
        ordered = sorted(
            self.spans, key=lambda s: (s.start, s.pid, s.txn_id, s.name, s.end)
        )
        lane_of: Dict[str, int] = {}
        for span in ordered:
            if span.txn_id not in lane_of:
                lane_of[span.txn_id] = len(lane_of) + 1
        events: List[Dict[str, Any]] = []
        for pid in sorted({span.pid for span in ordered}):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"P{pid}"},
                }
            )
        for span in ordered:
            args = {key: span.args[key] for key in sorted(span.args)}
            args["txn_id"] = span.txn_id
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "txn",
                    "pid": span.pid,
                    "tid": lane_of[span.txn_id],
                    "ts": round(span.start * us_per_unit, 3),
                    "dur": round(span.duration * us_per_unit, 3),
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": self.clock, "us_per_unit": us_per_unit},
        }

    def chrome_json(self, us_per_unit: float = CHROME_US_PER_UNIT) -> str:
        return json.dumps(self.to_chrome(us_per_unit), sort_keys=True, indent=2)


__all__ = ["CHROME_US_PER_UNIT", "Span", "TXN_PHASES", "TraceContext"]
