"""Atomic-commit protocol implementations.

The paper's own optimal protocols (Tables 2 and 3):

======================  =========================================  ==================
name                    class                                      cell (CF, NF)
======================  =========================================  ==================
INBAC                   :class:`~repro.protocols.inbac.INBAC`      (AVT, AVT)
1NBAC                   :class:`~repro.protocols.one_nbac.OneNBAC` (AVT, VT)
avNBAC (delay-optimal)  :class:`AvNBACDelayOptimal`                (AV, AV)
avNBAC (msg-optimal)    :class:`AvNBACMessageOptimal`              (AV, AV)
0NBAC                   :class:`~repro.protocols.zero_nbac.ZeroNBAC` (AT, AT)
aNBAC                   :class:`~repro.protocols.a_nbac.ANBAC`     (AV, A)
(n-1+f)NBAC             :class:`NMinus1PlusFNBAC`                  (AVT, T)
(2n-2)NBAC              :class:`TwoNMinus2NBAC`                    (AVT, VT)
(2n-2+f)NBAC            :class:`TwoNMinus2PlusFNBAC`               (AVT, AVT)
======================  =========================================  ==================

Baselines used for comparison (Section 6 / Table 5): 2PC, 3PC, PaxosCommit and
Faster PaxosCommit.
"""

from repro.protocols.a_nbac import ANBAC
from repro.protocols.av_nbac import AvNBACDelayOptimal, AvNBACMessageOptimal
from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess, logical_and
from repro.protocols.inbac import INBAC
from repro.protocols.n1f_nbac import NMinus1PlusFNBAC
from repro.protocols.one_nbac import OneNBAC
from repro.protocols.paxos_commit import FasterPaxosCommit, PaxosCommit
from repro.protocols.registry import (
    ProtocolInfo,
    all_protocols,
    get_protocol,
    paper_protocols,
    protocol_names,
    table5_protocols,
)
from repro.protocols.three_phase import ThreePhaseCommit
from repro.protocols.two_n_minus_2 import TwoNMinus2NBAC
from repro.protocols.two_n_minus_2_f import TwoNMinus2PlusFNBAC
from repro.protocols.two_phase import TwoPhaseCommit
from repro.protocols.zero_nbac import ZeroNBAC

__all__ = [
    "ABORT",
    "ANBAC",
    "AtomicCommitProcess",
    "AvNBACDelayOptimal",
    "AvNBACMessageOptimal",
    "COMMIT",
    "FasterPaxosCommit",
    "INBAC",
    "NMinus1PlusFNBAC",
    "OneNBAC",
    "PaxosCommit",
    "ProtocolInfo",
    "ThreePhaseCommit",
    "TwoNMinus2NBAC",
    "TwoNMinus2PlusFNBAC",
    "TwoPhaseCommit",
    "ZeroNBAC",
    "all_protocols",
    "get_protocol",
    "logical_and",
    "paper_protocols",
    "protocol_names",
    "table5_protocols",
]
