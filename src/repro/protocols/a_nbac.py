"""aNBAC — message-optimal protocol for cell (AV, A) (Appendix E.3).

aNBAC guarantees agreement and validity in every crash-failure execution and
agreement in every network-failure execution, with only ``n - 1 + f`` messages
in nice executions.  It composes two mechanisms:

* the (n-1+f)NBAC **chain** (``P1 -> ... -> Pn -> P1 -> ... -> Pf``) carrying
  the running AND of the votes, used to *commit*;
* a 0NBAC-style **abort path** (``[V, 0]`` broadcasts from no-voters, ``[B,
  0]`` relays from yes-voters, acknowledged hop by hop), used to *abort* —
  and, crucially, a process only decides 0 after collecting acknowledgements
  from *everyone*, which is what preserves agreement when timing assumptions
  break (a process that already decided 1 refuses to acknowledge).

Termination is only promised in failure-free executions; when the
acknowledgement collection is incomplete a process sets ``noop`` and never
decides (there is no consensus fallback in this protocol).
"""

from __future__ import annotations

from typing import Any, Set

from repro.protocols.base import ABORT, COMMIT
from repro.protocols.n1f_nbac import NMinus1PlusFNBAC


class ANBAC(NMinus1PlusFNBAC):
    """Agreement/validity under crashes, agreement under network failures."""

    protocol_name = "aNBAC"
    timer_origin_shift = 1.0

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.delivered_v = False
        self.collection_v: Set[int] = set()
        self.collection_b: Set[int] = set()
        self.noop = False
        self.phase0 = 0

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        super().on_propose(value)
        if self.vote == ABORT:
            for q in self.all_pids():
                self.send(q, ("V", ABORT))
            self.set_timer_units(3, name="timer0")
        else:
            self.set_timer_units(2, name="timer0")

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V":
            self.decision_var = ABORT
            self.delivered_v = True
            self.send(src, ("ACK", "V"))
        elif kind == "B":
            self.decision_var = ABORT
            self.send(src, ("ACK", "B"))
        elif kind == "ACK":
            if payload[1] == "V":
                self.collection_v.add(src)
            else:
                self.collection_b.add(src)
        else:
            super().on_deliver(src, payload)

    def on_timeout(self, name: str) -> None:
        if name == "timer0":
            self._timer0_timeout()
            return
        if name == "timer" and self.phase == 3:
            # unlike (n-1+f)NBAC, only a clean all-ones chain may commit here
            if not self.decided and self.decision_var == COMMIT and not self.noop:
                self.decide_once(COMMIT)
            return
        super().on_timeout(name)

    # ------------------------------------------------------------------ #
    # the abort path (0NBAC-style acknowledgements)
    # ------------------------------------------------------------------ #
    def _timer0_timeout(self) -> None:
        if self.vote == COMMIT and self.delivered_v and self.phase0 == 0:
            for q in self.all_pids():
                self.send(q, ("B", ABORT))
            self.set_timer_units(4, name="timer0")
            self.phase0 = 1
            return
        if self.vote == ABORT:
            if self.collection_v == set(self.all_pids()) and not self.decided:
                self.decide_once(ABORT)
            else:
                self.noop = True
            return
        if self.vote == COMMIT and self.delivered_v and self.phase0 == 1:
            if self.collection_b == set(self.all_pids()) and not self.decided:
                self.decide_once(ABORT)
            else:
                self.noop = True
