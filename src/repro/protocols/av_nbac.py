"""avNBAC — agreement + validity under both failure types (cell (AV, AV)).

The paper uses the name *avNBAC* for two different optimal protocols of the
same problem and notes that "the name is abused as the meaning is clear in the
context":

* :class:`AvNBACDelayOptimal` (Section 4.1) — delay-optimal: one message
  delay, at the cost of ``n(n-1)`` messages.  Every process broadcasts its
  vote; a process decides at the end of the first delay **iff** it collected
  all ``n`` votes, and never decides otherwise (termination is not required
  when a failure occurs).
* :class:`AvNBACMessageOptimal` (Appendix E.5) — message-optimal: ``2n - 2``
  messages.  Every process sends its vote to ``P_n``; ``P_n`` computes the
  AND, broadcasts it and decides; the others decide when (and only when) they
  receive the broadcast.

Both decide the logical AND of all ``n`` votes whenever they decide, which is
what gives agreement and validity in *every* execution, including
network-failure ones.
"""

from __future__ import annotations

from typing import Any, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class AvNBACDelayOptimal(AtomicCommitProcess):
    """Delay-optimal avNBAC: decide after one message delay in nice executions."""

    protocol_name = "avNBAC-delay"

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.collection: Set[int] = set()
        self.votes_and: int = COMMIT

    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.votes_and = self.votes_and and self.vote
        for q in self.all_pids():
            self.send(q, ("V", self.vote))
        self.set_timer(1)

    def on_deliver(self, src: int, payload: Any) -> None:
        if payload[0] == "V":
            self.collection.add(src)
            self.votes_and = self.votes_and and payload[1]

    def on_timeout(self, name: str) -> None:
        if name != "timer" or self.decided:
            return
        if self.collection == set(self.all_pids()):
            self.decide_once(self.votes_and)
        # otherwise a failure occurred: the process never decides, which is
        # allowed because termination is not required outside failure-free
        # executions for this problem


class AvNBACMessageOptimal(AtomicCommitProcess):
    """Message-optimal avNBAC (Appendix E.5): ``2n - 2`` messages.

    The Appendix E timers "start at time 1 when the first sending event
    happens", hence :attr:`timer_origin_shift`.
    """

    protocol_name = "avNBAC"
    timer_origin_shift = 1.0

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.votes: int = COMMIT
        self.received_b = False
        self.collection: Set[int] = {pid}

    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.votes = self.votes and self.vote
        if 1 <= self.pid <= self.n - 1:
            self.send(self.n, ("V", self.vote))
            self.set_timer_units(3)
        else:
            self.set_timer_units(2)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V":
            self.votes = self.votes and payload[1]
            self.collection.add(src)
        elif kind == "B":
            self.received_b = True
            self.votes = payload[1]

    def on_timeout(self, name: str) -> None:
        if name != "timer" or self.decided:
            return
        if self.pid == self.n:
            if self.collection == set(self.all_pids()):
                for q in self.all_pids():
                    self.send(q, ("B", self.votes))
                self.decide_once(self.votes)
        else:
            if self.received_b:
                self.decide_once(self.votes)
