"""Base class shared by every atomic-commit protocol implementation.

All protocols follow the paper's module interface (Appendix A): they receive a
``Propose(v)`` event carrying the local vote (1 = willing to commit, 0 =
abort) and eventually trigger a single ``Decide(d)`` event.  The base class
adds:

* vote / decision bookkeeping with an idempotent :meth:`decide_once`;
* a factory for the underlying uniform-consensus module (the paper's ``uc`` /
  ``iuc``), defaulting to :class:`~repro.consensus.paxos.PaxosConsensus`;
* small helpers mirroring the paper's notation (``AND`` of votes, process
  ranges such as ``{P1, ..., Pf}``).

Timer-origin convention
-----------------------
Most pseudocode in the paper sets timers on an absolute scale where one unit
is the message-delay bound ``U`` and time 0 is the moment every process
proposes.  The chain-style protocols of Appendix E instead state that "the
timer starts at time 1 when the first sending event happens"; subclasses that
follow that convention set :attr:`timer_origin_shift` to ``1`` so that the
pseudocode's timer values can be used verbatim while the simulator still works
on the propose-at-0 scale.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.consensus.interfaces import ConsensusComponent
from repro.consensus.paxos import PaxosConsensus
from repro.env import Process, ProcessEnv

COMMIT = 1
ABORT = 0


def logical_and(values: Iterable[int]) -> int:
    """The logical AND of a collection of 0/1 votes (the paper's ``AND``)."""
    result = COMMIT
    for v in values:
        result = result and (COMMIT if v else ABORT)
    return COMMIT if result else ABORT


class AtomicCommitProcess(Process):
    """Base class of all atomic-commit protocol processes.

    Parameters
    ----------
    pid, n, f, env:
        See :class:`~repro.env.Process`.
    consensus_class:
        Implementation used for the underlying uniform-consensus module when
        the protocol needs one.  Defaults to Paxos; tests may substitute
        :class:`~repro.consensus.fixed_leader.FixedLeaderConsensus`.
    """

    #: human-readable protocol name used in traces and result tables
    protocol_name: str = "atomic-commit"
    #: see the class docstring; chain protocols of Appendix E use 1
    timer_origin_shift: float = 0.0

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        env: ProcessEnv,
        consensus_class: Optional[type] = None,
        **kwargs: Any,
    ):
        super().__init__(pid, n, f, env)
        self.vote: Optional[int] = None
        self.decision: Optional[int] = None
        self.decided: bool = False
        self._consensus_class = consensus_class or PaxosConsensus
        self._extra_kwargs = kwargs

    # ------------------------------------------------------------------ #
    # decision plumbing
    # ------------------------------------------------------------------ #
    def decide_once(self, value: int) -> bool:
        """Decide ``value`` unless a decision was already taken.

        Returns True if this call performed the decision.  The single-decision
        (integrity) property is also enforced by the scheduler; this guard
        keeps protocol code close to the pseudocode's ``if not decided`` tests.
        """
        if self.decided:
            return False
        self.decided = True
        self.decision = COMMIT if value else ABORT
        self.env.decide(self.decision)
        return True

    # ------------------------------------------------------------------ #
    # consensus module factory
    # ------------------------------------------------------------------ #
    def make_consensus(
        self, name: str = "uc", on_decide: Optional[Callable[[Any], None]] = None
    ) -> ConsensusComponent:
        """Create and attach the underlying uniform-consensus module."""
        callback = on_decide if on_decide is not None else self.on_consensus_decide
        component = self._consensus_class(self, name=name, on_decide=callback)
        self.attach_component(component)
        return component

    def on_consensus_decide(self, value: Any) -> None:
        """Default consensus callback: adopt the consensus decision."""
        self.decide_once(value)

    # ------------------------------------------------------------------ #
    # notation helpers
    # ------------------------------------------------------------------ #
    def first_f(self) -> range:
        """``{P1, ..., Pf}``."""
        return range(1, self.f + 1)

    def beyond_f(self) -> range:
        """``{Pf+1, ..., Pn}``."""
        return range(self.f + 1, self.n + 1)

    def set_timer_units(self, t: float, name: str = "timer") -> None:
        """Set a timer using the protocol's pseudocode time scale."""
        self.set_timer(t - self.timer_origin_shift, name=name)

    # ------------------------------------------------------------------ #
    # default handlers
    # ------------------------------------------------------------------ #
    def on_deliver(self, src: int, payload: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_timeout(self, name: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_propose(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
