"""INBAC — the paper's indulgent non-blocking atomic commit protocol.

INBAC solves *indulgent atomic commit* (every network-failure execution solves
NBAC, Definition 3) and is optimal in nice executions: every process decides
after **two message delays** and the ``n`` processes exchange exactly
``2 f n`` messages (Theorem 6).  The implementation follows the pseudocode of
Appendix A line by line; variable names are kept identical so the code can be
read against the paper.

Protocol shape in a nice execution (all timers in units of the delay bound U):

* **time 0** — every process ``P`` sends its vote ``[V, v]`` to its backup set
  ``B_P``: the first ``f`` processes, plus ``P_{f+1}`` when ``P`` itself is
  one of the first ``f`` (so ``B_P = {P1..Pf+1} \\ {P}`` for ``P ≤ Pf``).
* **time U** — every backup process sends back, in a single message, the set
  ``[C, collection]`` of all the votes it backs up (the acknowledgement of the
  successful backups).
* **time 2U** — a process that received the expected ``f`` correct
  acknowledgements containing all ``n`` votes decides their logical AND.

If an acknowledgement is missing or incomplete the process falls back to the
underlying uniform-consensus module ``iuc`` (never invoked in nice
executions), possibly after asking ``P_{f+1}..P_n`` for help — Figure 1's
state machine, which this class records in :attr:`branch` for the Figure 1
reproduction benchmark.

The optional *fast-abort* optimisation mentioned at the end of Section 5.2
(a process voting 0 aborts immediately and tells everyone) is available behind
``fast_abort=True``; it accelerates failure-free aborting executions to one
message delay without affecting nice executions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess, logical_and

# Figure 1 branch labels (see benchmarks/bench_figure1_inbac_states.py)
BRANCH_FAST_DECIDE = "f-correct-acks/decide-AND"
BRANCH_CONS_AND = "acks-incomplete/cons-propose-AND"
BRANCH_CONS_ZERO = "acks-incomplete/cons-propose-0"
BRANCH_ASK_HELP = "no-ack-from-backups/ask-for-more-acks"
BRANCH_HELPED_FAST = "helped/decide-AND"
BRANCH_HELPED_CONS_AND = "helped/cons-propose-AND"
BRANCH_HELPED_CONS_ZERO = "helped/cons-propose-0"
BRANCH_CONSENSUS_DECIDE = "decide-consensus-decision"
BRANCH_FAST_ABORT = "fast-abort"

# ---------------------------------------------------------------------- #
# shared-acknowledgement analysis memo
#
# Every backup sends the SAME ack tuple ("C", collection) to all n
# processes (one immutable payload object, see _phase0_timeout), so in a
# nice execution the n receivers each analyse the identical `collection`
# tuple object.  The memo keys by id() — valid only while the original
# object is alive, hence the `entry[0] is collection` identity check that
# makes a recycled id a miss, never a wrong answer — and stores
# (collection, first_votes, covered_pids, n_pids, covers_all).  Mutable
# collections (a sender seen twice, a merged set) are never memoised.
# ---------------------------------------------------------------------- #
_ACK_MEMO: Dict[int, tuple] = {}
_ACK_MEMO_MAX = 1024


def _ack_analysis(collection, n_pids: int, all_pids) -> tuple:
    """Per-collection facts ``_full_backups`` needs, computed once per object.

    ``first_votes`` maps each pid to its first vote in sorted pair order
    (exactly what a ``setdefault`` sweep over ``sorted(collection)`` keeps),
    ``covered`` is the set of backed-up pids, and ``covers_all`` is
    ``all_pids <= covered`` for the given ``n_pids`` (re-derived on a hit
    with a different n, which only happens across grid cells).
    """
    entry = _ACK_MEMO.get(id(collection))
    if entry is not None and entry[0] is collection and entry[3] == n_pids:
        return entry
    first_votes: Dict[int, int] = {}
    covered: Set[int] = set()
    for pid, vote in sorted(collection):
        if pid not in covered:
            covered.add(pid)
            first_votes[pid] = vote
    entry = (collection, first_votes, covered, n_pids, all_pids <= covered)
    if type(collection) is tuple:
        if len(_ACK_MEMO) >= _ACK_MEMO_MAX:
            _ACK_MEMO.clear()
        _ACK_MEMO[id(collection)] = entry
    return entry


class INBAC(AtomicCommitProcess):
    """Indulgent NBAC, optimal at two message delays and ``2fn`` messages."""

    protocol_name = "INBAC"

    def __init__(self, pid, n, f, env, fast_abort: bool = False, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.fast_abort = fast_abort
        # state variables, named as in Appendix A
        self.phase = 0
        self.proposed = False
        self.collection0: Set[Tuple[int, int]] = set()
        # acknowledged collections travel as sorted tuples, never as raw
        # sets: payload reprs feed the trace fingerprint, and a set's repr
        # order is implementation-defined (repro.lint rule FP002)
        self.collection1: Set[Tuple[int, Tuple[Tuple[int, int], ...]]] = set()
        self.collection_help: Set[Tuple[int, int]] = set()
        self.wait = False
        self.val: Optional[int] = None
        self.proposal: Optional[int] = None
        self.cnt = 0
        self.cnt_help = 0
        # instrumentation for the Figure 1 reproduction
        self.branch: Optional[str] = None
        self.branch_history: list = []
        self.iuc = self.make_consensus(name="iuc", on_decide=self._on_iuc_decide)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _record_branch(self, branch: str) -> None:
        if self.branch is None:
            self.branch = branch
        self.branch_history.append(branch)

    def backup_set(self) -> Set[int]:
        """``B_P``: the backup processes of this process."""
        if self.pid <= self.f:
            return {p for p in range(1, self.f + 2) if p != self.pid}
        return set(range(1, self.f + 1))

    def _all_votes_from(self, collections) -> Optional[Dict[int, int]]:
        """Extract one vote per process from a union of backed-up collections."""
        votes: Dict[int, int] = {}
        for pid, vote in sorted(collections):
            votes.setdefault(pid, vote)
        if all(pid in votes for pid in self.all_pids()):
            return votes
        return None

    def _full_backups(self, required_senders, required_full, required_partial=None):
        """Check the "f correct acknowledgements" condition of Figure 1.

        ``required_senders`` must all appear in ``collection1``; senders in
        ``required_full`` must have backed up every process' vote; senders in
        ``required_partial`` (P_{f+1}'s acknowledgement to the first ``f``
        processes) must cover at least ``{P1..Pf}``.
        """
        required_partial = required_partial or set()
        # each sender's acknowledged collection is kept as the shared tuple
        # object it travelled as — materialising a set per sender is what the
        # _ack_analysis memo exists to avoid; only a sender seen twice (never
        # the case on reliable channels) pays for a merged set
        by_sender: Dict[int, Any] = {}
        for sender, collection in sorted(self.collection1):
            existing = by_sender.get(sender)
            if existing is None:
                by_sender[sender] = collection
            else:
                merged = set(existing)
                merged.update(collection)
                by_sender[sender] = merged
        for sender in required_senders:
            if sender not in by_sender:
                return None
        # hoisted out of the sender loops: these sets are loop-invariant, and
        # once one sender has contributed every process' vote the remaining
        # merge sweeps cannot add anything (backed-up pids are always drawn
        # from 1..n, so n collected votes means full coverage)
        all_pids = set(self.all_pids())
        n_pids = len(all_pids)
        low_pids = set(range(1, self.f + 1))
        votes: Dict[int, int] = {}
        for sender in required_full:
            _, first_votes, _, _, covers_all = _ack_analysis(
                by_sender[sender], n_pids, all_pids
            )
            if not covers_all:
                return None
            if len(votes) < n_pids:
                if votes:
                    # first_votes iterates in sorted pid order, so this
                    # setdefault sweep keeps exactly what the original
                    # sweep over sorted(backed_up) kept
                    for pid, vote in first_votes.items():
                        votes.setdefault(pid, vote)
                else:
                    votes.update(first_votes)
        for sender in required_partial:
            _, first_votes, covered, _, _ = _ack_analysis(
                by_sender[sender], n_pids, all_pids
            )
            if not low_pids <= covered:
                return None
            if len(votes) < n_pids:
                if votes:
                    for pid, vote in first_votes.items():
                        votes.setdefault(pid, vote)
                else:
                    votes.update(first_votes)
        if not all(pid in votes for pid in all_pids):
            return None
        return votes

    def _cons_propose(self, value: int) -> None:
        self.proposed = True
        self.proposal = value
        self.iuc.propose(value)

    def _on_iuc_decide(self, value: Any) -> None:
        if not self.decided:
            self._record_branch(BRANCH_CONSENSUS_DECIDE)
            self.decide_once(value)

    # ------------------------------------------------------------------ #
    # <inbac, Propose | v>
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.val = COMMIT if value else ABORT
        self.vote = self.val
        if self.fast_abort and self.val == ABORT:
            # Section 5.2 remark: a process voting 0 may tell everyone and
            # decide immediately; receivers decide 0 on receipt.
            abort_msg = ("V0",)  # immutable: one copy for all destinations
            for q in self.other_pids():
                self.send(q, abort_msg)
            self._record_branch(BRANCH_FAST_ABORT)
            self.decide_once(ABORT)
            # it still participates as a backup so that others terminate
        vote_msg = ("V", self.val)  # immutable: one copy for all destinations
        for q in self.first_f():
            self.send(q, vote_msg)
        if 1 <= self.pid <= self.f:
            self.send(self.f + 1, vote_msg)
        if 1 <= self.pid <= self.f + 1:
            self.set_timer(1)
        else:
            self.set_timer(2)
            self.phase = 1

    # ------------------------------------------------------------------ #
    # deliveries
    # ------------------------------------------------------------------ #
    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V" and self.phase == 0:
            self.collection0.add((src, payload[1]))
        elif kind == "V0" and self.fast_abort:
            if not self.decided:
                self._record_branch(BRANCH_FAST_ABORT)
                self.decide_once(ABORT)
        elif kind == "C":
            self.collection1.add((src, payload[1]))
            self.cnt += 1
            self._maybe_finish_help()
        elif kind == "HELP" and self.phase == 2 and self.pid >= self.f + 1:
            self.send(src, ("HELPED", tuple(sorted(self.collection0))))
        elif kind == "HELPED" and self.pid >= self.f + 1:
            self.collection_help.update(payload[1])
            self.cnt_help += 1
            self._maybe_finish_help()

    # ------------------------------------------------------------------ #
    # timeouts
    # ------------------------------------------------------------------ #
    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 0:
            self._phase0_timeout()
        elif self.phase == 1 and not self.decided and not self.proposed:
            if self.pid >= self.f + 1:
                self._phase1_timeout_outsider()
            else:
                self._phase1_timeout_backup()

    def _phase0_timeout(self) -> None:
        """At time U the backup processes acknowledge the votes they back up."""
        if 1 <= self.pid <= self.f:
            ack = ("C", tuple(sorted(self.collection0)))  # immutable: one copy for all
            for q in self.all_pids():
                self.send(q, ack)
        elif self.pid == self.f + 1:
            ack = ("C", tuple(sorted(self.collection0)))
            for q in self.first_f():
                self.send(q, ack)
        self.phase = 1
        self.set_timer(2)

    # -- processes P_{f+1} .. P_n ---------------------------------------- #
    def _phase1_timeout_outsider(self) -> None:
        self.phase = 2
        collection_val = set()
        for _, c in self.collection1:
            collection_val.update(c)
        self.collection0 = self.collection0 | collection_val | {(self.pid, self.val)}
        votes = self._full_backups(
            required_senders=set(self.first_f()),
            required_full=set(self.first_f()),
        )
        if votes is not None:
            self._record_branch(BRANCH_FAST_DECIDE)
            self.decide_once(logical_and(votes.values()))
            return
        if self.cnt >= 1:
            # collection_val above is exactly this union of collection1
            all_votes = self._all_votes_from(collection_val)
            if all_votes is not None:
                self._record_branch(BRANCH_CONS_AND)
                self._cons_propose(logical_and(all_votes.values()))
            else:
                self._record_branch(BRANCH_CONS_ZERO)
                self._cons_propose(ABORT)
            return
        # no acknowledgement from any backup process: ask for more acks
        self._record_branch(BRANCH_ASK_HELP)
        self.wait = True
        help_msg = ("HELP",)  # immutable: one copy for all destinations
        for q in self.beyond_f():
            self.send(q, help_msg)

    def _maybe_finish_help(self) -> None:
        """The "wait until >= n - f messages" transition of Figure 1."""
        if not (
            self.wait
            and not self.proposed
            and not self.decided
            and self.pid >= self.f + 1
            and self.cnt + self.cnt_help >= self.n - self.f
        ):
            return
        self.wait = False
        votes = self._full_backups(
            required_senders=set(self.first_f()),
            required_full=set(self.first_f()),
        )
        if votes is not None:
            self._record_branch(BRANCH_HELPED_FAST)
            self.decide_once(logical_and(votes.values()))
            return
        if self.cnt >= 1:
            union = set()
            for _, c in self.collection1:
                union.update(c)
            all_votes = self._all_votes_from(union)
            if all_votes is not None:
                self._record_branch(BRANCH_HELPED_CONS_AND)
                self._cons_propose(logical_and(all_votes.values()))
            else:
                self._record_branch(BRANCH_HELPED_CONS_ZERO)
                self._cons_propose(ABORT)
            return
        help_votes = self._all_votes_from(self.collection_help)
        if help_votes is not None:
            self._record_branch(BRANCH_HELPED_CONS_AND)
            self._cons_propose(logical_and(help_votes.values()))
        else:
            self._record_branch(BRANCH_HELPED_CONS_ZERO)
            self._cons_propose(ABORT)

    # -- processes P_1 .. P_f --------------------------------------------- #
    def _phase1_timeout_backup(self) -> None:
        votes = self._full_backups(
            required_senders=set(range(1, self.f + 2)),
            required_full=set(self.first_f()),
            required_partial={self.f + 1},
        )
        if votes is not None:
            self._record_branch(BRANCH_FAST_DECIDE)
            self.decide_once(logical_and(votes.values()))
            return
        union = set()
        for _, c in self.collection1:
            union.update(c)
        all_votes = self._all_votes_from(union)
        if all_votes is not None:
            self._record_branch(BRANCH_CONS_AND)
            self._cons_propose(logical_and(all_votes.values()))
        else:
            self._record_branch(BRANCH_CONS_ZERO)
            self._cons_propose(ABORT)
