"""(n-1+f)NBAC — the message-optimal synchronous NBAC protocol (Appendix E.2).

This protocol solves NBAC in every crash-failure execution and additionally
satisfies termination in every network-failure execution (cell ``(AVT, T)``),
while exchanging only ``n - 1 + f`` messages in nice executions — matching the
paper's generalisation of Dwork and Skeen's ``2n - 2`` lower bound to an
arbitrary number of crashes ``f``.

The nice execution is a chain: ``P1 -> P2 -> ... -> Pn -> P1 -> ... -> Pf``,
each process forwarding the running AND of the votes seen so far.  The last
``2f + 1`` timer units are spent "nooping": a process that hears nothing
during the nooping period concludes (implicitly) that every vote was 1 and
decides commit.  If anything goes wrong, 0s are flooded so that every process
learns about the abort before the nooping period ends.

Timers follow the Appendix E convention ("the timer starts at time 1 when the
first sending event happens"), hence :attr:`timer_origin_shift`.
"""

from __future__ import annotations

from typing import Any

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class NMinus1PlusFNBAC(AtomicCommitProcess):
    """Synchronous NBAC with ``n - 1 + f`` messages in nice executions."""

    protocol_name = "(n-1+f)NBAC"
    timer_origin_shift = 1.0

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.decision_var: int = COMMIT
        self.delivered = False
        self.phase = 0
        self._forwarded_zero = False

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.decision_var = self.vote
        if self.pid == 1:
            self.send(2, ("CHAIN", self.decision_var))
            self.set_timer_units(self.n + 1)
            self.phase = 2
        else:
            self.set_timer_units(self.pid)
            self.phase = 1

    def on_deliver(self, src: int, payload: Any) -> None:
        if payload[0] != "CHAIN":
            return
        value = payload[1]
        self.decision_var = self.decision_var and value
        if self.phase <= 2:
            if src == self.mod_index(self.pid - 1):
                self.delivered = True
        elif not self.decided:
            # phase 3: propagate the (necessarily aborting) outcome so that
            # every correct process hears a 0 before it decides.  The paper's
            # pseudocode re-broadcasts on every delivery; forwarding once per
            # process is sufficient for the agreement argument and avoids an
            # exponential flood in large failure scenarios.
            if self.decision_var == ABORT and not self._forwarded_zero:
                self._forwarded_zero = True
                for q in self.all_pids():
                    self.send(q, ("CHAIN", self.decision_var))

    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 1:
            self._phase1_timeout()
        elif self.phase == 2:
            self._phase2_timeout()
        elif self.phase == 3:
            self.decide_once(self.decision_var)

    # ------------------------------------------------------------------ #
    # timeout bodies
    # ------------------------------------------------------------------ #
    def _phase1_timeout(self) -> None:
        if not self.delivered:
            self.decision_var = ABORT
        if self.decision_var == COMMIT:
            self.send(self.mod_index(self.pid + 1), ("CHAIN", self.decision_var))
        elif self.pid == self.n:
            for q in self.all_pids():
                self.send(q, ("CHAIN", self.decision_var))
        self.delivered = False
        if self.pid >= self.f + 1:
            self.set_timer_units(self.n + 2 * self.f + 1)
            self.phase = 3
        else:
            self.set_timer_units(self.n + self.pid)
            self.phase = 2

    def _phase2_timeout(self) -> None:
        if not self.delivered:
            self.decision_var = ABORT
        if self.decision_var == COMMIT and self.pid != self.f:
            self.send(self.mod_index(self.pid + 1), ("CHAIN", self.decision_var))
        if self.decision_var == ABORT:
            for q in self.all_pids():
                self.send(q, ("CHAIN", self.decision_var))
        self.delivered = False
        self.set_timer_units(self.n + 2 * self.f + 1)
        self.phase = 3
