"""1NBAC — the delay-optimal synchronous NBAC protocol (Appendix D).

1NBAC solves NBAC in every crash-failure execution and additionally satisfies
validity and termination in every network-failure execution (cell
``(AVT, VT)`` of Table 1).  In every nice execution every process decides the
logical AND of all ``n`` votes at the end of the **first** message delay,
which the paper proves is optimal — closing the three-decade-old question of
the time complexity of synchronous NBAC.  The price is the time/message
tradeoff: the all-to-all vote exchange costs ``n(n-1)`` messages.

The implementation follows the Appendix D pseudocode: votes are broadcast at
time 0; a process that has collected all ``n`` votes at time U broadcasts the
AND (the ``[D, d]`` round, only useful when something went wrong elsewhere)
and decides; a process missing votes waits one more delay for some ``[D, d]``
and otherwise falls back to the uniform-consensus module ``uc``.
"""

from __future__ import annotations

from typing import Any, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class OneNBAC(AtomicCommitProcess):
    """Synchronous NBAC in one message delay (and ``n² - n`` messages)."""

    protocol_name = "1NBAC"

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.phase = 0
        self.proposed = False
        self.collection0: Set[int] = set()
        self.collection1: Set[int] = set()
        self.decision_var: int = COMMIT
        self.uc = self.make_consensus(name="uc", on_decide=self._on_uc_decide)

    def _on_uc_decide(self, value: Any) -> None:
        if not self.decided:
            self.decide_once(value)

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.decision_var = self.vote
        for q in self.all_pids():
            self.send(q, ("V", self.vote))
        self.set_timer(1)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V":
            self.collection0.add(src)
            self.decision_var = self.decision_var and payload[1]
        elif kind == "D":
            self.collection1.add(src)
            self.decision_var = payload[1]

    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 0:
            if self.collection0 == set(self.all_pids()):
                for q in self.all_pids():
                    self.send(q, ("D", self.decision_var))
                if not self.decided:
                    self.decide_once(self.decision_var)
            else:
                self.phase = 1
                self.set_timer(2)
        elif self.phase == 1:
            if not self.decided and not self.proposed:
                if not self.collection1:
                    self.decision_var = ABORT
                self.proposed = True
                self.uc.propose(self.decision_var)
