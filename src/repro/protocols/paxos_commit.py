"""Paxos Commit and Faster Paxos Commit (Gray & Lamport 2006) baselines.

The paper compares INBAC against Gray and Lamport's two indulgent commit
protocols in Table 5, under the convention that all processes start
spontaneously and with the normal-case optimisation of ``f + 1`` participating
acceptors co-located with the first ``f + 1`` resource managers (RMs):

* **Paxos Commit** — each RM sends a phase-2a message carrying its vote for
  its own Paxos instance to the ``f + 1`` acceptors; the acceptors forward
  their accepted state for all instances to the leader (``P1``); the leader
  declares the outcome and broadcasts it: **3 message delays** and
  ``nf + 2n - 2`` messages.
* **Faster Paxos Commit** — the acceptors broadcast their phase-2b state
  directly to every RM, which deduces the outcome itself: **2 message delays**
  and ``2fn + 2n - 2f - 2`` messages.

Fault handling is implemented in the same modular spirit as INBAC rather than
by replaying the full multi-instance Paxos machinery: an RM that cannot deduce
the outcome in time queries the acceptors (whose accepted state is exactly
what a recovering Paxos leader would read from a quorum) and then settles the
outcome through the shared uniform-consensus module.  A fast commit decision
is only ever taken when *every* acceptor reports *every* instance accepted
with vote 1, which guarantees that any later acceptor query also returns the
full set of 1-votes — the invariant that keeps fast decisions and
consensus-settled decisions in agreement (mirroring Lemma 5's
acknowledgement argument).
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess, logical_and


class _PaxosCommitBase(AtomicCommitProcess):
    """State shared by PaxosCommit and FasterPaxosCommit."""

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        # acceptor state: accepted vote per RM instance
        self.accepted: Dict[int, int] = {}
        # RM / leader view of the acceptors' phase-2b reports
        self.reports: Dict[int, Dict[int, int]] = {}
        self.query_replies: Dict[int, Dict[int, int]] = {}
        self.proposed = False
        self.uc = self.make_consensus(name="uc", on_decide=self._on_uc_decide)

    # -- roles ------------------------------------------------------------ #
    def acceptors(self) -> range:
        """The ``f + 1`` acceptors, co-located with ``P1 .. P_{f+1}``."""
        return range(1, self.f + 2)

    @property
    def is_acceptor(self) -> bool:
        return self.pid <= self.f + 1

    @property
    def leader(self) -> int:
        return 1

    # -- consensus fallback ------------------------------------------------ #
    def _on_uc_decide(self, value: Any) -> None:
        if not self.decided:
            self.decide_once(value)

    def _propose_uc(self, value: int) -> None:
        if not self.proposed and not self.decided:
            self.proposed = True
            self.uc.propose(value)

    # -- shared helpers ----------------------------------------------------- #
    def _full_commit_reports(self, reports: Dict[int, Dict[int, int]]) -> bool:
        """Every acceptor reported, and every instance is accepted with vote 1."""
        if set(reports) != set(self.acceptors()):
            return False
        for report in reports.values():
            if set(report) != set(self.all_pids()):
                return False
            if any(v != COMMIT for v in report.values()):
                return False
        return True

    def _start_query(self) -> None:
        """Ask the acceptors for their accepted state (the recovery read)."""
        self._query_backoff = getattr(self, "_query_backoff", 2.5)
        for acceptor in self.acceptors():
            self.send(acceptor, ("QUERY",))
        self.set_timer(self.now() + self._query_backoff, name="query")

    def _handle_query_reply(self, src: int, report: Dict[int, int]) -> None:
        """Settle the outcome from one acceptor's accepted state.

        Safety argument (mirrors the paper's Lemma 5 reasoning): a fast commit
        decision is only taken when *every* acceptor has accepted vote 1 for
        *every* instance before broadcasting, so any later reply from any
        acceptor is necessarily complete and all-1.  Conversely a reply with a
        missing instance proves that no process fast-committed, so proposing
        abort cannot contradict a fast decision.
        """
        self.query_replies[src] = dict(report)
        if self.decided or self.proposed:
            return
        if set(report) >= set(self.all_pids()):
            self._propose_uc(logical_and(report[pid] for pid in self.all_pids()))
        else:
            self._propose_uc(ABORT)

    def _query_timeout(self) -> None:
        if not self.decided and not self.proposed:
            # replies are late (network failure): keep asking — at least one
            # acceptor is correct and channels are reliable, so a reply
            # eventually arrives and settles the outcome through consensus
            self._query_backoff = getattr(self, "_query_backoff", 2.5) * 1.5
            self._start_query()

    # -- common message handling -------------------------------------------- #
    def _accept_vote(self, rm: int, vote: int) -> None:
        self.accepted.setdefault(rm, vote)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "P2A" and self.is_acceptor:
            self._accept_vote(payload[1], payload[2])
        elif kind == "QUERY" and self.is_acceptor:
            self.send(src, ("QREPLY", dict(self.accepted)))
        elif kind == "QREPLY":
            self._handle_query_reply(src, payload[1])
        else:
            self.on_deliver_protocol(src, payload)

    def on_deliver_protocol(self, src: int, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_timeout(self, name: str) -> None:
        if name == "query":
            self._query_timeout()
        else:
            self.on_timeout_protocol(name)

    def on_timeout_protocol(self, name: str) -> None:  # pragma: no cover
        raise NotImplementedError


class PaxosCommit(_PaxosCommitBase):
    """Gray & Lamport's Paxos Commit: 3 delays, ``nf + 2n - 2`` messages."""

    protocol_name = "PaxosCommit"

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        # phase 2a for this RM's instance, sent to every acceptor
        for acceptor in self.acceptors():
            self.send(acceptor, ("P2A", self.pid, self.vote))
        if self.is_acceptor:
            self.set_timer(1, name="acceptor-report")
        if self.pid == self.leader:
            self.set_timer(2, name="leader-outcome")
        else:
            # an RM that has not heard the outcome within 4 delays recovers
            self.set_timer(4, name="rm-recover")

    def on_deliver_protocol(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "P2B" and self.pid == self.leader:
            self.reports[src] = dict(payload[1])
        elif kind == "OUTCOME":
            self.decide_once(payload[1])

    def on_timeout_protocol(self, name: str) -> None:
        if name == "acceptor-report" and self.is_acceptor:
            # phase 2b: report the accepted state of all instances to the leader
            self.send(self.leader, ("P2B", dict(self.accepted)))
        elif name == "leader-outcome" and self.pid == self.leader:
            self._leader_outcome()
        elif name == "rm-recover" and not self.decided and not self.proposed:
            self._start_query()

    def _leader_outcome(self) -> None:
        if self.decided:
            return
        if self._full_commit_reports(self.reports):
            outcome = COMMIT
        elif any(
            ABORT in report.values() for report in self.reports.values()
        ):
            outcome = ABORT
        else:
            # some instance is unresolved (crash or late message): settle
            # through consensus after reading the acceptors
            self._start_query()
            return
        for q in self.other_pids():
            self.send(q, ("OUTCOME", outcome))
        self.decide_once(outcome)


class FasterPaxosCommit(_PaxosCommitBase):
    """Faster Paxos Commit: 2 delays, ``2fn + 2n - 2f - 2`` messages."""

    protocol_name = "FasterPaxosCommit"

    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        for acceptor in self.acceptors():
            self.send(acceptor, ("P2A", self.pid, self.vote))
        if self.is_acceptor:
            self.set_timer(1, name="acceptor-broadcast")
        self.set_timer(2, name="rm-decide")

    def on_deliver_protocol(self, src: int, payload: Any) -> None:
        if payload[0] == "P2B":
            self.reports[src] = dict(payload[1])

    def on_timeout_protocol(self, name: str) -> None:
        if name == "acceptor-broadcast" and self.is_acceptor:
            # phase 2b broadcast straight to every RM (the "faster" variant)
            for q in self.all_pids():
                self.send(q, ("P2B", dict(self.accepted)))
        elif name == "rm-decide" and not self.decided and not self.proposed:
            if self._full_commit_reports(self.reports):
                self.decide_once(COMMIT)
            elif any(ABORT in report.values() for report in self.reports.values()):
                self._propose_uc(ABORT)
            else:
                self._start_query()
