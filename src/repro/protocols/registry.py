"""Protocol registry: every implemented commit protocol plus its metadata.

Each entry records

* which problem cell of Table 1 the protocol matches (its robustness),
* the *measured* best-case complexity we expect from the simulator in nice
  executions (used as test oracles in ``tests/protocols``), and
* whether the protocol is delay-optimal / message-optimal for its cell.

The paper's own Table 5 formulas (which use a slightly different accounting
convention for the chain protocols' message delays) live in
:mod:`repro.analysis.formulas`; the benchmarks print both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.lattice import PropertyPair
from repro.errors import ConfigurationError
from repro.protocols.a_nbac import ANBAC
from repro.protocols.av_nbac import AvNBACDelayOptimal, AvNBACMessageOptimal
from repro.protocols.inbac import INBAC
from repro.protocols.n1f_nbac import NMinus1PlusFNBAC
from repro.protocols.one_nbac import OneNBAC
from repro.protocols.paxos_commit import FasterPaxosCommit, PaxosCommit
from repro.protocols.three_phase import ThreePhaseCommit
from repro.protocols.two_n_minus_2 import TwoNMinus2NBAC
from repro.protocols.two_n_minus_2_f import TwoNMinus2PlusFNBAC
from repro.protocols.two_phase import TwoPhaseCommit
from repro.protocols.zero_nbac import ZeroNBAC


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry for one protocol."""

    name: str
    cls: type
    cell: Optional[PropertyPair]
    expected_delays: Callable[[int, int], float]
    expected_messages: Callable[[int, int], int]
    delay_optimal: bool = False
    message_optimal: bool = False
    solves_indulgent: bool = False
    blocking: bool = False
    notes: str = ""


_REGISTRY: Dict[str, ProtocolInfo] = {}


def _register(info: ProtocolInfo) -> None:
    _REGISTRY[info.name] = info


_register(
    ProtocolInfo(
        name="2PC",
        cls=TwoPhaseCommit,
        cell=None,
        expected_delays=lambda n, f: 2,
        expected_messages=lambda n, f: 2 * n - 2,
        blocking=True,
        notes="classical baseline; agreement+validity always, blocks on coordinator crash",
    )
)
_register(
    ProtocolInfo(
        name="3PC",
        cls=ThreePhaseCommit,
        cell=PropertyPair.of("AVT", ""),
        expected_delays=lambda n, f: 4,
        expected_messages=lambda n, f: 4 * n - 4,
        notes="Skeen's non-blocking commit; termination protocol unsafe under network failures",
    )
)
_register(
    ProtocolInfo(
        name="INBAC",
        cls=INBAC,
        cell=PropertyPair.indulgent_atomic_commit(),
        expected_delays=lambda n, f: 2,
        expected_messages=lambda n, f: 2 * f * n,
        delay_optimal=True,
        solves_indulgent=True,
        notes="delay-optimal indulgent atomic commit; message-optimal among 2-delay protocols",
    )
)
_register(
    ProtocolInfo(
        name="1NBAC",
        cls=OneNBAC,
        cell=PropertyPair.of("AVT", "VT"),
        expected_delays=lambda n, f: 1,
        expected_messages=lambda n, f: n * n - n,
        delay_optimal=True,
        notes="delay-optimal synchronous NBAC (one message delay)",
    )
)
_register(
    ProtocolInfo(
        name="avNBAC-delay",
        cls=AvNBACDelayOptimal,
        cell=PropertyPair.of("AV", "AV"),
        expected_delays=lambda n, f: 1,
        expected_messages=lambda n, f: n * n - n,
        delay_optimal=True,
        notes="delay-optimal protocol for cell (AV, AV)",
    )
)
_register(
    ProtocolInfo(
        name="avNBAC",
        cls=AvNBACMessageOptimal,
        cell=PropertyPair.of("AV", "AV"),
        expected_delays=lambda n, f: 2,
        expected_messages=lambda n, f: 2 * n - 2,
        message_optimal=True,
        notes="message-optimal protocol for cell (AV, AV)",
    )
)
_register(
    ProtocolInfo(
        name="0NBAC",
        cls=ZeroNBAC,
        cell=PropertyPair.of("AT", "AT"),
        expected_delays=lambda n, f: 1,
        expected_messages=lambda n, f: 0,
        delay_optimal=True,
        message_optimal=True,
        notes="zero messages in nice executions; no time/message tradeoff for its cell",
    )
)
_register(
    ProtocolInfo(
        name="aNBAC",
        cls=ANBAC,
        cell=PropertyPair.of("AV", "A"),
        expected_delays=lambda n, f: n + 2 * f,
        expected_messages=lambda n, f: n - 1 + f,
        message_optimal=True,
        notes="message-optimal protocol for cell (AV, A)",
    )
)
_register(
    ProtocolInfo(
        name="(n-1+f)NBAC",
        cls=NMinus1PlusFNBAC,
        cell=PropertyPair.of("AVT", "T"),
        expected_delays=lambda n, f: n + 2 * f,
        expected_messages=lambda n, f: n - 1 + f,
        message_optimal=True,
        notes="message-optimal synchronous NBAC; generalises Dwork-Skeen to f crashes",
    )
)
_register(
    ProtocolInfo(
        name="(2n-2)NBAC",
        cls=TwoNMinus2NBAC,
        cell=PropertyPair.of("AVT", "VT"),
        expected_delays=lambda n, f: 2 + f,
        expected_messages=lambda n, f: 2 * n - 2,
        message_optimal=True,
        notes="message-optimal protocol for cell (AVT, VT)",
    )
)
_register(
    ProtocolInfo(
        name="(2n-2+f)NBAC",
        cls=TwoNMinus2PlusFNBAC,
        cell=PropertyPair.indulgent_atomic_commit(),
        expected_delays=lambda n, f: 2 * n + f - 2,
        expected_messages=lambda n, f: 2 * n - 2 + f,
        message_optimal=True,
        solves_indulgent=True,
        notes="message-optimal indulgent atomic commit",
    )
)
_register(
    ProtocolInfo(
        name="PaxosCommit",
        cls=PaxosCommit,
        cell=PropertyPair.indulgent_atomic_commit(),
        expected_delays=lambda n, f: 3,
        expected_messages=lambda n, f: n * f + 2 * n - 2,
        solves_indulgent=True,
        notes="Gray & Lamport 2006, normal-case optimised (f+1 acceptors)",
    )
)
_register(
    ProtocolInfo(
        name="FasterPaxosCommit",
        cls=FasterPaxosCommit,
        cell=PropertyPair.indulgent_atomic_commit(),
        expected_delays=lambda n, f: 2,
        expected_messages=lambda n, f: 2 * f * n + 2 * n - 2 * f - 2,
        solves_indulgent=True,
        notes="Gray & Lamport 2006, acceptors broadcast phase-2b to all RMs",
    )
)


def protocol_names() -> List[str]:
    """All registered protocol names."""
    return list(_REGISTRY)


def get_protocol(name: str) -> ProtocolInfo:
    """Look up a protocol by its registry name (raises on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown protocol {name!r}; known: {known}") from exc


def all_protocols() -> Dict[str, ProtocolInfo]:
    return dict(_REGISTRY)


def paper_protocols() -> Dict[str, ProtocolInfo]:
    """The protocols introduced by the paper itself (Tables 2 and 3)."""
    own = {
        "INBAC",
        "1NBAC",
        "avNBAC-delay",
        "avNBAC",
        "0NBAC",
        "aNBAC",
        "(n-1+f)NBAC",
        "(2n-2)NBAC",
        "(2n-2+f)NBAC",
    }
    return {name: info for name, info in _REGISTRY.items() if name in own}


def table5_protocols() -> List[str]:
    """The six protocols compared in Table 5, in the paper's column order."""
    return ["1NBAC", "(n-1+f)NBAC", "INBAC", "2PC", "PaxosCommit", "FasterPaxosCommit"]
