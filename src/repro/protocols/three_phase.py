"""Three-phase commit (3PC, Skeen 1981).

3PC removes 2PC's blocking under pure crash failures by inserting a
*pre-commit* phase: the coordinator only commits after every participant has
acknowledged that it is prepared to commit, so a recovering cohort can always
deduce a safe outcome.  The price is one extra message delay and ``2n - 2``
extra messages per transaction — the overhead the paper quotes in Section 6.2.

As the paper (and Keidar & Dolev, Gray & Lamport) point out, 3PC's termination
protocol does not handle network failures correctly: two concurrently elected
backup coordinators can drive the cohort to conflicting decisions.  The
robustness-matrix experiment exhibits this with an adversarial delay schedule.
The implementation here follows the classical description: a simplified
termination protocol in which cohorts that time out broadcast their state and
commit if anyone reached the pre-committed state, abort otherwise.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess, logical_and

# cohort states
_Q = "initial"
_WAIT = "waiting"
_PRECOMMIT = "pre-committed"
_ABORTED = "aborted"
_COMMITTED = "committed"


class ThreePhaseCommit(AtomicCommitProcess):
    """3PC with a fixed coordinator and the classical termination protocol."""

    protocol_name = "3PC"

    def __init__(self, pid, n, f, env, coordinator: int = 1, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.coordinator = coordinator
        self.state = _Q
        self._votes: Dict[int, int] = {}
        self._acks: Set[int] = set()
        self._recovery_states: Dict[int, str] = {}
        self._in_recovery = False

    @property
    def is_coordinator(self) -> bool:
        return self.pid == self.coordinator

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.state = _WAIT
        if self.is_coordinator:
            self._votes[self.pid] = self.vote
            self.set_timer(1, name="votes")
        else:
            self.send(self.coordinator, ("VOTE", self.vote))
            if self.vote == ABORT:
                self.state = _ABORTED
                self.decide_once(ABORT)
            else:
                # expect a PRECOMMIT/ABORT within two delays, else run recovery
                self.set_timer(2.5, name="await-precommit")

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "VOTE" and self.is_coordinator:
            self._votes[src] = payload[1]
        elif kind == "PRECOMMIT":
            if self.state == _WAIT:
                self.state = _PRECOMMIT
                self.send(src, ("ACK",))
                self.set_timer(self.now() + 2.5, name="await-commit")
        elif kind == "ACK" and self.is_coordinator:
            self._acks.add(src)
            if len(self._acks) == self.n - 1:
                self._broadcast_commit()
        elif kind == "GLOBAL-ABORT":
            self.state = _ABORTED
            self.decide_once(ABORT)
        elif kind == "GLOBAL-COMMIT":
            self.state = _COMMITTED
            self.decide_once(COMMIT)
        elif kind == "STATE-REQ":
            self.send(src, ("STATE", self.state))
        elif kind == "STATE" and self._in_recovery:
            self._recovery_states[src] = payload[1]

    def on_timeout(self, name: str) -> None:
        if name == "votes" and self.is_coordinator:
            if len(self._votes) == self.n and logical_and(self._votes.values()) == COMMIT:
                self.state = _PRECOMMIT
                for q in self.other_pids():
                    self.send(q, ("PRECOMMIT",))
                self.set_timer(self.now() + 2.5, name="acks")
            else:
                self.state = _ABORTED
                for q in self.other_pids():
                    self.send(q, ("GLOBAL-ABORT",))
                self.decide_once(ABORT)
        elif name == "acks" and self.is_coordinator and self.state == _PRECOMMIT:
            if len(self._acks) < self.n - 1 and not self.decided:
                # some cohort is unreachable; commit is still safe because
                # every cohort is at least prepared (classical 3PC rule)
                self._broadcast_commit()
        elif name == "await-precommit" and not self.decided and self.state == _WAIT:
            self._start_recovery()
        elif name == "await-commit" and not self.decided and self.state == _PRECOMMIT:
            self._start_recovery()
        elif name == "recovery-collect" and self._in_recovery and not self.decided:
            self._finish_recovery()

    # ------------------------------------------------------------------ #
    # coordinator helpers
    # ------------------------------------------------------------------ #
    def _broadcast_commit(self) -> None:
        if self.decided:
            return
        self.state = _COMMITTED
        for q in self.other_pids():
            self.send(q, ("GLOBAL-COMMIT",))
        self.decide_once(COMMIT)

    # ------------------------------------------------------------------ #
    # termination (recovery) protocol
    # ------------------------------------------------------------------ #
    def _start_recovery(self) -> None:
        if self._in_recovery or self.decided:
            return
        self._in_recovery = True
        self._recovery_states = {self.pid: self.state}
        for q in self.other_pids():
            self.send(q, ("STATE-REQ",))
        self.set_timer(self.now() + 2.5, name="recovery-collect")

    def _finish_recovery(self) -> None:
        states = set(self._recovery_states.values())
        if _COMMITTED in states or _PRECOMMIT in states:
            outcome = COMMIT
        else:
            outcome = ABORT
        self.state = _COMMITTED if outcome == COMMIT else _ABORTED
        for q in self.other_pids():
            self.send(q, ("GLOBAL-COMMIT",) if outcome == COMMIT else ("GLOBAL-ABORT",))
        self.decide_once(outcome)
