"""(2n-2)NBAC — message-optimal protocol for cell (AVT, VT) (Appendix E.4).

The protocol solves NBAC in every crash-failure execution and preserves
validity and termination in every network-failure execution with ``2n - 2``
messages in nice executions: every process sends its vote to ``P_n``, ``P_n``
broadcasts the logical AND, and everyone then "noops" for ``f + 1`` message
delays so that, in a crash-failure execution, at least one process always
succeeds in flooding a 0 before anybody commits (the agreement argument of the
appendix).

Timers follow the Appendix E convention ("the timer starts at time 1 when the
first sending event happens").
"""

from __future__ import annotations

from typing import Any, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class TwoNMinus2NBAC(AtomicCommitProcess):
    """``2n - 2`` messages in every nice execution."""

    protocol_name = "(2n-2)NBAC"
    timer_origin_shift = 1.0

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.votes: int = COMMIT
        self.received_b = False
        self.phase = 0
        self.collection: Set[int] = {pid}
        self._forwarded_zero = False

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.votes = self.votes and self.vote
        if 1 <= self.pid <= self.n - 1:
            self.send(self.n, ("V", self.vote))
            self.set_timer_units(3)
        else:
            self.set_timer_units(2)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V":
            self.votes = self.votes and payload[1]
            self.collection.add(src)
        elif kind == "B":
            self.received_b = True
            self.votes = payload[1]
            if self.votes == ABORT and not self._forwarded_zero:
                # relay the abort so that every correct process hears it
                # before the nooping period ends (forwarding once per process
                # is sufficient for the agreement argument)
                self._forwarded_zero = True
                for q in self.all_pids():
                    self.send(q, ("B", ABORT))

    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 0 and self.pid == self.n:
            if self.votes == COMMIT and self.collection == set(self.all_pids()):
                for q in self.all_pids():
                    self.send(q, ("B", COMMIT))
            else:
                self.votes = ABORT
                for q in self.all_pids():
                    self.send(q, ("B", ABORT))
            self.set_timer_units(3 + self.f)
            self.phase = 1
        elif self.phase == 0:
            if not self.received_b:
                for q in self.all_pids():
                    self.send(q, ("B", ABORT))
                self.votes = ABORT
            self.set_timer_units(3 + self.f)
            self.phase = 1
        elif self.phase == 1 and not self.decided:
            self.decide_once(self.votes)
