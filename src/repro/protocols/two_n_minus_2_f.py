"""(2n-2+f)NBAC — message-optimal indulgent atomic commit (Appendix E.6).

This protocol solves indulgent atomic commit (cell ``(AVT, AVT)``) with only
``2n - 2 + f`` messages in nice executions — the tight message lower bound of
Theorem 2 — at the price of a long chain of message delays (it is the
message-optimal counterpart of INBAC, which is delay-optimal).

Nice execution:

* a ``[V]`` chain ``P1 -> P2 -> ... -> Pn`` accumulates the AND of the votes
  (``n - 1`` messages);
* a ``[B]`` chain ``Pn -> P1 -> ... -> Pn`` carries the outcome back around
  the ring (``n`` messages), with ``Pf`` and all of ``P_{f+1}..P_n`` deciding
  as the chain passes them;
* a ``[Z]`` chain ``Pn -> P1 -> ... -> P_{f-1}`` (``f - 1`` messages, only
  when ``f >= 2``) lets the remaining backup processes decide.

Any process whose expected chain message does not arrive in time falls back to
the uniform-consensus module ``uc``; processes in the middle of the ring that
are left behind ask ``{P1..Pf, Pn}`` for help (``[HELP]`` / ``[HELPED]``).

Timers follow the Appendix E convention ("the timer starts at time 1 when the
first sending event happens").
"""

from __future__ import annotations

from typing import Any

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class TwoNMinus2PlusFNBAC(AtomicCommitProcess):
    """Indulgent atomic commit with ``2n - 2 + f`` messages in nice executions."""

    protocol_name = "(2n-2+f)NBAC"
    timer_origin_shift = 1.0

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.votes: int = COMMIT
        self.received_v = False
        self.received_b = False
        self.received_z = False
        self.phase = 0
        self.proposed = False
        self.uc = self.make_consensus(name="uc", on_decide=self._on_uc_decide)

    def _on_uc_decide(self, value: Any) -> None:
        if not self.decided:
            self.decide_once(value)

    def _propose_uc(self, value: int) -> None:
        if not self.proposed:
            self.proposed = True
            self.uc.propose(value)

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        self.votes = self.votes and self.vote
        if self.pid == 1:
            self.send(2, ("V", self.votes))
            self.set_timer_units(self.n + 1)
            self.phase = 1
        else:
            self.set_timer_units(self.pid)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V" and self.phase == 0:
            self.votes = self.votes and payload[1]
            self.received_v = True
        elif kind == "B" and self.phase == 1:
            self.votes = self.votes and payload[1]
            self.received_b = True
        elif kind == "Z" and self.phase == 2:
            self.votes = self.votes and payload[1]
            self.received_z = True
        elif kind == "HELP":
            if self.pid == self.n and self.phase == 1:
                self.send(src, ("HELPED", self.votes))
            elif 1 <= self.pid <= self.f and self.phase == 2:
                self.send(src, ("HELPED", self.votes))
        elif kind == "HELPED":
            self._propose_uc(payload[1])

    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 0:
            self._phase0_timeout()
        elif self.phase == 1:
            self._phase1_timeout()
        elif self.phase == 2:
            self._phase2_timeout()

    # ------------------------------------------------------------------ #
    # timeout bodies
    # ------------------------------------------------------------------ #
    def _phase0_timeout(self) -> None:
        if self.received_v:
            if self.pid == self.n:
                self.send(1, ("B", self.votes))
            else:
                self.send(self.pid + 1, ("V", self.votes))
        else:
            self.votes = ABORT
            self._propose_uc(ABORT)
        self.set_timer_units(self.n + self.pid)
        self.phase = 1

    def _phase1_timeout(self) -> None:
        if self.pid == self.f:
            if self.received_b:
                self.send(self.f + 1, ("B", self.votes))
                if not self.decided:
                    self.decide_once(self.votes)
            else:
                self.votes = ABORT
                self._propose_uc(ABORT)
            self.phase = 2
        elif self.pid == self.n:
            if self.received_b:
                if not self.decided:
                    self.decide_once(self.votes)
                if self.f >= 2:
                    self.send(1, ("Z", self.votes))
            else:
                self._propose_uc(self.votes)
        elif 1 <= self.pid <= self.f - 1:
            if self.received_b:
                self.send(self.pid + 1, ("B", self.votes))
            else:
                self.votes = ABORT
                self._propose_uc(ABORT)
            self.set_timer_units(2 * self.n + self.pid)
            self.phase = 2
        elif self.f + 1 <= self.pid <= self.n - 1:
            if self.received_b:
                self.send(self.pid + 1, ("B", self.votes))
                if not self.decided:
                    self.decide_once(self.votes)
            else:
                for q in list(range(1, self.f + 1)) + [self.n]:
                    self.send(q, ("HELP",))

    def _phase2_timeout(self) -> None:
        if not 1 <= self.pid <= self.f - 1:
            return
        if self.received_z:
            if not self.decided:
                self.decide_once(self.votes)
            if self.f - 1 >= self.pid + 1:
                self.send(self.pid + 1, ("Z", self.votes))
        else:
            self._propose_uc(self.votes)
