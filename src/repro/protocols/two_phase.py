"""Two-phase commit (2PC), the classical baseline.

The paper's Table 5 compares INBAC against 2PC under the convention that every
process starts spontaneously: in a nice execution the ``n - 1`` participants
send their votes to the coordinator at time 0, the coordinator computes the
logical AND at the end of the first message delay and broadcasts the outcome,
and every participant decides at the end of the second message delay — 2
message delays and ``2n - 2`` messages.

2PC guarantees agreement and validity in every crash-failure *and*
network-failure execution but is **blocking**: if the coordinator crashes
after collecting votes and before broadcasting the outcome, the remaining
participants never decide (termination is violated), which is exactly the row
the robustness-matrix experiment reproduces.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess, logical_and


class TwoPhaseCommit(AtomicCommitProcess):
    """2PC with a fixed coordinator and spontaneous participant votes."""

    protocol_name = "2PC"

    def __init__(self, pid, n, f, env, coordinator: int = 1, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.coordinator = coordinator
        self._votes: Dict[int, int] = {}
        self._outcome_sent = False

    @property
    def is_coordinator(self) -> bool:
        return self.pid == self.coordinator

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.vote = COMMIT if value else ABORT
        if self.is_coordinator:
            self._votes[self.pid] = self.vote
            # the coordinator waits one message delay for all votes
            self.set_timer(1, name="collect")
        else:
            self.send(self.coordinator, ("VOTE", self.vote))
            if self.vote == ABORT:
                # a participant voting no may abort unilaterally
                self.decide_once(ABORT)

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "VOTE" and self.is_coordinator:
            self._votes[src] = payload[1]
            if len(self._votes) == self.n and not self._outcome_sent:
                # all votes arrived early; the outcome still goes out at the
                # end of the first delay via the collect timer, matching the
                # synchronous accounting of the paper
                pass
        elif kind == "OUTCOME":
            self.decide_once(payload[1])

    def on_timeout(self, name: str) -> None:
        if name != "collect" or not self.is_coordinator or self._outcome_sent:
            return
        self._outcome_sent = True
        if len(self._votes) == self.n:
            outcome = logical_and(self._votes.values())
        else:
            # a vote is missing: some participant crashed or its message is
            # late; the coordinator aborts (a failure occurred, so validity
            # still holds)
            outcome = ABORT
        for q in self.other_pids():
            self.send(q, ("OUTCOME", outcome))
        self.decide_once(outcome)
