"""0NBAC — zero messages in nice executions (Appendix E.1).

0NBAC guarantees agreement and termination in every execution (cell
``(AT, AT)``) and solves NBAC in every failure-free execution, while sending
**no message at all** in nice executions: a process that votes 1 and receives
nothing by the end of the first message delay decides 1 by the *absence* of
messages (the paper's "implicit votes" technique).  It is simultaneously
message-optimal (0 messages) and delay-optimal (1 delay) for its problem — one
of the few cells with no time/message tradeoff.

Only processes that vote 0, or that learn of a 0 vote, ever send messages:
``[V, 0]`` from the no-voters, ``[B, 0]`` from yes-voters that saw a ``[V,
0]``, plus acknowledgements, and finally a round of uniform consensus to fix
the outcome.
"""

from __future__ import annotations

from typing import Any, Set

from repro.protocols.base import ABORT, COMMIT, AtomicCommitProcess


class ZeroNBAC(AtomicCommitProcess):
    """0 messages and one message delay in every nice execution."""

    protocol_name = "0NBAC"

    def __init__(self, pid, n, f, env, **kwargs):
        super().__init__(pid, n, f, env, **kwargs)
        self.myvote: int = COMMIT
        self.myack: Set[int] = set()
        self.zero = False
        self.phase = 0
        self.uc = self.make_consensus(name="uc", on_decide=self._on_uc_decide)

    def _on_uc_decide(self, value: Any) -> None:
        if not self.decided:
            self.decide_once(value)

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def on_propose(self, value: Any) -> None:
        self.myvote = COMMIT if value else ABORT
        self.vote = self.myvote
        if self.myvote == ABORT:
            for q in self.all_pids():
                self.send(q, ("V", ABORT))
        self.set_timer(1)
        self.phase = 1

    def on_deliver(self, src: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "V" and self.phase == 1:
            self.zero = True
            self.send(src, ("ACK",))
        elif kind == "B" and self.phase == 2:
            if not (self.myvote == COMMIT and self.decided):
                self.send(src, ("ACK",))
        elif kind == "ACK":
            self.myack.add(src)

    def on_timeout(self, name: str) -> None:
        if name != "timer":
            return
        if self.phase == 1:
            self.phase = 2
            if not self.zero and self.myvote == COMMIT:
                # no [V, 0] arrived within one delay: everyone (implicitly)
                # voted 1, decide commit without having sent anything
                self.decide_once(COMMIT)
            elif self.zero and self.myvote == COMMIT:
                for q in self.all_pids():
                    self.send(q, ("B", ABORT))
                self.set_timer(3)
            else:  # myvote == ABORT
                self.set_timer(2)
        elif self.phase == 2 and not self.decided:
            # did every process acknowledge my [V, 0] / [B, 0] broadcast?
            if self.myack < set(self.all_pids()):
                self.uc.propose(COMMIT)
            else:
                self.uc.propose(ABORT)
