"""The asyncio transport runtime: the wall-clock twin of the simulator.

Every protocol and database process in this repository is written against the
runtime-neutral :class:`~repro.env.ProcessEnv` contract.  This package is the
second implementation of that contract (the first is the discrete-event
simulator, :mod:`repro.sim.runner`): in-process ``asyncio.Queue`` links, real
concurrency, wall-clock timers scaled so one unit of simulated time ``U``
maps to ``AsyncRuntime.unit`` seconds.  The *identical, unmodified* protocol
classes — INBAC, 2PC, 3PC, Paxos commit and the rest of the registry — commit
real transactions here, which is the strongest evidence the reproduction's
protocol logic does not secretly depend on simulator scheduling.

Layout:

* :mod:`~repro.runtime.transport` — :class:`LocalTransport` (queues) and
  :class:`LinkPolicy` (per-link delay / jitter / drop injection);
* :mod:`~repro.runtime.node` — :class:`AsyncEnv` (the contract impl) and
  :class:`AsyncNode` (one inbox-draining consumer per process, so handlers
  stay single-threaded per process exactly as under the simulator);
* :mod:`~repro.runtime.runtime` — :class:`AsyncRuntime` (timers, decide-once
  ledger, crash injection) and :func:`run_commit` (one commit instance,
  synchronous entry point);
* :mod:`~repro.runtime.cluster` — the transactional KV cluster:
  :func:`run_cluster_async` (batch) and :class:`AsyncClusterService` (live
  concurrent clients);
* :mod:`~repro.runtime.conformance` — :class:`AsyncHarness` for the
  executable contract suite in :mod:`repro.env.conformance`.

This package intentionally reads the wall clock; the determinism lint rule
DET002 is scoped out of ``src/repro/runtime/`` (see :mod:`repro.lint.rules`).
The simulator remains the deterministic oracle — nothing under
:mod:`repro.sim`, :mod:`repro.db` (sim backend) or :mod:`repro.exp` imports
this package except through the explicit backend dispatch in
:func:`repro.db.cluster.run_cluster`.
"""

from __future__ import annotations

from repro.runtime.cluster import (
    AsyncClusterService,
    DEFAULT_CLUSTER_UNIT_SECONDS,
    run_cluster_async,
)
from repro.runtime.conformance import AsyncHarness
from repro.runtime.node import AsyncEnv, AsyncNode
from repro.runtime.runtime import (
    AsyncRuntime,
    CommitRunResult,
    DEFAULT_UNIT_SECONDS,
    run_commit,
)
from repro.runtime.transport import LinkPolicy, LocalTransport

__all__ = [
    "AsyncClusterService",
    "AsyncEnv",
    "AsyncHarness",
    "AsyncNode",
    "AsyncRuntime",
    "CommitRunResult",
    "DEFAULT_CLUSTER_UNIT_SECONDS",
    "DEFAULT_UNIT_SECONDS",
    "LinkPolicy",
    "LocalTransport",
    "run_cluster_async",
    "run_commit",
]
