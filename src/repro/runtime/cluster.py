"""The transactional KV cluster served by the asyncio runtime.

Runs the *same* :class:`~repro.db.partition.PartitionServer` and
:class:`~repro.db.coordinator.ClientCoordinator` classes the simulator runs —
built through the shared construction seam in :mod:`repro.db.cluster` — on
wall-clock asyncio queues.  Two entry points:

* :func:`run_cluster_async` — batch mode, mirroring
  :func:`repro.db.cluster.run_cluster`: the coordinator submits a planned
  workload from its own timers (the identical code path as under the
  simulator) and the run ends when every transaction has an outcome or the
  time budget expires.  Returns the same :class:`~repro.db.cluster.ClusterReport`.
* :class:`AsyncClusterService` — live mode: ``await service.submit(txn)``
  from any number of concurrent client coroutines, crash partitions mid-run,
  then ``await service.shutdown()`` for the report (invariant battery
  included, evaluated on the surviving state).

Simulator-only features (``delay_model``, ``controller``) are rejected with a
:class:`~repro.errors.ConfigurationError`; runtime fault injection instead
goes through :class:`~repro.runtime.transport.LinkPolicy` (per-link delay,
jitter, drop) and ``fault_plan.crashes`` (which carries over unchanged).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.db.cluster import (
    ClusterConfig,
    ClusterReport,
    RecoveryEvent,
    _validate,
    build_client,
    build_partition,
    build_report,
    cluster_shape,
)
from repro.db.coordinator import ClientCoordinator, TransactionOutcome
from repro.db.transaction import Transaction
from repro.errors import ConfigurationError
from repro.runtime.runtime import AsyncRuntime
from repro.runtime.transport import LinkPolicy, LocalTransport

#: clusters run a finer clock than bare protocol runs: commit timers span
#: tens of units, so 10 ms per U keeps batch runs short while still dwarfing
#: the local queue hop
DEFAULT_CLUSTER_UNIT_SECONDS = 0.01


def _check_runtime_config(config: ClusterConfig) -> None:
    if config.controller is not None:
        raise ConfigurationError(
            "schedule controllers are simulator-only; the asyncio backend "
            "cannot replay controlled schedules"
        )
    if config.delay_model is not None:
        raise ConfigurationError(
            "delay models are simulator-only; configure LinkPolicy delays "
            "on the asyncio backend instead"
        )


def _execution_class(
    transport: LocalTransport, crashes: Dict[int, float]
) -> str:
    """The runtime analogue of the simulator's execution classification."""
    if transport.dropped > 0 or transport.worst_case_delay_units() > 1.0:
        return "network-failure"
    if crashes:
        return "crash-failure"
    return "failure-free"


class AsyncClusterService:
    """A live transactional KV cluster on the asyncio runtime.

    Usage::

        service = AsyncClusterService(ClusterConfig(commit_protocol="INBAC"))
        await service.start()
        outcome = await service.submit(txn)        # from any coroutine
        service.crash_partition(2)                 # fault injection
        report = await service.shutdown()          # invariants included
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        unit: float = DEFAULT_CLUSTER_UNIT_SECONDS,
        default_link_policy: Optional[LinkPolicy] = None,
        link_policies: Optional[Dict[Tuple[int, int], LinkPolicy]] = None,
        metrics: Optional[Any] = None,
        events: Optional[Any] = None,
    ):
        _check_runtime_config(config)
        if config.num_partitions < 2:
            raise ConfigurationError("a cluster needs at least 2 partitions")
        if config.fault_plan is not None and cluster_shape(config)[2] in getattr(
            config.fault_plan, "recoveries", {}
        ):
            raise ConfigurationError(
                "the client coordinator cannot rejoin: its outcome log is "
                "volatile; only partitions are recoverable"
            )
        self.config = config
        self.unit = unit
        #: optional duck-typed telemetry sinks, threaded into the transport
        #: and runtime and fed by the service's own lifecycle hooks (crash,
        #: rejoin, WAL replay, in-doubt resolution, retries).  Strictly out
        #: of band — never consulted for any decision; this module never
        #: imports the obs package
        self.metrics = metrics
        self.events = events
        n, f, client_pid = cluster_shape(config)
        self.client_pid = client_pid
        self.transport = LocalTransport(unit=unit, seed=config.seed, metrics=metrics)
        if default_link_policy is not None:
            self.transport.set_default_policy(default_link_policy)
        for (src, dst), policy in sorted((link_policies or {}).items()):
            self.transport.set_link_policy(src, dst, policy)
        self.runtime = AsyncRuntime(
            n, f, unit=unit, seed=config.seed, transport=self.transport,
            metrics=metrics,
        )
        self.client: Optional[ClientCoordinator] = None
        self._waiters: Dict[str, asyncio.Future] = {}
        self._crash_tasks: list = []
        self._recovery_events: list = []
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, workload: Sequence[Transaction] = ()) -> None:
        """Boot partitions and coordinator; optionally preload a workload."""
        n, f, _ = cluster_shape(self.config)
        for pid in range(1, self.config.num_partitions + 1):
            self.runtime.bind_process(
                pid,
                build_partition(pid, n, f, self.runtime.env_for(pid), self.config),
            )
        self.client = build_client(
            self.client_pid,
            n,
            f,
            self.runtime.env_for(self.client_pid),
            self.config,
            workload,
        )
        self.client.on_outcome = self._on_outcome
        self.runtime.bind_process(self.client_pid, self.client)
        await self.runtime.start()
        for pid in range(1, n + 1):
            self.runtime.call(pid, lambda process: process.on_start())
        if self.config.fault_plan is not None:
            for pid in sorted(self.config.fault_plan.crashes):
                at_units = self.config.fault_plan.crashes[pid]
                self._crash_tasks.append(
                    asyncio.get_running_loop().create_task(
                        self._crash_later(pid, at_units)
                    )
                )
            for pid in sorted(self.config.fault_plan.recoveries):
                at_units = self.config.fault_plan.recoveries[pid]
                self._crash_tasks.append(
                    asyncio.get_running_loop().create_task(
                        self._recover_later(pid, at_units)
                    )
                )
        self._started = True

    async def _crash_later(self, pid: int, at_units: float) -> None:
        delay_units = max(0.0, at_units - self.runtime.now_units())
        if delay_units > 0:
            await asyncio.sleep(delay_units * self.unit)
        self.crash_partition(pid)

    async def _recover_later(self, pid: int, at_units: float) -> None:
        delay_units = max(0.0, at_units - self.runtime.now_units())
        if delay_units > 0:
            await asyncio.sleep(delay_units * self.unit)
        self.recover_partition(pid)

    def _on_outcome(self, outcome: TransactionOutcome) -> None:
        waiter = self._waiters.pop(outcome.txn_id, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(outcome)

    # ------------------------------------------------------------------ #
    # the client surface
    # ------------------------------------------------------------------ #
    async def submit(
        self, txn: Transaction, *, timeout_units: Optional[float] = None
    ) -> Optional[TransactionOutcome]:
        """Submit one transaction and await its outcome.

        Returns None when no outcome arrived within ``timeout_units``
        (default: the config's ``max_time``) — e.g. because a participant
        partition crashed; the transaction then shows up in the report's
        pending/in-doubt sections.
        """
        if not self._started or self.client is None:
            raise ConfigurationError("service not started")
        if self.runtime.is_down(self.client_pid):
            raise ConfigurationError(
                "the client coordinator has crashed; no new transactions can "
                "be submitted"
            )
        budget = self.config.max_time if timeout_units is None else timeout_units
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[txn.txn_id] = waiter
        self.runtime.call(
            self.client_pid, lambda process: process.submit_transaction(txn)
        )
        try:
            return await asyncio.wait_for(waiter, timeout=budget * self.unit)
        except asyncio.TimeoutError:
            self._waiters.pop(txn.txn_id, None)
            return None

    def crash_partition(self, pid: int) -> None:
        """Crash-stop a partition (or the coordinator) right now."""
        self._check_known_pid(pid)
        if self.runtime.is_down(pid):
            raise ConfigurationError(f"P{pid} is already crashed")
        self.runtime.crash(pid)
        if self.metrics is not None:
            self.metrics.inc("cluster.crashes")
        if self.events is not None:
            self.events.emit(
                "cluster.crash", pid=pid, at_units=self.runtime.crashes.get(pid)
            )

    def recover_partition(self, pid: int) -> RecoveryEvent:
        """Rejoin a crashed partition by WAL replay, right now.

        Rebuilds the partition's :class:`~repro.db.partition.PartitionServer`
        from its surviving write-ahead log — the volatile store, locks and
        pending-transaction state of the old incarnation are discarded, as a
        real restart would — then re-opens its links and resolves any in-doubt
        transactions through termination queries to the coordinator and the
        peer participants recorded in the WAL.  The client coordinator is not
        recoverable (its outcome log is volatile by design).
        """
        self._check_known_pid(pid)
        if pid == self.client_pid:
            raise ConfigurationError(
                "the client coordinator cannot rejoin: its outcome log is "
                "volatile; only partitions are recoverable"
            )
        if not self.runtime.is_down(pid):
            raise ConfigurationError(f"P{pid} is not crashed; nothing to recover")
        n, f, _ = cluster_shape(self.config)
        old = self.runtime.processes[pid]
        server = build_partition(
            pid, n, f, self.runtime.env_for(pid), self.config
        )
        replay_t0 = time.monotonic()
        replayed = server.recover_from_wal(old.wal, coordinator=self.client_pid)
        replay_seconds = time.monotonic() - replay_t0
        self.runtime.recover(pid, server)
        event = RecoveryEvent(
            pid=pid,
            crashed_at=self.runtime.crashes.get(pid, 0.0),
            rejoined_at=self.runtime.recoveries[pid],
            replayed_transactions=replayed,
            in_doubt_at_rejoin=tuple(server.wal.in_doubt()),
        )
        self._recovery_events.append(event)
        if self.metrics is not None:
            self.metrics.inc("cluster.rejoins")
            self.metrics.inc("cluster.in_doubt_at_rejoin", len(event.in_doubt_at_rejoin))
            self.metrics.observe("cluster.wal_replay_seconds", replay_seconds)
        if self.events is not None:
            self.events.emit(
                "cluster.rejoin",
                pid=pid,
                replayed_transactions=replayed,
                in_doubt=len(event.in_doubt_at_rejoin),
                downtime_units=event.downtime,
                wal_replay_seconds=replay_seconds,
            )
        return event

    def _check_known_pid(self, pid: int) -> None:
        if pid not in self.runtime.processes:
            raise ConfigurationError(
                f"unknown process P{pid}: the cluster runs partitions "
                f"P1..P{self.config.num_partitions} and the coordinator "
                f"P{self.client_pid}"
            )

    async def wait_all_completed(self, timeout_units: float) -> bool:
        """Wait until the coordinator has an outcome for every transaction."""
        if self.client is None:
            raise ConfigurationError("service not started")
        deadline = self.runtime.now_units() + timeout_units
        while not self.client.all_completed():
            if self.runtime.now_units() >= deadline:
                return False
            await asyncio.sleep(self.unit / 2)
        return True

    # ------------------------------------------------------------------ #
    # tear-down and reporting
    # ------------------------------------------------------------------ #
    async def shutdown(self) -> ClusterReport:
        """Stop the runtime and render the report from the surviving state."""
        if self.client is None:
            raise ConfigurationError("service not started")
        end_time = self.runtime.now_units()
        pending_crashes = [t for t in self._crash_tasks if not t.done()]
        for task in pending_crashes:
            task.cancel()
        if pending_crashes:
            await asyncio.gather(*pending_crashes, return_exceptions=True)
        self._crash_tasks.clear()
        await self.runtime.stop()
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.cancel()
        self._waiters.clear()
        partition_servers = {
            pid: self.runtime.processes[pid]
            for pid in range(1, self.config.num_partitions + 1)
        }
        crashes = dict(self.runtime.crashes)
        if self.metrics is not None or self.events is not None:
            # in-doubt resolution: queried at rejoin minus still unresolved now
            queried = sum(
                len(e.in_doubt_at_rejoin) for e in self._recovery_events
            )
            unresolved = sum(
                len(server.in_doubt_transactions())
                for server in partition_servers.values()
            )
            resolved = max(0, queried - unresolved)
            retries = sum(self.client.retry_counts.values())
            if self.metrics is not None:
                self.metrics.inc("cluster.in_doubt_resolved", resolved)
                self.metrics.inc("cluster.retries", retries)
            if self.events is not None:
                self.events.emit(
                    "cluster.shutdown",
                    end_units=end_time,
                    transactions=len(self.client.outcomes),
                    in_doubt_resolved=resolved,
                    retries=retries,
                    crashes=len(crashes),
                )
        return build_report(
            self.config,
            self.client,
            partition_servers,
            messages_total=self.transport.messages_total,
            messages_by_module=dict(self.transport.messages_by_module),
            end_time=end_time,
            # wall-clock runs have no retrospective trace: the best-case
            # accounting equals the total
            messages_until_last_decision=self.transport.messages_total,
            execution_class=_execution_class(self.transport, crashes),
            crashes=crashes,
            recovery_events=list(self._recovery_events),
            backend="asyncio",
        )


def run_cluster_async(
    config: ClusterConfig,
    transactions: Sequence[Transaction],
    *,
    unit: float = DEFAULT_CLUSTER_UNIT_SECONDS,
    timeout_units: Optional[float] = None,
    default_link_policy: Optional[LinkPolicy] = None,
    metrics: Optional[Any] = None,
    events: Optional[Any] = None,
) -> ClusterReport:
    """Batch counterpart of :func:`repro.db.cluster.run_cluster` on asyncio.

    The coordinator submits the planned workload from its own timers —
    exactly the code path the simulator drives — and the run ends when every
    transaction has an outcome or ``timeout_units`` (default: the config's
    ``max_time``) of scaled wall-clock time elapsed.
    """
    _validate(config, transactions)
    _check_runtime_config(config)
    budget = config.max_time if timeout_units is None else timeout_units

    async def _main() -> ClusterReport:
        service = AsyncClusterService(
            config,
            unit=unit,
            default_link_policy=default_link_policy,
            metrics=metrics,
            events=events,
        )
        await service.start(workload=transactions)
        await service.wait_all_completed(budget)
        return await service.shutdown()

    return asyncio.run(_main())


__all__ = [
    "AsyncClusterService",
    "DEFAULT_CLUSTER_UNIT_SECONDS",
    "run_cluster_async",
]
