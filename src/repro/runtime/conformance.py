"""The asyncio harness for the :mod:`repro.env.conformance` suite.

Runs the same probe processes the simulator harness runs, on the wall clock.
The stated ``tolerance_units`` covers event-loop scheduling jitter only:
``asyncio.sleep`` never returns early, so timers cannot fire before their
deadline, but ``now()`` is sampled when the handler *runs*, which can trail
the nominal fire time by however long the loop was busy.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from repro.env import Process
from repro.env.conformance import HarnessResult, ObservingProcess
from repro.runtime.runtime import AsyncRuntime, DEFAULT_UNIT_SECONDS

#: extra wall-clock seconds past the scenario horizon before tear-down
_SETTLE_SECONDS = 0.1


class AsyncHarness:
    """Drives probes on the asyncio runtime (wall-clock timing)."""

    name = "asyncio"
    #: generous slack for loop scheduling jitter, in units of U — at the
    #: default unit of 20 ms/U this absorbs a 10 ms loop stall
    tolerance_units = 0.5

    def __init__(self, unit: float = DEFAULT_UNIT_SECONDS, seed: int = 0):
        self.unit = unit
        self.seed = seed

    def run(
        self,
        factories: Dict[int, Callable[[int, int, int, Any], Process]],
        n: int,
        f: int,
        *,
        duration_units: float,
        proposals: Optional[Dict[int, Any]] = None,
    ) -> HarnessResult:
        async def _main() -> HarnessResult:
            runtime = AsyncRuntime(n, f, unit=self.unit, seed=self.seed)
            for pid in range(1, n + 1):
                factory = factories.get(pid, ObservingProcess)
                runtime.bind_process(pid, factory(pid, n, f, runtime.env_for(pid)))
            await runtime.start()
            for pid in range(1, n + 1):
                runtime.call(pid, lambda process: process.on_start())
            for pid, value in (proposals or {}).items():
                runtime.propose(pid, value)
            await asyncio.sleep(duration_units * self.unit + _SETTLE_SECONDS)
            await runtime.stop()
            return HarnessResult(
                processes=dict(runtime.processes),
                decisions=dict(runtime.decisions),
                errors=[f"P{pid}: {exc!r}" for pid, exc in runtime.errors],
            )

        return asyncio.run(_main())


__all__ = ["AsyncHarness"]
