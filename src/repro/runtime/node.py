"""One asyncio node: an inbox-draining task wrapped around a protocol process.

The simulator guarantees that a process handles one event at a time — handler
code never races with itself.  The runtime preserves that guarantee with the
classic actor shape: every process gets an ``asyncio.Queue`` inbox and a
single consumer task that drains it, so ``on_deliver`` / ``on_timeout`` /
``on_propose`` run strictly sequentially per process even though all nodes
run concurrently on the loop.  Protocol handlers therefore need no locks and
no awareness that they left the simulator.

:class:`AsyncEnv` is the runtime's :class:`~repro.env.ProcessEnv`: sends go
straight to the transport, timers and decisions go through the runtime (which
owns the generation counters and the decide-once ledger), and ``now()`` is
the wall clock rebased to units of U.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Optional, TYPE_CHECKING

from repro.env import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AsyncRuntime


class AsyncEnv:
    """The asyncio-runtime implementation of the ``ProcessEnv`` contract."""

    def __init__(self, runtime: "AsyncRuntime", pid: int):
        self._runtime = runtime
        self.pid = pid
        # Mirror SimEnv's per-process seeded stream so randomized protocol
        # variants behave identically under either runtime.
        self.random = random.Random(runtime.seed * 1_000_003 + pid)

    def send(self, dst: int, payload: Any, module: str = "main") -> None:
        self._runtime.transport.send(self.pid, dst, payload, module=module)

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        self._runtime.set_timer(self.pid, at_units, name)

    def cancel_timer(self, name: str = "timer") -> None:
        self._runtime.cancel_timer(self.pid, name)

    def decide(self, value: Any) -> None:
        self._runtime.record_decision(self.pid, value)

    def now(self) -> float:
        return self._runtime.now_units()


class AsyncNode:
    """The inbox + consumer task hosting one process on the event loop."""

    def __init__(self, pid: int, runtime: "AsyncRuntime"):
        self.pid = pid
        self.runtime = runtime
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.process: Optional[Process] = None
        self.task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._consume(), name=f"node-P{self.pid}"
        )

    async def _consume(self) -> None:
        while True:
            item = await self.inbox.get()
            kind = item[0]
            if kind == "stop":
                return
            process = self.process
            if process is None or process.crashed:
                continue
            try:
                if kind == "deliver":
                    _, src, payload = item
                    process.deliver(src, payload)
                elif kind == "timer":
                    _, name, generation = item
                    # Re-check the generation at handling time: a rearm or
                    # cancel that happened while this expiry sat in the inbox
                    # supersedes it.
                    if self.runtime.timer_generation(self.pid, name) == generation:
                        process.timeout(name)
                elif kind == "propose":
                    process.on_propose(item[1])
                elif kind == "call":
                    item[1](process)
            except Exception as exc:  # noqa: BLE001 - fault isolation boundary
                self.runtime.record_error(self.pid, exc)

    async def stop(self) -> None:
        if self.task is None:
            return
        self.inbox.put_nowait(("stop",))
        try:
            await asyncio.wait_for(self.task, timeout=1.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            self.task.cancel()
            try:
                await self.task
            except asyncio.CancelledError:
                pass
        self.task = None


__all__ = ["AsyncEnv", "AsyncNode"]
