"""The asyncio runtime: wall-clock host for unmodified protocol processes.

:class:`AsyncRuntime` owns everything the simulator's :class:`Scheduler` owns
— processes, timers, the decide-once ledger, crash injection — but on the
event loop and the wall clock.  One unit of simulated time ``U`` maps to
``unit`` seconds (default 20 ms), chosen so that protocol timers (a few U)
dwarf the local queue hop (~0.1 ms): in fault-free runs decisions are driven
by message flow exactly as in the paper's nice executions, while timeout
paths remain reachable by shrinking ``unit`` or injecting link delays.

Timers reproduce the simulator's semantics:

* ``set_timer`` (re-)arms the *named* timer to fire at an absolute time;
  rearming bumps a per-``(pid, name)`` generation, and a pending expiry whose
  generation is stale by the time the node's consumer dequeues it is dropped
  — rearm-before-fire supersedes, fires exactly once.
* ``cancel_timer`` is a generation bump with no new sleep task; cancelling a
  fired or never-armed timer is a no-op.
* a deadline in the past fires as soon as possible, never before the current
  handler returns (the expiry goes through the inbox like any other event).

``decide`` routes through :meth:`record_decision`, which raises
:class:`~repro.errors.ProtocolViolationError` on a second decision from the
same process — the same integrity enforcement the simulator applies.

This module deliberately reads the wall clock (``time.monotonic``); the lint
suite's determinism rule DET002 is *scoped out* of ``src/repro/runtime/``
(see :mod:`repro.lint.rules`) because wall-clock time is this package's whole
purpose, not an accident.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.env import Process
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.runtime.node import AsyncEnv, AsyncNode
from repro.runtime.transport import LinkPolicy, LocalTransport

ProcessFactory = Callable[[int, int, int, AsyncEnv], Process]

#: default wall-clock seconds per unit of simulated time U
DEFAULT_UNIT_SECONDS = 0.02


class AsyncRuntime:
    """Hosts ``n`` protocol processes on the asyncio event loop."""

    def __init__(
        self,
        n: int,
        f: int,
        *,
        unit: float = DEFAULT_UNIT_SECONDS,
        seed: int = 0,
        transport: Optional[LocalTransport] = None,
        metrics: Optional[Any] = None,
    ):
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={n}")
        if not 1 <= f <= n - 1:
            raise ConfigurationError(f"need 1 <= f <= n-1, got f={f} for n={n}")
        if unit <= 0:
            raise ConfigurationError(f"unit must be positive, got {unit}")
        self.n = n
        self.f = f
        self.unit = unit
        self.seed = seed
        #: optional duck-typed telemetry sink (``inc``/``observe``), handed in
        #: by the hosting service — this module never imports the obs package
        self.metrics = metrics
        self.transport = transport or LocalTransport(unit=unit, seed=seed)
        self.envs: Dict[int, AsyncEnv] = {
            pid: AsyncEnv(self, pid) for pid in range(1, n + 1)
        }
        self.nodes: Dict[int, AsyncNode] = {}
        self.processes: Dict[int, Process] = {}
        self.decisions: Dict[int, Any] = {}
        self.decision_times: Dict[int, float] = {}
        #: pid -> first crash time; *history*, never un-recorded by recovery
        #: (a crashed-then-recovered pid stays out of correctness accounting)
        self.crashes: Dict[int, float] = {}
        #: pid -> last rejoin time
        self.recoveries: Dict[int, float] = {}
        #: pids currently down (liveness, as opposed to the crash history)
        self._down: Set[int] = set()
        self.errors: List[Tuple[int, BaseException]] = []
        self._timer_generation: Dict[Tuple[int, str], int] = {}
        self._timer_tasks: Set[asyncio.Task] = set()
        self._undecided_correct = n
        self._all_decided = asyncio.Event()
        self._t0: Optional[float] = None
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def bind_processes(self, factory: ProcessFactory) -> None:
        """Create one process per id using ``factory(pid, n, f, env)``."""
        for pid in range(1, self.n + 1):
            self.bind_process(pid, factory(pid, self.n, self.f, self.envs[pid]))

    def bind_process(self, pid: int, process: Process) -> None:
        if not 1 <= pid <= self.n:
            raise ConfigurationError(f"pid {pid} out of range 1..{self.n}")
        self.processes[pid] = process

    def env_for(self, pid: int) -> AsyncEnv:
        return self.envs[pid]

    async def start(self) -> None:
        """Start the wall clock and one consumer task per process."""
        if self._started:
            raise ConfigurationError("runtime already started")
        if len(self.processes) != self.n:
            raise ConfigurationError(
                f"bound {len(self.processes)} of {self.n} processes; "
                "call bind_processes() first"
            )
        self._t0 = time.monotonic()
        self._started = True
        # outage windows on link policies are expressed in units since start;
        # give the transport the same time base the timers use
        self.transport.now_units = self.now_units
        for pid in range(1, self.n + 1):
            node = AsyncNode(pid, self)
            node.process = self.processes[pid]
            self.nodes[pid] = node
            self.transport.register(pid, node.inbox)
        for pid in range(1, self.n + 1):
            self.nodes[pid].start()

    async def stop(self) -> None:
        """Stop consumers, cancel pending timers and in-flight deliveries."""
        # lint: allow[DET001] cancel-all over wall-clock tasks; order immaterial
        timer_tasks = [task for task in self._timer_tasks if not task.done()]
        for task in timer_tasks:
            task.cancel()
        if timer_tasks:
            await asyncio.gather(*timer_tasks, return_exceptions=True)
        self._timer_tasks.clear()
        await self.transport.close()
        for pid in sorted(self.nodes):
            await self.nodes[pid].stop()

    # ------------------------------------------------------------------ #
    # the clock
    # ------------------------------------------------------------------ #
    def now_units(self) -> float:
        """Wall-clock time since start(), in units of U (0.0 before start)."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) / self.unit

    # ------------------------------------------------------------------ #
    # timers (generation-superseded, simulator semantics)
    # ------------------------------------------------------------------ #
    def timer_generation(self, pid: int, name: str) -> int:
        return self._timer_generation.get((pid, name), 0)

    def set_timer(self, pid: int, at_units: float, name: str) -> None:
        key = (pid, name)
        generation = self._timer_generation.get(key, 0) + 1
        self._timer_generation[key] = generation
        if self.metrics is not None:
            self.metrics.inc(
                "runtime.timer_set" if generation == 1 else "runtime.timer_rearm"
            )
        delay_units = max(0.0, at_units - self.now_units())
        task = asyncio.get_running_loop().create_task(
            self._fire_timer(pid, name, generation, delay_units * self.unit)
        )
        self._timer_tasks.add(task)
        task.add_done_callback(self._timer_tasks.discard)

    def cancel_timer(self, pid: int, name: str) -> None:
        key = (pid, name)
        if key in self._timer_generation:
            self._timer_generation[key] += 1
            if self.metrics is not None:
                self.metrics.inc("runtime.timer_cancel")

    async def _fire_timer(
        self, pid: int, name: str, generation: int, delay_seconds: float
    ) -> None:
        if delay_seconds > 0:
            await asyncio.sleep(delay_seconds)
        # First check at fire time; the node re-checks at handling time so a
        # rearm/cancel racing with the inbox still supersedes this expiry.
        if self._timer_generation.get((pid, name)) != generation:
            return
        node = self.nodes.get(pid)
        if node is not None and pid not in self._down:
            node.inbox.put_nowait(("timer", name, generation))

    # ------------------------------------------------------------------ #
    # decisions, crashes, errors
    # ------------------------------------------------------------------ #
    def record_decision(self, pid: int, value: Any) -> None:
        if pid in self.decisions:
            raise ProtocolViolationError(
                f"P{pid} attempted to decide twice "
                f"({self.decisions[pid]!r} then {value!r})"
            )
        self.decisions[pid] = value
        self.decision_times[pid] = self.now_units()
        if pid not in self.crashes:
            self._undecided_correct -= 1
            if self._undecided_correct == 0:
                self._all_decided.set()

    def crash(self, pid: int) -> None:
        """Crash ``pid`` now: silence its links and stop handling its events."""
        if pid in self._down:
            return
        first = pid not in self.crashes
        if first:
            self.crashes[pid] = self.now_units()
        self._down.add(pid)
        process = self.processes.get(pid)
        if process is not None and not process.crashed:
            process.crashed = True
            process.on_crash()
        self.transport.crash(pid)
        # correctness accounting charges only the first crash: a recovered
        # pid never re-enters the correct set, so a re-crash changes nothing
        if first and pid not in self.decisions:
            self._undecided_correct -= 1
            if self._undecided_correct == 0:
                self._all_decided.set()

    def is_down(self, pid: int) -> bool:
        """Whether ``pid`` is currently crashed (and not yet recovered)."""
        return pid in self._down

    def recover(self, pid: int, process: Optional[Process] = None) -> None:
        """Rejoin a crashed pid with ``process`` (default: the crashed object).

        Timer-generation-safe restart of the actor loop: every timer armed by
        the previous incarnation is superseded before the replacement process
        is bound, so no stale expiry can fire into the new one; the node's
        consumer task never exited (it skips events while crashed — losing
        in-crash traffic is the point), so rebinding the process and
        re-opening the transport resumes service.  The pid stays in
        ``crashes``: recovery restores liveness, not the correctness
        accounting.  ``on_recover()`` runs on the node's consumer, serialised
        with handlers like any other event.
        """
        if pid not in self._down:
            raise ConfigurationError(f"P{pid} is not crashed; nothing to recover")
        replacement = process if process is not None else self.processes[pid]
        for key in self._timer_generation:
            if key[0] == pid:
                self._timer_generation[key] += 1
        self._down.discard(pid)
        replacement.crashed = False
        self.processes[pid] = replacement
        node = self.nodes.get(pid)
        if node is not None:
            node.process = replacement
        self.transport.recover(pid)
        self.recoveries[pid] = self.now_units()
        self.call(pid, lambda p: p.on_recover())

    def record_error(self, pid: int, exc: BaseException) -> None:
        self.errors.append((pid, exc))
        # A handler fault must not hang run_commit forever: surface it.
        self._all_decided.set()

    # ------------------------------------------------------------------ #
    # driving events into processes
    # ------------------------------------------------------------------ #
    def propose(self, pid: int, value: Any) -> None:
        self.nodes[pid].inbox.put_nowait(("propose", value))

    def call(self, pid: int, fn: Callable[[Process], None]) -> None:
        """Run ``fn(process)`` on the node's consumer (serialised with handlers)."""
        self.nodes[pid].inbox.put_nowait(("call", fn))

    async def wait_all_correct_decided(self, timeout_units: float) -> bool:
        """Wait until every non-crashed process decided.  True iff it happened."""
        try:
            await asyncio.wait_for(
                self._all_decided.wait(), timeout=timeout_units * self.unit
            )
        except asyncio.TimeoutError:
            return False
        return self._undecided_correct == 0


@dataclass
class CommitRunResult:
    """Outcome of one :func:`run_commit` execution on the asyncio runtime."""

    protocol: str
    n: int
    f: int
    unit: float
    decisions: Dict[int, int]
    decision_times: Dict[int, float]
    crashes: Dict[int, float]
    elapsed_units: float
    timed_out: bool
    errors: List[str] = field(default_factory=list)
    messages_total: int = 0
    messages_by_module: Dict[str, int] = field(default_factory=dict)

    @property
    def decision(self) -> Optional[int]:
        """The agreed decision, or None if absent or split (agreement breach)."""
        values = set(self.decisions.values())
        if len(values) == 1:
            return next(iter(values))
        return None

    @property
    def all_agree(self) -> bool:
        return bool(self.decisions) and len(set(self.decisions.values())) == 1


def run_commit(
    protocol: Any,
    n: int,
    f: int,
    votes: Sequence[int],
    *,
    unit: float = DEFAULT_UNIT_SECONDS,
    timeout_units: float = 200.0,
    seed: int = 0,
    link_policy: Optional[LinkPolicy] = None,
    crash_at: Optional[Dict[int, float]] = None,
    protocol_kwargs: Optional[Dict[str, Any]] = None,
) -> CommitRunResult:
    """Run one commit instance of ``protocol`` on the asyncio runtime.

    ``protocol`` is a registry name (``"2PC"``, ``"INBAC"``, ...) or a
    :class:`~repro.env.Process` subclass; the class is used *unmodified* —
    the same object the simulator executes.  ``crash_at`` maps pids to crash
    times in units of U.  Returns a :class:`CommitRunResult`; ``timed_out``
    is True when some correct process had not decided within
    ``timeout_units`` (plus the worst configured link delay).
    """
    if isinstance(protocol, str):
        from repro.protocols.registry import get_protocol

        info = get_protocol(protocol)
        cls, label = info.cls, info.name
    else:
        cls, label = protocol, getattr(protocol, "__name__", str(protocol))
    if len(votes) != n:
        raise ConfigurationError(f"need {n} votes, got {len(votes)}")
    kwargs = dict(protocol_kwargs or {})

    async def _main() -> CommitRunResult:
        transport = LocalTransport(unit=unit, seed=seed)
        if link_policy is not None:
            transport.set_default_policy(link_policy)
        runtime = AsyncRuntime(n, f, unit=unit, seed=seed, transport=transport)
        runtime.bind_processes(lambda pid, nn, ff, env: cls(pid, nn, ff, env, **kwargs))
        await runtime.start()
        for pid in range(1, n + 1):
            runtime.call(pid, lambda process: process.on_start())
        for pid, vote in enumerate(votes, start=1):
            runtime.propose(pid, vote)
        crash_tasks = []
        for pid in sorted(crash_at or {}):
            crash_tasks.append(
                asyncio.get_running_loop().create_task(
                    _crash_later(runtime, pid, crash_at[pid])
                )
            )
        budget = timeout_units + transport.worst_case_delay_units()
        decided = await runtime.wait_all_correct_decided(budget)
        elapsed = runtime.now_units()
        for task in crash_tasks:
            task.cancel()
        if crash_tasks:
            await asyncio.gather(*crash_tasks, return_exceptions=True)
        await runtime.stop()
        return CommitRunResult(
            protocol=label,
            n=n,
            f=f,
            unit=unit,
            decisions=dict(runtime.decisions),
            decision_times=dict(runtime.decision_times),
            crashes=dict(runtime.crashes),
            elapsed_units=elapsed,
            timed_out=not decided,
            errors=[f"P{pid}: {exc!r}" for pid, exc in runtime.errors],
            messages_total=transport.messages_total,
            messages_by_module=dict(transport.messages_by_module),
        )

    return asyncio.run(_main())


async def _crash_later(runtime: AsyncRuntime, pid: int, at_units: float) -> None:
    delay_units = max(0.0, at_units - runtime.now_units())
    if delay_units > 0:
        await asyncio.sleep(delay_units * runtime.unit)
    runtime.crash(pid)


__all__ = [
    "AsyncRuntime",
    "CommitRunResult",
    "DEFAULT_UNIT_SECONDS",
    "ProcessFactory",
    "run_commit",
]
