"""The asyncio transport: in-process links with per-link fault injection.

:class:`LocalTransport` connects the runtime's nodes through one
``asyncio.Queue`` inbox per process.  Every *link* (an ordered ``(src, dst)``
pair) carries a :class:`LinkPolicy` — extra delay, uniform jitter and a drop
probability — applied at the transport boundary, which is exactly where the
paper's adversary lives: the protocol code above never sees anything but
``deliver`` events, and the simulator's delay models have their runtime
counterpart here.  Crashing a process at the transport (``crash(pid)``)
silences it both ways: nothing it sends leaves, nothing addressed to it is
delivered — the runtime face of a crash failure.

Delays and drops are drawn from a seeded ``random.Random``, so a given
policy produces the same drop/delay *choices* across runs; actual arrival
order still depends on wall-clock scheduling (that nondeterminism is the
point of the runtime — the simulator remains the deterministic oracle).

Message accounting matches the simulator's convention: messages to self are
delivered locally and not counted (footnote 10 of the paper); everything
else increments ``messages_total`` and the per-module histogram at *send*
time, delivered or not.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class LinkPolicy:
    """Fault-injection knobs of one directed link (times in units of U)."""

    #: fixed extra delay added to every message on the link
    delay_units: float = 0.0
    #: uniform extra delay drawn from ``[0, jitter_units]`` per message
    jitter_units: float = 0.0
    #: probability a message is silently dropped
    drop_probability: float = 0.0
    #: gray failure, slow-but-alive: multiplies the link's extra delay.
    #: Policies are per *directed* link, so an asymmetric profile (slow one
    #: way, nominal the other) is two policies with different factors.
    slow_factor: float = 1.0
    #: partition/heal windows ``(start, end)`` in units since runtime start:
    #: messages sent while ``start <= now < end`` are dropped at the link;
    #: after ``end`` the link is healed and carries traffic again
    outages: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.delay_units < 0 or self.jitter_units < 0:
            raise ConfigurationError("link delays must be non-negative")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ConfigurationError("drop_probability must be within [0, 1]")
        if self.slow_factor <= 0:
            raise ConfigurationError("slow_factor must be positive")
        for window in self.outages:
            if len(window) != 2 or not 0 <= window[0] < window[1]:
                raise ConfigurationError(
                    f"outage window must be (start, end) with 0 <= start < end, "
                    f"got {window!r}"
                )

    @property
    def max_delay_units(self) -> float:
        return (self.delay_units + self.jitter_units) * self.slow_factor

    @property
    def faulty(self) -> bool:
        return (
            self.drop_probability > 0.0
            or self.max_delay_units > 0.0
            or bool(self.outages)
        )


class LocalTransport:
    """In-process asyncio links between the runtime's nodes.

    ``metrics`` is an optional duck-typed telemetry sink — any object with
    ``inc(name, amount=1)`` and ``observe(name, value)`` (e.g. a
    :class:`repro.obs.metrics.MetricsRegistry`, handed in by the hosting
    service; this module never imports the obs package).  When present, the
    data path mirrors its counters into ``transport.sends`` /
    ``transport.drops`` / ``transport.outage_drops`` / ``transport.delayed``
    and feeds applied per-message link delays (in units of U) into the
    ``transport.link_delay_units`` histogram.  Strictly out of band: the
    mirrored counts duplicate the attributes below, never replace them.
    """

    def __init__(self, unit: float, seed: int = 0, metrics: Optional[Any] = None):
        if unit <= 0:
            raise ConfigurationError(f"unit must be positive, got {unit}")
        self.unit = unit
        self.seed = seed
        self.metrics = metrics
        self._rng = random.Random(seed)
        self._queues: Dict[int, asyncio.Queue] = {}
        self._policies: Dict[Tuple[int, int], LinkPolicy] = {}
        self._default_policy = LinkPolicy()
        self._crashed: Set[int] = set()
        self._delay_tasks: Set[asyncio.Task] = set()
        #: counted (non-self) messages, by the simulator's convention
        self.messages_total = 0
        self.messages_by_module: Dict[str, int] = {}
        self.dropped = 0
        self.delayed = 0
        #: messages dropped inside an outage window (also counted in dropped)
        self.outage_dropped = 0
        #: clock hook in units since runtime start; the runtime installs its
        #: own on start() so outage windows share the timers' time base
        self.now_units: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def register(self, pid: int, inbox: asyncio.Queue) -> None:
        self._queues[pid] = inbox

    def set_default_policy(self, policy: LinkPolicy) -> None:
        self._default_policy = policy

    def set_link_policy(self, src: int, dst: int, policy: LinkPolicy) -> None:
        self._policies[(src, dst)] = policy

    def policy_for(self, src: int, dst: int) -> LinkPolicy:
        return self._policies.get((src, dst), self._default_policy)

    def crash(self, pid: int) -> None:
        """Silence ``pid`` both ways from this moment on."""
        self._crashed.add(pid)

    def recover(self, pid: int) -> None:
        """Re-open the links of a previously crashed ``pid``.

        Traffic sent while it was down stays lost (at-most-once under
        faults); only messages sent from now on reach it again.
        """
        self._crashed.discard(pid)

    def is_crashed(self, pid: int) -> bool:
        return pid in self._crashed

    def worst_case_delay_units(self) -> float:
        """The largest extra delay any configured policy may add."""
        worst = self._default_policy.max_delay_units
        for key in sorted(self._policies):
            worst = max(worst, self._policies[key].max_delay_units)
        return worst

    # ------------------------------------------------------------------ #
    # the data path
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, payload: Any, module: str = "main") -> None:
        """Ship one message; called synchronously from inside event handlers."""
        if dst not in self._queues:
            raise SimulationError(f"message to unknown process P{dst}")
        if src != dst:
            self.messages_total += 1
            self.messages_by_module[module] = (
                self.messages_by_module.get(module, 0) + 1
            )
            if self.metrics is not None:
                self.metrics.inc("transport.sends")
        if src in self._crashed or dst in self._crashed:
            return
        item = ("deliver", src, payload)
        if src == dst:
            # local message to self: immediate, fault-free (not a network hop)
            self._queues[dst].put_nowait(item)
            return
        policy = self.policy_for(src, dst)
        if policy.outages:
            now = self.now_units()
            if any(start <= now < end for start, end in policy.outages):
                self.dropped += 1
                self.outage_dropped += 1
                if self.metrics is not None:
                    self.metrics.inc("transport.drops")
                    self.metrics.inc("transport.outage_drops")
                return
        if policy.drop_probability > 0 and self._rng.random() < policy.drop_probability:
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.inc("transport.drops")
            return
        delay_units = policy.delay_units
        if policy.jitter_units > 0:
            delay_units += self._rng.uniform(0.0, policy.jitter_units)
        delay_units *= policy.slow_factor
        if delay_units <= 0:
            self._queues[dst].put_nowait(item)
            return
        self.delayed += 1
        if self.metrics is not None:
            self.metrics.inc("transport.delayed")
            self.metrics.observe("transport.link_delay_units", delay_units)
        task = asyncio.get_running_loop().create_task(
            self._deliver_later(dst, item, delay_units * self.unit)
        )
        self._delay_tasks.add(task)
        task.add_done_callback(self._delay_tasks.discard)

    async def _deliver_later(self, dst: int, item: tuple, delay_seconds: float) -> None:
        await asyncio.sleep(delay_seconds)
        if dst not in self._crashed:
            queue = self._queues.get(dst)
            if queue is not None:
                queue.put_nowait(item)

    async def close(self) -> None:
        """Cancel every in-flight delayed delivery."""
        # lint: allow[DET001] cancel-all over wall-clock tasks; order immaterial
        tasks = [task for task in self._delay_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._delay_tasks.clear()


__all__ = ["LinkPolicy", "LocalTransport"]
