"""Discrete-event simulation substrate.

The paper measures complexity (messages and message delays) on an abstract
synchronous / eventually-synchronous message-passing model.  This package
implements that model as a deterministic discrete-event simulator:

* :mod:`repro.sim.clock` — virtual time.
* :mod:`repro.sim.events` — the event types handled by the scheduler.
* :mod:`repro.sim.network` — perfect point-to-point links plus delay models,
  including "network failure" injection (delays beyond the known bound ``U``).
* :mod:`repro.sim.faults` — crash schedules and delay overrides grouped into a
  :class:`~repro.sim.faults.FaultPlan`, with helpers for the three execution
  classes used by the paper (failure-free, crash-failure, network-failure).
* :mod:`repro.sim.process` — the Cachin-style event-handler process
  abstraction used by every protocol implementation.
* :mod:`repro.sim.trace` — the execution trace (message log, decisions,
  crashes) from which all complexity metrics are computed.
* :mod:`repro.sim.runner` — the :class:`~repro.sim.runner.Simulation` driver.
* :mod:`repro.sim.batch` — batch-oriented execution: the bucket/calendar
  event queue and vectorised delay sampling behind the fingerprint contract.
"""

from repro.sim.batch import BatchedDelaySampler, BucketQueue
from repro.sim.clock import VirtualClock
from repro.sim.events import (
    CrashEvent,
    MessageDeliveryEvent,
    ProposeEvent,
    RecoverEvent,
    TimerEvent,
)
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.network import (
    AdversarialDelay,
    DelayModel,
    FixedDelay,
    FlakyLinkDelay,
    LognormalDelay,
    Network,
    UniformDelay,
)
from repro.sim.process import Process, ProcessEnv
from repro.sim.runner import Simulation, SimulationResult
from repro.sim.trace import TRACE_LEVELS, CounterTrace, DecisionRecord, MessageRecord, Trace

__all__ = [
    "AdversarialDelay",
    "BatchedDelaySampler",
    "BucketQueue",
    "CounterTrace",
    "CrashEvent",
    "DecisionRecord",
    "DelayModel",
    "DelayRule",
    "FaultPlan",
    "FixedDelay",
    "FlakyLinkDelay",
    "LognormalDelay",
    "MessageDeliveryEvent",
    "MessageRecord",
    "Network",
    "Process",
    "ProcessEnv",
    "ProposeEvent",
    "RecoverEvent",
    "Simulation",
    "SimulationResult",
    "TRACE_LEVELS",
    "TimerEvent",
    "Trace",
    "UniformDelay",
    "VirtualClock",
]
