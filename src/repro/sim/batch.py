"""Batch-oriented execution support: bucket queue and vectorised sampling.

Two independent constant-factor attacks on the per-trial cost of a sweep,
both living strictly *behind* the fingerprint contract (every fast path must
reproduce the slow path's bytes):

* :class:`BucketQueue` — a calendar-style event queue for the scheduler.
  Events are grouped into per-timestamp buckets holding one FIFO list per
  priority; a small heap orders the *distinct* timestamps.  Because the
  scheduler's global ``seq`` counter is monotone, arrival order within one
  ``(time, priority)`` FIFO *is* seq order, so popping the minimum timestamp
  and scanning priorities 0..4 reproduces the binary heap's strict
  ``(time, priority, seq)`` total order exactly — for any push pattern, with
  no monotonicity assumption (see ``docs/performance.md`` for the argument).
  The win over ``heapq`` is that the heap only ever holds distinct
  timestamps: under :class:`~repro.sim.network.FixedDelay` a whole wave of
  n² messages shares a handful of receive times, so pushes and pops become
  list appends and index bumps instead of O(log n) sift operations.

* :class:`BatchedDelaySampler` — pre-draws delay arrays from a delay model
  instead of paying one ``random.Random`` method call per message.  Models
  opt in with ``iid_delays = True`` plus a ``sample_batch(k)`` method whose
  k draws are byte-identical to k successive ``delay(...)`` calls; the
  sampler is then just a cursor over the pre-drawn buffer.  Vectorisation
  itself lives in :func:`sample_uniform_batch`, which copies the CPython
  Mersenne-Twister state into numpy, draws the batch with one C call, and
  writes the advanced state back — bit-identical to the scalar loop because
  both consume the same generator words the same way.  Without numpy the
  helper falls back to the scalar loop, so behaviour (not just distribution)
  is identical on machines without it.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError

try:  # numpy is optional: everything below has a pure-python fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised by monkeypatching np to None
    np = None

#: event priorities are 0..4 (crash, recover/propose, delivery, timer, control)
N_PRIORITIES = 5

#: below this many draws the numpy state round-trip costs more than it saves
MIN_VECTOR_BATCH = 32

#: delays pre-drawn per refill of a :class:`BatchedDelaySampler`
DEFAULT_BATCH_SIZE = 512


def sample_uniform_batch(rng, lo: float, hi: float, k: int) -> List[float]:
    """Draw ``k`` uniforms from ``rng``, byte-identical to ``k`` scalar calls.

    ``rng`` is a ``random.Random``; its state afterwards equals the state
    after ``k`` calls to ``rng.uniform(lo, hi)``, so batched and per-message
    sampling can interleave freely without diverging.  CPython's ``uniform``
    is ``lo + (hi - lo) * random()`` where ``random()`` consumes exactly two
    32-bit Mersenne-Twister words — the same recipe and consumption pattern
    as numpy's legacy ``RandomState.random_sample``, which is why copying the
    624-word state across and back is exact, not approximate.
    """
    if np is None or k < MIN_VECTOR_BATCH:
        uniform = rng.uniform
        return [uniform(lo, hi) for _ in range(k)]
    version, internal, gauss_next = rng.getstate()
    state = np.random.RandomState()
    state.set_state(("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1]))
    out = state.uniform(lo, hi, size=k).tolist()
    _, key, pos = state.get_state(legacy=True)[:3]
    rng.setstate((version, tuple(int(word) for word in key) + (int(pos),), gauss_next))
    return out


class BatchedDelaySampler:
    """A cursor over pre-drawn delay batches for one i.i.d. delay model.

    The sweep engine keeps one sampler per grid cell and rebinds it to each
    trial's freshly seeded delay model (:meth:`bind`), so the buffer list is
    reused across trials instead of reallocated.  Binding succeeds only for
    models declaring ``iid_delays = True``: their draws depend on nothing but
    their own RNG, so pre-drawing a surplus is invisible — the model object
    is per-trial and nothing else reads its RNG.  Stateful models (flaky
    links, adversarial functions) refuse the bind and keep the per-message
    path.
    """

    __slots__ = ("batch_size", "_model", "_buffer", "_pos")

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise ConfigurationError(
                f"sampler batch size must be >= 1, got {batch_size}"
            )
        self.batch_size = batch_size
        self._model: Optional[Any] = None
        self._buffer: List[float] = []
        self._pos = 0

    def bind(self, model: Any) -> bool:
        """Attach to ``model`` for one trial; True when batching applies."""
        self._buffer = []
        self._pos = 0
        if getattr(model, "iid_delays", False) and hasattr(model, "sample_batch"):
            self._model = model
            return True
        self._model = None
        return False

    @property
    def bound(self) -> bool:
        return self._model is not None

    def next_delay(self) -> float:
        """The next delay draw; refills the buffer from the model as needed."""
        pos = self._pos
        buffer = self._buffer
        if pos >= len(buffer):
            buffer = self._buffer = self._model.sample_batch(self.batch_size)
            pos = 0
        self._pos = pos + 1
        return buffer[pos]


def _new_bucket() -> list:
    # five per-priority FIFO lists, five consumed-index cursors, live count
    return [[], [], [], [], [], [0, 0, 0, 0, 0], 0]


class BucketQueue:
    """Distinct-timestamp calendar queue with per-priority FIFO buckets.

    Layout: ``buckets[time]`` is ``[fifo0..fifo4, cursors, live_count]`` and
    ``times`` is a heap over the *distinct* timestamps with live buckets —
    each timestamp appears exactly once, and its bucket is deleted (and the
    timestamp popped, always at the heap minimum) when the count drains.
    Entries are opaque to the queue; the scheduler stores bare tuples for
    deliveries/timers and full :class:`~repro.sim.events.Event` objects for
    everything rare.  The scheduler's hot loop inlines these operations
    against ``times``/``buckets`` directly; the methods here are the
    reference implementation the tests compare against a binary heap.
    """

    __slots__ = ("times", "buckets")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.buckets: dict = {}

    def __bool__(self) -> bool:
        return bool(self.buckets)

    def __len__(self) -> int:
        return sum(bucket[6] for bucket in self.buckets.values())

    def push(self, time: float, priority: int, entry: Any) -> None:
        """Append ``entry`` to the ``(time, priority)`` FIFO."""
        bucket = self.buckets.get(time)
        if bucket is None:
            bucket = self.buckets[time] = _new_bucket()
            heapq.heappush(self.times, time)
        bucket[priority].append(entry)
        bucket[6] += 1

    def peek_time(self) -> float:
        """The minimum live timestamp; raises IndexError when empty."""
        return self.times[0]

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return ``(time, priority, entry)`` for the global minimum.

        Strictly the entry a ``(time, priority, seq)`` heap would pop next:
        minimum live time, then lowest non-exhausted priority, then FIFO
        (== seq) order within it.
        """
        time = self.times[0]
        bucket = self.buckets[time]
        cursors = bucket[5]
        for priority in range(N_PRIORITIES):
            index = cursors[priority]
            fifo = bucket[priority]
            if index < len(fifo):
                break
        else:  # pragma: no cover - count>0 guarantees a non-exhausted FIFO
            raise SystemError("bucket queue invariant violated: empty live bucket")
        entry = fifo[index]
        cursors[priority] = index + 1
        remaining = bucket[6] - 1
        if remaining:
            bucket[6] = remaining
        else:
            del self.buckets[time]
            heapq.heappop(self.times)
        return time, priority, entry
