"""Virtual time for the discrete-event simulator.

Time is a non-negative float.  By convention protocols express timer deadlines
in *units* of the known message-delay upper bound ``U`` (the paper's Section 2
assumes "one unit at the timer at every process is set to the known upper
bound of the message delay"), and the simulator converts units to absolute
virtual time through the clock's ``unit`` attribute.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically advancing virtual clock.

    Parameters
    ----------
    unit:
        The duration, in virtual-time units, of one "timer unit".  This is the
        known upper bound ``U`` on message transmission delay of the
        synchronous system being simulated.  Defaults to ``1.0`` so that timer
        units, message delays and virtual time coincide, which makes the
        paper's complexity accounting ("number of message delays") directly
        readable off decision timestamps.
    """

    __slots__ = ("unit", "_now")

    def __init__(self, unit: float = 1.0):
        if unit <= 0:
            raise SimulationError(f"clock unit must be positive, got {unit}")
        self.unit = float(unit)
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        The simulator only ever moves time forward; attempting to move it
        backwards indicates a scheduling bug and raises
        :class:`~repro.errors.SimulationError`.
        """
        if t < self._now - 1e-12:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = max(self._now, t)

    def units_to_time(self, units: float) -> float:
        """Convert a duration expressed in timer units to virtual time."""
        return units * self.unit

    def time_to_units(self, t: float) -> float:
        """Convert a virtual-time duration to timer units."""
        return t / self.unit

    def reset(self) -> None:
        """Reset the clock to time zero (used when a simulation is reused)."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now}, unit={self.unit})"
