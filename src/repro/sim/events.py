"""Event types processed by the discrete-event scheduler.

Ordering
--------
Events are totally ordered by ``(time, priority, seq)``.  The priority encodes
the paper's scheduling remark from Appendix A: *"a message delivery event has
a higher priority than a timeout event; i.e., if both events occur at a
process, the process is first triggered by the delivery event and then the
timeout event"*.  Crash events carry the highest priority so that a process
crashing at time ``t`` does not handle any other event scheduled at ``t``
("crashes before sending any message that is expected to send upon the
message received at t").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# Priorities: lower value == processed earlier at equal time.
PRIORITY_CRASH = 0
# a recovery at time t happens before any traffic scheduled at t reaches the
# rejoining process (ties against propose events break on seq, which is
# deterministic); it shares the propose slot so existing orderings are
# untouched on recovery-free runs
PRIORITY_RECOVER = 1
PRIORITY_PROPOSE = 1
PRIORITY_DELIVERY = 2
PRIORITY_TIMER = 3
PRIORITY_CONTROL = 4


@dataclass(frozen=True)
class Event:
    """Base class for scheduler events."""

    time: float
    priority: int
    seq: int

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)


@dataclass(frozen=True)
class ProposeEvent(Event):
    """Delivery of the initial ``Propose`` event to a process.

    ``value`` is the process' vote (1 = willing to commit, 0 = abort) for
    atomic-commit protocols, or an arbitrary proposal for consensus.
    """

    pid: int = 0
    value: Any = None


@dataclass(frozen=True)
class MessageDeliveryEvent(Event):
    """Arrival of a message at its destination."""

    src: int = 0
    dst: int = 0
    payload: Any = None
    send_time: float = 0.0
    msg_id: int = -1


@dataclass(frozen=True)
class TimerEvent(Event):
    """Expiry of a timer previously set by a process."""

    pid: int = 0
    name: str = "timer"
    generation: int = 0
    deadline_units: float = 0.0


@dataclass(frozen=True)
class CrashEvent(Event):
    """Scheduled crash of a process (it halts and sends nothing afterwards)."""

    pid: int = 0


@dataclass(frozen=True)
class RecoverEvent(Event):
    """Scheduled rejoin of a previously crashed process.

    What the process rejoins *with* is up to the scheduler's recovery
    factory; the default is the crashed object itself (amnesia-free rejoin),
    while the cluster layer rebuilds partition servers from their
    write-ahead log.
    """

    pid: int = 0


@dataclass(frozen=True)
class ControlEvent(Event):
    """Generic control callback (used by higher layers such as workloads)."""

    pid: int = 0
    action: Any = None
    payload: Any = field(default=None)
