"""Fault plans: crash schedules and message-delay overrides.

The paper distinguishes three classes of executions (Section 2.2):

* **failure-free** — no crash, every message delay is at most ``U``;
* **crash-failure** — some process crashes, delays still bounded by ``U``
  (an execution of a *synchronous* system);
* **network-failure** — some message delay exceeds ``U`` (an execution of an
  *eventually synchronous* system), possibly in addition to crashes.

A :class:`FaultPlan` describes which failures occur in a particular run and is
installed into the simulation before it starts.  It can also classify itself
into one of the three classes, which the property checker uses to decide which
properties (agreement / validity / termination) the protocol under test is
required to satisfy for the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: sentinel delay used for "arrives later than every decision" constructions
FAR_FUTURE = 10_000.0


@dataclass
class DelayRule:
    """Overrides the transmission delay of the messages it matches.

    A rule matches a message if every specified criterion matches; ``None``
    criteria are wildcards.  ``predicate`` receives the payload and can match
    on protocol-level content (e.g. only ``[C, ...]`` acknowledgements).

    Exactly one of ``delay`` (absolute transmission delay) or ``extra`` (added
    on top of the model's nominal delay) must be provided.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    after_time: Optional[float] = None
    before_time: Optional[float] = None
    predicate: Optional[Callable[[object], bool]] = None
    delay: Optional[float] = None
    extra: Optional[float] = None
    #: if set, the rule only applies to the k-th matching message (0-based)
    nth_match: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.delay is None) == (self.extra is None):
            raise ConfigurationError("DelayRule needs exactly one of delay= or extra=")
        self._matches_seen = 0

    def reset(self) -> None:
        """Forget the matches seen so far.

        ``nth_match`` makes a rule stateful: a plan reused across runs (for
        instance through a per-cell cached :class:`~repro.sim.runner.Simulation`)
        would silently stop matching after the first one.  The scheduler calls
        :meth:`FaultPlan.reset_rules` at the start of every execution so each
        run counts matches from zero.
        """
        self._matches_seen = 0

    def apply(
        self,
        src: int,
        dst: int,
        payload: object,
        send_time: float,
        msg_index: int,
        nominal: float,
    ) -> Optional[float]:
        """Return the overridden transmission delay, or ``None`` if no match.

        ``nominal`` is the delay the network's delay model would have assigned;
        rules with ``extra`` add on top of it, rules with ``delay`` replace it.
        """
        if self.src is not None and src != self.src:
            return None
        if self.dst is not None and dst != self.dst:
            return None
        if self.after_time is not None and send_time < self.after_time:
            return None
        if self.before_time is not None and send_time >= self.before_time:
            return None
        if self.predicate is not None and not self.predicate(payload):
            return None
        matched_index = self._matches_seen
        self._matches_seen += 1
        if self.nth_match is not None and matched_index != self.nth_match:
            return None
        if self.delay is not None:
            return self.delay
        return nominal + (self.extra or 0.0)

    def is_network_failure(self, u: float) -> bool:
        """Whether this rule can delay a message beyond the bound ``u``."""
        if self.delay is not None:
            return self.delay > u
        return (self.extra or 0.0) > 0.0


@dataclass
class FaultPlan:
    """All failures injected into one execution.

    Attributes
    ----------
    crashes:
        Mapping process id -> crash time.  A process crashed at time ``t``
        handles no event scheduled at or after ``t`` and sends nothing.
    recoveries:
        Mapping process id -> rejoin time.  A recovered process resumes
        handling events from its rejoin time on; what state it resumes with
        is decided by the scheduler's recovery factory (the cluster layer
        rebuilds partitions from their write-ahead log).  Every recovered pid
        must also appear in ``crashes`` with an earlier crash time.
    delay_rules:
        Message-delay overrides (see :class:`DelayRule`).
    """

    crashes: Dict[int, float] = field(default_factory=dict)
    delay_rules: List[DelayRule] = field(default_factory=list)
    description: str = ""
    recoveries: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # constructors for the three execution classes
    # ------------------------------------------------------------------ #
    @classmethod
    def failure_free(cls) -> "FaultPlan":
        """No crash, no delay override: a failure-free execution."""
        return cls(description="failure-free")

    @classmethod
    def crash(cls, pid: int, at: float = 0.0) -> "FaultPlan":
        """A single crash at time ``at`` (a crash-failure execution)."""
        return cls(crashes={pid: at}, description=f"crash P{pid}@{at}")

    @classmethod
    def crashes_at(cls, schedule: Dict[int, float]) -> "FaultPlan":
        """Multiple crashes (still a crash-failure execution)."""
        return cls(crashes=dict(schedule), description=f"crashes {schedule}")

    @classmethod
    def crash_recover(cls, pid: int, at: float, rejoin_at: float) -> "FaultPlan":
        """Crash ``pid`` at ``at`` and rejoin it at ``rejoin_at``.

        Still a crash-failure execution: the crash really happened, and the
        property checker keeps treating the pid as faulty (it never re-enters
        the ``correct`` set).  Recovery only restores liveness.
        """
        if rejoin_at <= at:
            raise ConfigurationError(
                f"rejoin time {rejoin_at} must be after the crash time {at}"
            )
        return cls(
            crashes={pid: at},
            recoveries={pid: rejoin_at},
            description=f"crash P{pid}@{at} rejoin@{rejoin_at}",
        )

    @classmethod
    def delay_messages(
        cls,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        delay: float = FAR_FUTURE,
        after_time: Optional[float] = None,
        predicate: Optional[Callable[[object], bool]] = None,
    ) -> "FaultPlan":
        """Delay matching messages beyond the bound: a network-failure execution."""
        rule = DelayRule(
            src=src, dst=dst, delay=delay, after_time=after_time, predicate=predicate
        )
        return cls(delay_rules=[rule], description="delayed messages")

    # ------------------------------------------------------------------ #
    # composition and classification
    # ------------------------------------------------------------------ #
    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        """Combine two fault plans (crashes and delay rules of both apply)."""
        crashes = dict(self.crashes)
        for pid, t in other.crashes.items():
            crashes[pid] = min(t, crashes.get(pid, t))
        recoveries = dict(self.recoveries)
        for pid, t in other.recoveries.items():
            recoveries[pid] = min(t, recoveries.get(pid, t))
        return FaultPlan(
            crashes=crashes,
            delay_rules=list(self.delay_rules) + list(other.delay_rules),
            description=f"{self.description} + {other.description}".strip(" +"),
            recoveries=recoveries,
        )

    def reset_rules(self) -> None:
        """Reset every delay rule's match counter (see :meth:`DelayRule.reset`)."""
        for rule in self.delay_rules:
            rule.reset()

    def crash_count(self) -> int:
        return len(self.crashes)

    def is_failure_free(self) -> bool:
        return not self.crashes and not self.delay_rules

    def is_network_failure(self, u: float) -> bool:
        """Whether some rule can push a delay beyond the bound ``u``."""
        return any(rule.is_network_failure(u) for rule in self.delay_rules)

    def is_crash_failure(self, u: float) -> bool:
        """Crashes only, all delays within the bound."""
        return bool(self.crashes) and not self.is_network_failure(u)

    def execution_class(self, u: float) -> str:
        """Classify the execution: ``failure-free`` / ``crash-failure`` / ``network-failure``."""
        if self.is_network_failure(u):
            return "network-failure"
        if self.crashes:
            return "crash-failure"
        return "failure-free"

    def validate(self, n: int, f: int) -> None:
        """Sanity-check the plan against the system parameters."""
        if any(pid < 1 or pid > n for pid in self.crashes):
            raise ConfigurationError(f"crash schedule references unknown process: {self.crashes}")
        if len(self.crashes) > f:
            raise ConfigurationError(
                f"fault plan crashes {len(self.crashes)} processes but f={f}"
            )
        for pid, rejoin_at in self.recoveries.items():
            if pid not in self.crashes:
                raise ConfigurationError(
                    f"recovery of P{pid} has no matching crash in the plan"
                )
            if rejoin_at <= self.crashes[pid]:
                raise ConfigurationError(
                    f"P{pid} rejoins at {rejoin_at} but only crashes at "
                    f"{self.crashes[pid]}"
                )
