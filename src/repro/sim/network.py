"""Network substrate: perfect point-to-point links and delay models.

The paper's channels "do not modify, inject, duplicate or lose messages; every
message sent is eventually received".  The network therefore never drops a
message: all non-determinism lives in the *delay* assigned to each message.

A **crash-failure** (synchronous) execution is one where every delay is at
most the known bound ``U``.  A **network-failure** (eventually synchronous)
execution may delay some messages beyond ``U`` — those delays are injected by
:class:`~repro.sim.faults.DelayRule` overrides carried by the fault plan, or
by an :class:`AdversarialDelay` model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.errors import ConfigurationError, SimulationError
from repro.sim.batch import sample_uniform_batch


class DelayModel(Protocol):
    """Assigns a transmission delay to each message.

    Implementations must be deterministic given their own state (seeded RNGs)
    so that simulations are reproducible.

    Two optional class attributes let the scheduler pick fast paths:

    * ``bucketable`` — delays are bounded and positive, so the bucket/calendar
      event queue (:class:`~repro.sim.batch.BucketQueue`) is applicable; the
      scheduler falls back to the binary heap otherwise.
    * ``iid_delays`` — draws depend only on the model's own RNG (never on
      src/dst/payload/send_time), so a :class:`~repro.sim.batch.\
BatchedDelaySampler` may pre-draw them in batches via ``sample_batch(k)``,
      whose k results must be byte-identical to k successive ``delay`` calls.

    Both default to False for models that do not declare them.
    """

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        """Return the transmission delay (virtual time) for one message."""
        ...  # pragma: no cover - protocol definition

    def bound(self) -> float:
        """Return the known upper bound ``U`` assumed by the protocols."""
        ...  # pragma: no cover - protocol definition


@dataclass
class FixedDelay:
    """Every message takes exactly ``u`` time units.

    This is the delay model used for all best-case (nice execution) complexity
    measurements: the paper's message-delay metric assumes "every message is
    received exactly one unit of time after it was sent".
    """

    u: float = 1.0

    #: degenerate bounded delays: bucket queue and batched sampling both apply
    bucketable = True
    iid_delays = True

    def __post_init__(self) -> None:
        if self.u <= 0:
            raise ConfigurationError(f"delay bound must be positive, got {self.u}")

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        return self.u

    def sample_batch(self, k: int) -> list:
        return [self.u] * k

    def bound(self) -> float:
        return self.u


class UniformDelay:
    """Delays drawn uniformly from ``[lo, hi]`` with ``hi <= u`` by default.

    Used by the database benchmarks to exercise protocols under realistic,
    non-degenerate timing while remaining within the synchronous bound.
    """

    #: bounded i.i.d. draws: bucket queue and batched sampling both apply
    bucketable = True
    iid_delays = True

    def __init__(self, lo: float, hi: float, u: Optional[float] = None, seed: int = 0):
        if lo <= 0:
            raise ConfigurationError(
                f"uniform delay lower bound must be positive, got lo={lo}"
            )
        if hi < lo:
            raise ConfigurationError(
                f"uniform delay upper bound must be >= lower bound, "
                f"got hi={hi} < lo={lo}"
            )
        self.lo = lo
        self.hi = hi
        self.u = u if u is not None else hi
        if self.u < hi:
            raise ConfigurationError("bound u must be >= hi for a synchronous model")
        self._rng = random.Random(seed)

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        return self._rng.uniform(self.lo, self.hi)

    def sample_batch(self, k: int) -> list:
        return sample_uniform_batch(self._rng, self.lo, self.hi, k)

    def bound(self) -> float:
        return self.u


class LognormalDelay:
    """Heavy-tailed delays clipped at the synchronous bound ``u``.

    Approximates the wide-area round-trip distributions reported by Bakr and
    Keidar [34] ("synchronous most of the time"): most samples are far below
    the bound, occasional samples approach it.
    """

    #: clipped at u and i.i.d.; batching uses the scalar loop (CPython's
    #: ``gauss`` consumes generator words in a pattern numpy cannot replay
    #: bit-exactly), so only the per-call method dispatch is amortised
    bucketable = True
    iid_delays = True

    def __init__(self, median: float, sigma: float, u: float, seed: int = 0):
        if median <= 0 or sigma < 0 or u <= median:
            raise ConfigurationError(
                f"invalid lognormal parameters median={median}, sigma={sigma}, u={u}"
            )
        self.median = median
        self.sigma = sigma
        self.u = u
        self._rng = random.Random(seed)

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        sample = self.median * math.exp(self._rng.gauss(0.0, self.sigma))
        return min(sample, self.u)

    def sample_batch(self, k: int) -> list:
        gauss = self._rng.gauss
        exp = math.exp
        median, sigma, u = self.median, self.sigma, self.u
        return [min(median * exp(gauss(0.0, sigma)), u) for _ in range(k)]

    def bound(self) -> float:
        return self.u


class FlakyLinkDelay:
    """Gray failures on reliable channels: slow links and outage windows.

    The simulator's channels never lose messages, so the runtime's
    gray-failure profiles (:class:`~repro.runtime.transport.LinkPolicy`
    ``slow_factor`` / ``outages``) map here onto *delays*:

    * a directed link in ``slow_pairs`` multiplies its nominal delay by the
      given factor — slow-but-alive; an asymmetric profile (slow one way,
      nominal the other) is two entries with different factors;
    * a message sent inside an outage window ``(src, dst, start, end)`` is
      held until the window heals: it arrives ``(end - send_time) + nominal``
      after sending, as if buffered by the partition.

    Both effects may exceed the bound ``u``, which turns the execution into a
    network-failure execution — the same classification the runtime derives
    from its transport counters.  All randomness comes from the seeded RNG,
    so the model is fingerprint-deterministic like every other delay model.
    """

    #: outages push delays past u (unbounded) and draws depend on
    #: (src, dst, send_time) (not i.i.d.): heap queue, per-message sampling
    bucketable = False
    iid_delays = False

    def __init__(
        self,
        u: float = 1.0,
        jitter: float = 0.0,
        slow_pairs: Optional[dict] = None,
        outages: tuple = (),
        seed: int = 0,
    ):
        if u <= 0:
            raise ConfigurationError(f"delay bound must be positive, got {u}")
        if not 0 <= jitter < u:
            raise ConfigurationError(f"jitter must be within [0, u), got {jitter}")
        self.u = u
        self.jitter = jitter
        self.slow_pairs = dict(slow_pairs or {})
        for pair, factor in sorted(self.slow_pairs.items()):
            if len(pair) != 2:
                raise ConfigurationError(f"slow pair must be (src, dst), got {pair!r}")
            if factor <= 0:
                raise ConfigurationError(
                    f"slow factor must be positive, got {factor} for {pair}"
                )
        self.outages = tuple(tuple(w) for w in outages)
        for window in self.outages:
            if len(window) != 4 or not 0 <= window[2] < window[3]:
                raise ConfigurationError(
                    "outage window must be (src, dst, start, end) with "
                    f"0 <= start < end, got {window!r}"
                )
        self._rng = random.Random(seed)

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        nominal = self.u
        if self.jitter > 0:
            nominal = self._rng.uniform(self.u - self.jitter, self.u)
        d = nominal * self.slow_pairs.get((src, dst), 1.0)
        for osrc, odst, start, end in self.outages:
            if osrc == src and odst == dst and start <= send_time < end:
                d = max(d, (end - send_time) + nominal)
        return d

    def bound(self) -> float:
        return self.u


class AdversarialDelay:
    """Delegates to a user-supplied function; used to build worst cases.

    The function may return delays larger than ``u``, which turns the
    execution into a network-failure execution.  The lower-bound replay tests
    use this model to reconstruct the indistinguishable executions from the
    paper's proofs (e.g. ``E_async`` in Lemma 1).
    """

    #: arbitrary user function: unbounded and message-dependent, so neither
    #: the bucket queue nor batched sampling applies
    bucketable = False
    iid_delays = False

    def __init__(self, fn: Callable[[int, int, object, float], float], u: float = 1.0):
        self.fn = fn
        self.u = u

    def delay(self, src: int, dst: int, payload: object, send_time: float) -> float:
        d = self.fn(src, dst, payload, send_time)
        if d <= 0:
            # a mid-run simulation fault, not a construction-time config
            # error: TrialResult.error must classify it as such
            raise SimulationError(f"adversarial delay must be positive, got {d}")
        return d

    def bound(self) -> float:
        return self.u


class Network:
    """Perfect point-to-point links parameterised by a delay model.

    The network does not know about crashes: a crashed *sender* never invokes
    ``transit_delay`` (the scheduler suppresses its sends), and a message sent
    to a crashed *destination* is still "delivered" by the scheduler but the
    destination, being crashed, ignores it.  This mirrors the paper's model in
    which channels are reliable and failures are purely process- or
    timing-related.
    """

    def __init__(self, delay_model: Optional[DelayModel] = None):
        self.delay_model = delay_model if delay_model is not None else FixedDelay(1.0)
        #: delay overrides installed by the fault plan, consulted first
        self._overrides: list = []
        #: optional BatchedDelaySampler bound to delay_model; when present it
        #: replaces the per-message delay() call for the *nominal* draw (the
        #: draws are identical bytes, just pre-drawn in batches)
        self._sampler = None

    @property
    def u(self) -> float:
        """The known upper bound on message transmission delay."""
        return self.delay_model.bound()

    def install_overrides(self, rules: list) -> None:
        """Install :class:`~repro.sim.faults.DelayRule` overrides."""
        self._overrides = list(rules)

    def attach_sampler(self, sampler) -> None:
        """Install a bound :class:`~repro.sim.batch.BatchedDelaySampler`.

        The nominal draw still happens for every non-self message — override
        rules receive it, and RNG consumption order is what keeps batched and
        per-message runs byte-identical — it is merely served from the
        sampler's pre-drawn buffer.
        """
        self._sampler = sampler

    def transit_delay(
        self, src: int, dst: int, payload: object, send_time: float, msg_index: int
    ) -> float:
        """Compute the delay for a message, applying fault-plan overrides."""
        if self._sampler is not None:
            nominal = self._sampler.next_delay()
        else:
            nominal = self.delay_model.delay(src, dst, payload, send_time)
        for rule in self._overrides:
            override = rule.apply(src, dst, payload, send_time, msg_index, nominal)
            if override is not None:
                if override <= 0:
                    raise SimulationError(
                        f"fault-plan delay rule {rule!r} produced a non-positive "
                        f"override {override} for message {src}->{dst} at "
                        f"t={send_time}: a delay <= 0 would deliver at or before "
                        f"its send time, corrupting event order"
                    )
                return override
        return nominal
