"""Backward-compatible home of the process abstraction.

The Cachin-style event-handler contract (:class:`Process`,
:class:`ProcessComponent`, :class:`ProcessEnv`, the module envelope) used to
be defined here; it now lives in the runtime-neutral :mod:`repro.env`, where
both the discrete-event simulator (:mod:`repro.sim.runner`) and the asyncio
transport runtime (:mod:`repro.runtime`) — plus every embedding adapter, such
as the database partitions' per-transaction commit environments — implement
it.  This module re-exports the contract so existing imports keep working;
new code should import from :mod:`repro.env` directly.
"""

from __future__ import annotations

from repro.env import MODULE_ENVELOPE, Process, ProcessComponent, ProcessEnv

__all__ = ["MODULE_ENVELOPE", "Process", "ProcessComponent", "ProcessEnv"]
