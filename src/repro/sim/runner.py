"""The discrete-event scheduler and the protocol-level simulation driver.

Two layers:

* :class:`Scheduler` — the generic event loop: an event heap, the network, the
  per-process environments, crash injection and the trace recorder.  The
  database cluster (:mod:`repro.db.cluster`) drives this layer directly.
* :class:`Simulation` — the protocol-level driver used for all complexity
  experiments: it instantiates one protocol process per id, injects the votes
  as ``Propose`` events at time 0, runs the loop and returns a
  :class:`SimulationResult` bundling the trace with the process objects (so
  tests can inspect internal state such as INBAC's branch log).

Trace levels
------------
Both layers take a ``trace_level``:

* ``"full"`` (default) — every message becomes a
  :class:`~repro.sim.trace.MessageRecord` in a :class:`~repro.sim.trace.Trace`;
  the audit-grade level every per-message analysis needs.
* ``"counters"`` — a :class:`~repro.sim.trace.CounterTrace`: the scheduler
  allocates no message records at all and maintains only the running tallies
  (counted-message totals, per-module counts, a receive-time digest) that
  aggregate sweeps consume.  Aggregate queries answer byte-identically to a
  full-trace run of the same execution, at a fraction of the per-event cost;
  :func:`repro.exp.run_sweep` defaults its aggregate mode to this level.

Event bookkeeping is O(1) per event at either level: message delivery marks
records through an msg-id → record map (never a scan of the message log), and
the common "stop once every correct process has decided" condition is a
decremented counter maintained by :meth:`Scheduler.record_decision`, not a
predicate re-evaluated over every process id on every event.

Event queues
------------
The scheduler runs on one of two queues selected by ``event_queue``:

* ``"heap"`` — the reference binary heap over ``(time, priority, seq)`` keys.
* ``"bucket"`` — a :class:`~repro.sim.batch.BucketQueue` grouping events into
  per-timestamp priority FIFOs; exact for any delay model (see
  ``docs/performance.md``) and much cheaper when many messages share receive
  times, as under the bounded-delay models.
* ``"auto"`` (default) — bucket when the delay model declares
  ``bucketable = True`` and no schedule controller is attached (controllers
  re-queue deferred events and inspect Event objects, which is heap
  territory); heap otherwise.

Both queues fire events in the identical strict ``(time, priority, seq)``
order, so traces and fingerprints are byte-identical between them — pinned by
the bucket-vs-heap equivalence battery in ``tests/test_scheduler_bucket.py``.

Schedule controllers
--------------------
By default the scheduler fires events in strict ``(time, priority, seq)``
order — that path is untouched and fingerprint-guarded.  An optional
``controller`` (see :mod:`repro.explore`) is consulted once per popped event
and may perturb the schedule within the paper's admissible-execution space:

* ``("defer", extra)`` — postpone the delivery by ``extra`` time units
  (extending a message delay is exactly what the eventually-synchronous
  adversary is allowed to do; a deferred delivery whose effective delay
  exceeds the bound ``U`` turns the run into a network-failure execution);
* ``("crash", pid)`` — crash ``pid`` immediately, before the current event is
  dispatched, provided the fault budget ``f`` is not exhausted.

Timers, proposals and crashes cannot be reordered (they are local and fire on
time in a synchronous system), so every controlled schedule remains an
admissible execution.  Applied decisions are recorded in
:attr:`Scheduler.applied_schedule_actions`, from which the exploration layer
builds its replayable :class:`~repro.explore.ScheduleTrace`.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError, ProtocolViolationError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import (
    PRIORITY_CONTROL,
    PRIORITY_CRASH,
    PRIORITY_DELIVERY,
    PRIORITY_PROPOSE,
    PRIORITY_RECOVER,
    PRIORITY_TIMER,
    ControlEvent,
    CrashEvent,
    Event,
    MessageDeliveryEvent,
    ProposeEvent,
    RecoverEvent,
    TimerEvent,
)
from repro.sim.batch import BatchedDelaySampler, BucketQueue
from repro.sim.faults import FaultPlan
from repro.sim.network import DelayModel, FixedDelay, Network
from repro.env import Process
from repro.sim.trace import TRACE_LEVELS, CounterTrace, MessageRecord, Trace

#: event-queue selection knobs accepted by :class:`Scheduler`
EVENT_QUEUES = ("auto", "heap", "bucket")

ProcessFactory = Callable[[int, int, int, "SimEnv"], Process]


class SimEnv:
    """The :class:`~repro.env.ProcessEnv` provided by the scheduler."""

    def __init__(self, scheduler: "Scheduler", pid: int):
        self._scheduler = scheduler
        self.pid = pid
        self.random = random.Random(scheduler.seed * 1_000_003 + pid)

    # -- ProcessEnv interface ------------------------------------------- #
    def send(self, dst: int, payload: Any, module: str = "main") -> None:
        self._scheduler.post_message(self.pid, dst, payload, module=module)

    def set_timer(self, at_units: float, name: str = "timer") -> None:
        self._scheduler.set_timer(self.pid, at_units, name)

    def cancel_timer(self, name: str = "timer") -> None:
        self._scheduler.cancel_timer(self.pid, name)

    def decide(self, value: Any) -> None:
        self._scheduler.record_decision(self.pid, value)

    def now(self) -> float:
        return self._scheduler.clock.time_to_units(self._scheduler.clock.now)


class Scheduler:
    """Deterministic event loop shared by the protocol and database drivers."""

    def __init__(
        self,
        n: int,
        f: int,
        delay_model: Optional[DelayModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
        max_time: float = 500.0,
        protocol_name: str = "",
        trace_level: str = "full",
        controller: Optional[Any] = None,
        event_queue: str = "auto",
        delay_sampler: Optional[BatchedDelaySampler] = None,
    ):
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={n}")
        if not 1 <= f <= n - 1:
            raise ConfigurationError(f"f must satisfy 1 <= f <= n-1, got f={f}, n={n}")
        if trace_level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"unknown trace_level {trace_level!r}; expected one of {TRACE_LEVELS}"
            )
        if event_queue not in EVENT_QUEUES:
            raise ConfigurationError(
                f"unknown event_queue {event_queue!r}; expected one of {EVENT_QUEUES}"
            )
        if event_queue == "bucket" and controller is not None:
            raise ConfigurationError(
                "event_queue='bucket' cannot run under a schedule controller; "
                "controllers defer and inspect Event objects, which requires "
                "the heap queue (use event_queue='auto' or 'heap')"
            )
        self.n = n
        self.f = f
        self.seed = seed
        self.max_time = max_time
        self.trace_level = trace_level
        self.clock = VirtualClock(unit=1.0)
        self.network = Network(delay_model or FixedDelay(1.0))
        self.fault_plan = fault_plan or FaultPlan.failure_free()
        self.fault_plan.validate(n, f)
        # nth_match rules count matches; a plan reused across runs (per-cell
        # cached Simulations) must start every execution from zero
        self.fault_plan.reset_rules()
        self.network.install_overrides(self.fault_plan.delay_rules)
        trace_cls = Trace if trace_level == "full" else CounterTrace
        self.trace = trace_cls(n=n, f=f, u=self.network.u, protocol=protocol_name)
        self.processes: Dict[int, Process] = {}
        self.envs: Dict[int, SimEnv] = {pid: SimEnv(self, pid) for pid in range(1, n + 1)}
        self._heap: List[tuple] = []
        use_bucket = event_queue == "bucket" or (
            event_queue == "auto"
            and controller is None
            and getattr(self.network.delay_model, "bucketable", False)
        )
        self._bucketq: Optional[BucketQueue] = BucketQueue() if use_bucket else None
        # batched sampling is orthogonal to the queue choice: bind the
        # sampler (a per-cell object when the sweep engine passes one in)
        # to this run's delay model; models that are not i.i.d. refuse
        sampler = delay_sampler if delay_sampler is not None else BatchedDelaySampler()
        self._delay_sampler = sampler if sampler.bind(self.network.delay_model) else None
        self.network.attach_sampler(self._delay_sampler)
        self._seq = 0
        self._msg_counter = 0
        #: in-flight records by msg id, so delivery marking is O(1) (records
        #: are popped on delivery); empty at the counters level
        self._pending_records: Dict[int, MessageRecord] = {}
        self._timer_generation: Dict[tuple, int] = {}
        self._stopped = False
        self._stop_predicate: Optional[Callable[["Scheduler"], bool]] = None
        # all-correct-decided stop condition as a decremented counter (see
        # stop_when_all_correct_decided); None = not armed
        self._correct_pids: Optional[frozenset] = None
        self._undecided_correct = 0
        # schedule-controller state (None = strict timestamp order)
        self._controller = controller
        self._controller_began = False
        self._schedule_step = 0
        self._schedule_overdue = False
        self._injected_crashes: set = set()
        self._crash_budget = self.f - len(self.fault_plan.crashes)
        #: every controller decision that actually applied, as
        #: ``(step, kind, arg)`` tuples — the raw material of a ScheduleTrace
        self.applied_schedule_actions: List[tuple] = []
        # how a crashed process rejoins: ``factory(pid, scheduler, old)`` must
        # return the replacement Process, or None to refuse the recovery
        # (None = rejoin the crashed object itself, amnesia-free)
        self._recovery_factory: Optional[
            Callable[[int, "Scheduler", Process], Optional[Process]]
        ] = None
        # schedule crashes (and planned rejoins) up front
        for pid, at in self.fault_plan.crashes.items():
            self._push(CrashEvent(time=at, priority=PRIORITY_CRASH, seq=self._next_seq(), pid=pid))
        for pid, at in self.fault_plan.recoveries.items():
            self._push(
                RecoverEvent(time=at, priority=PRIORITY_RECOVER, seq=self._next_seq(), pid=pid)
            )

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def bind_processes(self, factory: ProcessFactory) -> None:
        """Create one process per id using ``factory(pid, n, f, env)``."""
        for pid in range(1, self.n + 1):
            self.processes[pid] = factory(pid, self.n, self.f, self.envs[pid])

    def bind_process(self, pid: int, process: Process) -> None:
        self.processes[pid] = process

    def env_for(self, pid: int) -> SimEnv:
        return self.envs[pid]

    # ------------------------------------------------------------------ #
    # event production
    # ------------------------------------------------------------------ #
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, event: Event) -> None:
        bucketq = self._bucketq
        if bucketq is None:
            heapq.heappush(self._heap, (event.sort_key(), event))
        else:
            # full Event objects ride the bucket FIFOs too (rare events, and
            # any event pushed by a subclass); the loop dispatches them
            # through _dispatch so overrides keep working
            bucketq.push(event.time, event.priority, event)

    def post_propose(self, pid: int, value: Any, at: float = 0.0) -> None:
        self._push(
            ProposeEvent(time=at, priority=PRIORITY_PROPOSE, seq=self._next_seq(), pid=pid, value=value)
        )

    def post_control(self, pid: int, action: Any, payload: Any = None, at: float = 0.0) -> None:
        """Schedule an arbitrary callback delivered to the driver (not a process)."""
        self._push(
            ControlEvent(
                time=at,
                priority=PRIORITY_CONTROL,
                seq=self._next_seq(),
                pid=pid,
                action=action,
                payload=payload,
            )
        )

    def post_message(self, src: int, dst: int, payload: Any, module: str = "main") -> None:
        """Send a message; called (indirectly) by processes through their env."""
        if dst < 1 or dst > self.n:
            raise SimulationError(f"message to unknown process P{dst}")
        send_time = self.clock.now
        self._msg_counter += 1
        msg_id = self._msg_counter
        if src == dst:
            # Local "message to self": arrives immediately, not counted
            # (footnote 10 of the paper).
            recv_time = send_time
            counted = False
        else:
            sampler = self._delay_sampler
            if sampler is not None and not self.network._overrides:
                # no override rules can fire: the nominal draw IS the delay
                delay = sampler.next_delay()
            else:
                delay = self.network.transit_delay(src, dst, payload, send_time, msg_id)
            recv_time = send_time + delay
            counted = True
        record = self.trace.record_send(
            msg_id, src, dst, payload, send_time, recv_time, counted, module
        )
        if record is not None:  # the counters level keeps no records
            self._pending_records[msg_id] = record
        bucketq = self._bucketq
        if bucketq is None:
            self._push(
                MessageDeliveryEvent(
                    time=recv_time,
                    priority=PRIORITY_DELIVERY,
                    seq=self._next_seq(),
                    src=src,
                    dst=dst,
                    payload=payload,
                    send_time=send_time,
                    msg_id=msg_id,
                )
            )
        else:
            # deliveries are the hot event: a bare tuple in the priority-2
            # FIFO carries everything dispatch needs (the bucket key is the
            # receive time, FIFO position is the seq order), skipping the
            # frozen-dataclass Event allocation entirely
            bucket = bucketq.buckets.get(recv_time)
            if bucket is None:
                bucket = bucketq.buckets[recv_time] = [
                    [], [], [], [], [], [0, 0, 0, 0, 0], 0,
                ]
                heapq.heappush(bucketq.times, recv_time)
            bucket[PRIORITY_DELIVERY].append((src, dst, payload, msg_id))
            bucket[6] += 1

    def set_timer(self, pid: int, at_units: float, name: str) -> None:
        """Arm (or re-arm) the named timer; re-arming supersedes the pending fire."""
        key = (pid, name)
        generation = self._timer_generation.get(key, 0) + 1
        self._timer_generation[key] = generation
        fire_time = max(self.clock.now, self.clock.units_to_time(at_units))
        bucketq = self._bucketq
        if bucketq is None:
            self._push(
                TimerEvent(
                    time=fire_time,
                    priority=PRIORITY_TIMER,
                    seq=self._next_seq(),
                    pid=pid,
                    name=name,
                    generation=generation,
                    deadline_units=at_units,
                )
            )
        else:
            # timers ride the priority-3 FIFO as bare tuples; the fire time
            # is the bucket key
            bucket = bucketq.buckets.get(fire_time)
            if bucket is None:
                bucket = bucketq.buckets[fire_time] = [
                    [], [], [], [], [], [0, 0, 0, 0, 0], 0,
                ]
                heapq.heappush(bucketq.times, fire_time)
            bucket[PRIORITY_TIMER].append((pid, name, generation))
            bucket[6] += 1

    def cancel_timer(self, pid: int, name: str) -> None:
        key = (pid, name)
        generation = self._timer_generation.get(key)
        if generation is None:
            # nothing was ever armed under this name: cancelling is a no-op
            # (bumping a fresh counter here would grow the map unboundedly
            # for callers that cancel defensively)
            return
        self._timer_generation[key] = generation + 1

    def record_decision(self, pid: int, value: Any) -> None:
        if pid in self.trace.decisions:
            raise ProtocolViolationError(
                f"P{pid} attempted to decide twice (integrity violation)"
            )
        self.trace.record_decision(pid, value, self.clock.time_to_units(self.clock.now))
        if self._correct_pids is not None and pid in self._correct_pids:
            self._undecided_correct -= 1

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def set_stop_predicate(self, predicate: Optional[Callable[["Scheduler"], bool]]) -> None:
        self._stop_predicate = predicate

    def stop_when_all_correct_decided(self) -> None:
        """Stop the loop once every never-crashing process has decided.

        O(1) per event: :meth:`record_decision` decrements a counter of
        undecided correct processes, and the loop stops when it reaches zero
        — behaviour-identical to (but never re-scanning like) the predicate
        ``all(pid in trace.decisions for pid in correct_pids)``.
        """
        correct = frozenset(
            pid for pid in range(1, self.n + 1) if pid not in self.fault_plan.crashes
        )
        self._correct_pids = correct
        self._undecided_correct = sum(
            1 for pid in correct if pid not in self.trace.decisions
        )

    def run(self) -> Trace:
        """Process events until the queue drains, max_time passes, or stop fires."""
        if self._controller is not None and not self._controller_began:
            self._controller_began = True
            begin = getattr(self._controller, "begin", None)
            if begin is not None:
                begin(self)
        if self._bucketq is not None:
            self._run_bucket()
        else:
            self._run_heap()
        self.trace.end_time = self.clock.time_to_units(self.clock.now)
        return self.trace

    def _run_heap(self) -> None:
        """The reference loop over the binary heap."""
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.time > self.max_time:
                break
            if self._controller is not None:
                event = self._consult_controller(event)
                if event is None:  # deferred: re-queued at a later time
                    continue
            self.clock.advance_to(event.time)
            self._dispatch(event)
            if self._stopped:
                break
            if self._correct_pids is not None and self._undecided_correct == 0:
                break
            if self._stop_predicate is not None and self._stop_predicate(self):
                break

    def _run_bucket(self) -> None:
        """The bucket-queue loop: same event order, inlined hot dispatch.

        Pops are inlined against the bucket structure and the two hot event
        kinds (deliveries, timers) arrive as bare tuples that never became
        Event objects; everything else is a real Event dispatched through
        :meth:`_dispatch` so subclass overrides behave identically.  The
        max_time check peeks before popping where the heap pops then breaks
        — observationally identical, since the heap's discarded event is
        past max_time and never dispatched.  No controller ever runs here
        (construction forbids it), so the consult step is simply absent.
        """
        bucketq = self._bucketq
        times = bucketq.times
        buckets = bucketq.buckets
        clock = self.clock
        max_time = self.max_time
        processes = self.processes
        pending = self._pending_records
        timer_generation = self._timer_generation
        trace = self.trace
        while times:
            time = times[0]
            if time > max_time:
                break
            bucket = buckets[time]
            cursors = bucket[5]
            for priority in range(5):
                index = cursors[priority]
                fifo = bucket[priority]
                if index < len(fifo):
                    break
            entry = fifo[index]
            cursors[priority] = index + 1
            remaining = bucket[6] - 1
            if remaining:
                bucket[6] = remaining
            else:
                del buckets[time]
                heapq.heappop(times)
            # inline clock.advance_to(time): same monotonicity guard
            now = clock._now
            if time > now:
                clock._now = time
            elif time < now - 1e-12:
                raise SimulationError(
                    f"clock cannot run backwards: {time} < {now}"
                )
            if entry.__class__ is tuple:
                if priority == PRIORITY_DELIVERY:
                    src, dst, payload, msg_id = entry
                    record = pending.pop(msg_id, None) if pending else None
                    process = processes.get(dst)
                    if process is not None and not process.crashed:
                        if record is not None:
                            record.delivered = True
                        process.deliver(src, payload)
                else:  # PRIORITY_TIMER: (pid, name, generation)
                    pid, name, generation = entry
                    process = processes.get(pid)
                    if (
                        process is not None
                        and not process.crashed
                        and timer_generation.get((pid, name), 0) == generation
                    ):
                        trace.record_timer(pid, name, clock.time_to_units(time))
                        process.timeout(name)
            else:
                self._dispatch(entry)
            if self._stopped:
                break
            if self._correct_pids is not None and self._undecided_correct == 0:
                break
            if self._stop_predicate is not None and self._stop_predicate(self):
                break

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------ #
    # schedule control (exploration subsystem; see module docstring)
    # ------------------------------------------------------------------ #
    def _consult_controller(self, event: Event) -> Optional[Event]:
        """Offer the next event to the controller; apply its decision.

        Returns the event to dispatch now, or ``None`` when the event was
        deferred (it is back on the heap at a later time).  Inapplicable
        decisions (deferring a timer, crashing past the budget) are ignored,
        which keeps replay of a *shrunk* decision list well-defined.
        """
        step = self._schedule_step
        self._schedule_step += 1
        action = self._controller.intercept(self, event, step)
        if not action:
            return event
        kind = action[0]
        if kind == "defer":
            extra = float(action[1])
            if self._defer_delivery(event, extra):
                self.applied_schedule_actions.append((step, "defer", extra))
                return None
            return event
        if kind == "crash":
            pid = int(action[1])
            if self.inject_crash(pid, at=event.time):
                self.applied_schedule_actions.append((step, "crash", pid))
            return event
        if kind == "recover":
            pid = int(action[1])
            if self.inject_recovery(pid, at=event.time):
                self.applied_schedule_actions.append((step, "recover", pid))
            return event
        raise ConfigurationError(f"unknown schedule action {action!r}")

    def _defer_delivery(self, event: Event, extra: float) -> bool:
        """Postpone a delivery by ``extra`` time units; True if applied.

        Only real (non-self) message deliveries can be deferred — timers,
        proposals and crashes are local and fire on time in a synchronous
        system, so reordering them would leave the admissible execution
        space.  The pending trace record (or the counters digest) is updated
        to the new receive time, and an effective delay beyond the bound
        ``U`` marks the execution as a network failure.
        """
        if not isinstance(event, MessageDeliveryEvent) or event.src == event.dst:
            return False
        if extra <= 0:
            return False
        new_time = max(self.clock.now, event.time) + extra
        record = self._pending_records.get(event.msg_id)
        if record is not None:
            record.recv_time = new_time
        else:
            self.trace.adjust_recv_time(event.time, new_time)
        if new_time - event.send_time > self.network.u + 1e-9:
            self._schedule_overdue = True
        self._push(dataclasses.replace(event, time=new_time, seq=self._next_seq()))
        return True

    def can_inject_crash(self, pid: int) -> bool:
        """Whether crashing ``pid`` now stays within the fault budget ``f``."""
        process = self.processes.get(pid)
        return (
            process is not None
            and not process.crashed
            and self._crash_budget > 0
            and pid not in self.fault_plan.crashes
        )

    def inject_crash(self, pid: int, at: Optional[float] = None) -> bool:
        """Crash ``pid`` immediately (schedule-controller crash point).

        Unlike fault-plan crashes this happens *between* events: the process
        handles nothing from this moment on.  Ignored (returns False) when
        the process is unknown, already crashed, already doomed by the fault
        plan, or the budget of ``f`` total crashes would be exceeded.
        """
        if not self.can_inject_crash(pid):
            return False
        self._crash_budget -= 1
        self._injected_crashes.add(pid)
        process = self.processes[pid]
        process.crashed = True
        process.on_crash()
        crash_time = self.clock.now if at is None else max(self.clock.now, at)
        self.trace.record_crash(pid, self.clock.time_to_units(crash_time))
        if self._correct_pids is not None and pid in self._correct_pids:
            self._correct_pids = self._correct_pids - {pid}
            if pid not in self.trace.decisions:
                self._undecided_correct -= 1
        return True

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #
    def set_recovery_factory(
        self,
        factory: Optional[Callable[[int, "Scheduler", Process], Optional[Process]]],
    ) -> None:
        """Install the hook deciding what a crashed pid rejoins *with*.

        ``factory(pid, scheduler, old_process)`` returns the replacement
        process (the cluster layer rebuilds a partition server from its
        write-ahead log here) or ``None`` to refuse the recovery.  Without a
        factory the crashed object itself rejoins, state intact.
        """
        self._recovery_factory = factory

    def _cancel_all_timers(self, pid: int) -> None:
        """Supersede every pending timer of ``pid`` (pre-crash incarnation)."""
        for key in self._timer_generation:
            if key[0] == pid:
                self._timer_generation[key] += 1

    def can_inject_recovery(self, pid: int) -> bool:
        process = self.processes.get(pid)
        return process is not None and process.crashed

    def recover(self, pid: int) -> bool:
        """Rejoin a crashed process at the current time; True if applied.

        The pid stays *faulty* for the property checker — it crashed, and
        recovery restores liveness, not correctness accounting — so neither
        ``correct_pids`` nor the crash budget change.  Every timer armed
        before the crash is superseded (the old incarnation must never fire
        into the new one); the rejoining process starts over from
        ``on_recover()``.
        """
        process = self.processes.get(pid)
        if process is None or not process.crashed:
            return False
        self._cancel_all_timers(pid)
        replacement = process
        if self._recovery_factory is not None:
            built = self._recovery_factory(pid, self, process)
            if built is None:
                return False
            replacement = built
        replacement.crashed = False
        self.processes[pid] = replacement
        self.trace.record_recovery(pid, self.clock.time_to_units(self.clock.now))
        replacement.on_recover()
        return True

    def inject_recovery(self, pid: int, at: Optional[float] = None) -> bool:
        """Schedule-controller recovery point (symmetric to inject_crash)."""
        if not self.can_inject_recovery(pid):
            return False
        return self.recover(pid)

    def execution_class(self) -> str:
        """The execution's class, including schedule-controller effects.

        Identical to ``fault_plan.execution_class(u)`` for uncontrolled runs;
        a controller upgrades the class when it deferred a delivery beyond
        the bound (network failure) or injected crashes (crash failure).
        """
        if self._schedule_overdue or self.fault_plan.is_network_failure(self.network.u):
            return "network-failure"
        if self.fault_plan.crashes or self._injected_crashes:
            return "crash-failure"
        return "failure-free"

    def _dispatch(self, event: Event) -> None:
        # ordered by frequency: deliveries dominate every run, then timers
        if isinstance(event, MessageDeliveryEvent):
            # popped even when the destination is gone, so the map stays
            # bounded by in-flight messages; only real deliveries are marked
            record = self._pending_records.pop(event.msg_id, None)
            process = self.processes.get(event.dst)
            if process is None or process.crashed:
                return
            if record is not None:
                record.delivered = True
            process.deliver(event.src, event.payload)
            return
        if isinstance(event, TimerEvent):
            process = self.processes.get(event.pid)
            if process is None or process.crashed:
                return
            key = (event.pid, event.name)
            if self._timer_generation.get(key, 0) != event.generation:
                return  # superseded or cancelled
            self.trace.record_timer(event.pid, event.name, self.clock.time_to_units(event.time))
            process.timeout(event.name)
            return
        if isinstance(event, CrashEvent):
            process = self.processes.get(event.pid)
            if process is not None and not process.crashed:
                process.crashed = True
                process.on_crash()
            self.trace.record_crash(event.pid, self.clock.time_to_units(event.time))
            return
        if isinstance(event, RecoverEvent):
            self.recover(event.pid)
            return
        if isinstance(event, ControlEvent):
            if callable(event.action):
                event.action(self, event)
            return
        if isinstance(event, ProposeEvent):
            process = self.processes.get(event.pid)
            if process is None or process.crashed:
                return
            self.trace.record_proposal(
                event.pid, event.value, self.clock.time_to_units(event.time)
            )
            process.on_propose(event.value)


@dataclass
class SimulationResult:
    """Trace plus the live process objects of one simulated execution."""

    trace: Trace
    processes: Dict[int, Process] = field(default_factory=dict)

    def process(self, pid: int) -> Process:
        return self.processes[pid]

    def decisions(self) -> Dict[int, Any]:
        return {pid: rec.value for pid, rec in self.trace.decisions.items()}


class Simulation:
    """Protocol-level driver: one protocol instance, one set of votes, one run.

    A ``Simulation`` is reusable: the sweep engine builds one per grid cell
    and calls :meth:`run` once per trial with per-trial ``delay_model=`` /
    ``fault_plan=`` / ``seed=`` overrides, so the protocol factory and vote
    resolution are paid once per cell rather than once per trial.

    Example
    -------
    >>> from repro.protocols import TwoPhaseCommit
    >>> sim = Simulation(n=4, f=1, process_class=TwoPhaseCommit)
    >>> result = sim.run(votes=[1, 1, 1, 1])
    >>> result.decisions()
    {1: 1, 2: 1, 3: 1, 4: 1}
    """

    def __init__(
        self,
        n: int,
        f: int,
        process_class: Optional[type] = None,
        process_factory: Optional[ProcessFactory] = None,
        delay_model: Optional[DelayModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: int = 0,
        max_time: float = 500.0,
        stop_when_all_correct_decided: bool = True,
        protocol_kwargs: Optional[Dict[str, Any]] = None,
        trace_level: str = "full",
        event_queue: str = "auto",
    ):
        if (process_class is None) == (process_factory is None):
            raise ConfigurationError(
                "provide exactly one of process_class= or process_factory="
            )
        if trace_level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"unknown trace_level {trace_level!r}; expected one of {TRACE_LEVELS}"
            )
        if event_queue not in EVENT_QUEUES:
            raise ConfigurationError(
                f"unknown event_queue {event_queue!r}; expected one of {EVENT_QUEUES}"
            )
        self.n = n
        self.f = f
        self._process_class = process_class
        self._process_factory = process_factory
        self._protocol_kwargs = dict(protocol_kwargs or {})
        self._delay_model = delay_model
        self._fault_plan = fault_plan
        self._seed = seed
        self._max_time = max_time
        self._stop_when_decided = stop_when_all_correct_decided
        self._trace_level = trace_level
        self._event_queue = event_queue
        self._factory = self._make_factory()
        self._protocol_name = (
            process_class.__name__ if process_class is not None else "custom"
        )

    def _make_factory(self) -> ProcessFactory:
        if self._process_factory is not None:
            return self._process_factory
        cls = self._process_class

        def factory(pid: int, n: int, f: int, env: SimEnv) -> Process:
            return cls(pid, n, f, env, **self._protocol_kwargs)

        return factory

    def run(
        self,
        votes: Union[Sequence[Any], Dict[int, Any]],
        *,
        delay_model: Optional[DelayModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: Optional[int] = None,
        controller: Optional[Any] = None,
        event_queue: Optional[str] = None,
        delay_sampler: Optional[BatchedDelaySampler] = None,
    ) -> SimulationResult:
        """Run one execution with the given per-process votes.

        ``delay_model`` / ``fault_plan`` / ``seed`` override the constructor
        defaults for this run only — the hook the sweep engine uses to reuse
        one ``Simulation`` per grid cell across per-trial-seeded models.
        ``controller`` attaches a schedule controller (see
        :mod:`repro.explore`) to this run; the applied schedule decisions
        land in ``trace.metadata["schedule_decisions"]``.  ``event_queue``
        overrides the constructor's queue choice for this run;
        ``delay_sampler`` supplies a reusable
        :class:`~repro.sim.batch.BatchedDelaySampler` (the sweep engine keeps
        one per cell so its buffer survives across trials).
        """
        if isinstance(votes, dict):
            vote_map = dict(votes)
        else:
            if len(votes) != self.n:
                raise ConfigurationError(
                    f"expected {self.n} votes, got {len(votes)}"
                )
            vote_map = {pid: votes[pid - 1] for pid in range(1, self.n + 1)}

        scheduler = Scheduler(
            n=self.n,
            f=self.f,
            delay_model=delay_model if delay_model is not None else self._delay_model,
            fault_plan=fault_plan if fault_plan is not None else self._fault_plan,
            seed=seed if seed is not None else self._seed,
            max_time=self._max_time,
            protocol_name=self._protocol_name,
            trace_level=self._trace_level,
            controller=controller,
            # a controller forces the heap even when the constructor asked
            # for auto; an explicit "bucket" request with a controller is
            # rejected by the Scheduler itself
            event_queue=event_queue if event_queue is not None else self._event_queue,
            delay_sampler=delay_sampler,
        )
        scheduler.bind_processes(self._factory)
        for pid in range(1, self.n + 1):
            scheduler.processes[pid].on_start()
        for pid, vote in vote_map.items():
            scheduler.post_propose(pid, vote, at=0.0)

        if self._stop_when_decided:
            scheduler.stop_when_all_correct_decided()

        trace = scheduler.run()
        trace.metadata["fault_plan"] = scheduler.fault_plan.description
        # scheduler.execution_class() == fault_plan.execution_class(u) for
        # uncontrolled runs; controllers can upgrade the class dynamically
        trace.metadata["execution_class"] = scheduler.execution_class()
        trace.metadata["votes"] = vote_map
        if controller is not None:
            trace.metadata["schedule_decisions"] = list(
                scheduler.applied_schedule_actions
            )
        return SimulationResult(trace=trace, processes=scheduler.processes)


def run_nice_execution(
    process_class: type,
    n: int,
    f: int,
    protocol_kwargs: Optional[Dict[str, Any]] = None,
    seed: int = 0,
) -> SimulationResult:
    """Convenience helper: run the protocol's *nice execution*.

    A nice execution is failure-free, every process votes 1, and every message
    takes exactly one message delay ``U`` — the setting in which the paper
    measures best-case complexity.
    """
    sim = Simulation(
        n=n,
        f=f,
        process_class=process_class,
        delay_model=FixedDelay(1.0),
        fault_plan=FaultPlan.failure_free(),
        seed=seed,
        protocol_kwargs=protocol_kwargs,
    )
    return sim.run(votes=[1] * n)
