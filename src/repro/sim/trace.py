"""Execution traces: the raw material for every complexity measurement.

A :class:`Trace` records every message send/receive, every decision, every
crash and every timer expiry of one simulated execution.  All the paper's
metrics — number of messages exchanged, number of message delays, which
properties hold — are *derived* from the trace after the run, never tracked
inside protocol code.  This keeps protocol implementations close to the
paper's pseudocode and makes the metrics auditable.

Two trace levels (selected by the scheduler's ``trace_level``):

* ``"full"`` — :class:`Trace`: one :class:`MessageRecord` per message, the
  audit-grade record every per-message query (``counted_messages``,
  ``messages_by_kind``, ``causal_depth``) is computed from.
* ``"counters"`` — :class:`CounterTrace`: no per-message records at all.
  ``record_send`` maintains a handful of running tallies (total counted
  messages, per-module counts, a receive-time → multiplicity digest), which
  is everything the sweep engine's aggregate tables need.  The aggregate
  queries (``message_count``, ``messages_received_by``,
  ``module_histogram``, decisions/crashes/proposals) return byte-identical
  answers to a full trace of the same execution; the per-message queries
  raise :class:`~repro.errors.SimulationError` because the records were
  never kept.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: the trace levels the scheduler accepts
TRACE_LEVELS = ("full", "counters")


@dataclass
class MessageRecord:
    """One message transmitted over the network.

    ``counted`` is False for messages a process "sends to itself": the paper
    explicitly excludes them ("a message whose source and destination is the
    same does not need to be sent over the network").
    """

    msg_id: int
    src: int
    dst: int
    payload: Any
    send_time: float
    recv_time: float
    counted: bool = True
    module: str = "main"
    delivered: bool = False


@dataclass
class DecisionRecord:
    """A process' (single) decision."""

    pid: int
    value: Any
    time: float


@dataclass
class ProposalRecord:
    """The initial vote/proposal handed to a process."""

    pid: int
    value: Any
    time: float


@dataclass
class TimerRecord:
    """A timer expiry that was actually delivered to a process."""

    pid: int
    name: str
    time: float


@dataclass
class Trace:
    """Complete record of one execution."""

    #: which trace level this class implements (see module docstring)
    trace_level = "full"

    n: int = 0
    f: int = 0
    u: float = 1.0
    protocol: str = ""
    messages: List[MessageRecord] = field(default_factory=list)
    decisions: Dict[int, DecisionRecord] = field(default_factory=dict)
    proposals: Dict[int, ProposalRecord] = field(default_factory=dict)
    crashes: Dict[int, float] = field(default_factory=dict)
    recoveries: Dict[int, float] = field(default_factory=dict)
    timers: List[TimerRecord] = field(default_factory=list)
    end_time: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # recording (used by the scheduler)
    # ------------------------------------------------------------------ #
    def record_send(
        self,
        msg_id: int,
        src: int,
        dst: int,
        payload: Any,
        send_time: float,
        recv_time: float,
        counted: bool,
        module: str = "main",
    ) -> MessageRecord:
        rec = MessageRecord(
            msg_id=msg_id,
            src=src,
            dst=dst,
            payload=payload,
            send_time=send_time,
            recv_time=recv_time,
            counted=counted,
            module=module,
        )
        self.messages.append(rec)
        return rec

    def record_decision(self, pid: int, value: Any, time: float) -> None:
        self.decisions[pid] = DecisionRecord(pid=pid, value=value, time=time)

    def record_proposal(self, pid: int, value: Any, time: float) -> None:
        self.proposals[pid] = ProposalRecord(pid=pid, value=value, time=time)

    def record_crash(self, pid: int, time: float) -> None:
        self.crashes[pid] = time

    def record_recovery(self, pid: int, time: float) -> None:
        self.recoveries[pid] = time

    def record_timer(self, pid: int, name: str, time: float) -> None:
        self.timers.append(TimerRecord(pid=pid, name=name, time=time))

    def adjust_recv_time(self, old_time: float, new_time: float) -> None:
        """Account for a delivery rescheduled by a schedule controller.

        At the full level the scheduler mutates the pending
        :class:`MessageRecord` directly (it holds the record by msg id), so
        this is a no-op; :class:`CounterTrace` overrides it to move one
        occurrence between buckets of its receive-time digest.
        """

    # ------------------------------------------------------------------ #
    # queries (used by metrics and the property checker)
    # ------------------------------------------------------------------ #
    def correct_pids(self) -> List[int]:
        """Processes that never crash in this execution."""
        return [pid for pid in range(1, self.n + 1) if pid not in self.crashes]

    def decided_pids(self) -> List[int]:
        return sorted(self.decisions)

    def decision_values(self) -> List[Any]:
        return [self.decisions[p].value for p in sorted(self.decisions)]

    def votes(self) -> Dict[int, Any]:
        return {pid: rec.value for pid, rec in self.proposals.items()}

    def last_decision_time(self) -> Optional[float]:
        if not self.decisions:
            return None
        return max(rec.time for rec in self.decisions.values())

    def first_decision_time(self) -> Optional[float]:
        if not self.decisions:
            return None
        return min(rec.time for rec in self.decisions.values())

    def counted_messages(self, module: Optional[str] = None) -> List[MessageRecord]:
        """Messages that count towards the paper's message complexity."""
        records = [m for m in self.messages if m.counted]
        if module is not None:
            records = [m for m in records if m.module == module]
        return records

    def message_count(self, module: Optional[str] = None) -> int:
        return len(self.counted_messages(module))

    def messages_received_by(self, deadline: float, module: Optional[str] = None) -> int:
        """Messages whose *reception* happens at or before ``deadline``.

        This is the accounting the paper uses when counting the messages of a
        nice execution: messages still in flight when the last process decides
        (e.g. 1NBAC's ``[D, d]`` round) are not charged to the best case.
        """
        return sum(
            1 for m in self.counted_messages(module) if m.recv_time <= deadline + 1e-9
        )

    def messages_sent_by(self, deadline: float, module: Optional[str] = None) -> int:
        return sum(
            1 for m in self.counted_messages(module) if m.send_time <= deadline + 1e-9
        )

    def messages_by_kind(self) -> Dict[str, int]:
        """Histogram of counted messages by their payload "kind" tag.

        Payloads produced by the protocol implementations are tuples whose
        first element is a short tag (``"V"``, ``"C"``, ``"HELP"``, ...); any
        other payload is grouped under ``"other"``.
        """
        histogram: Dict[str, int] = {}
        for record in self.counted_messages():
            payload = record.payload
            if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
                kind = payload[0]
            else:
                kind = "other"
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    def module_histogram(self) -> Dict[str, int]:
        """Counted messages per module tag (``"main"``, ``"consensus[...]"``, ...).

        Available at every trace level — the counters level maintains the
        per-module tallies directly instead of deriving them from records.
        """
        histogram: Dict[str, int] = {}
        for record in self.messages:
            if record.counted:
                histogram[record.module] = histogram.get(record.module, 0) + 1
        return histogram

    def sends_by_process(self) -> Dict[int, int]:
        counts: Dict[int, int] = {pid: 0 for pid in range(1, self.n + 1)}
        for m in self.counted_messages():
            counts[m.src] = counts.get(m.src, 0) + 1
        return counts

    def all_decided_same(self) -> bool:
        values = {rec.value for rec in self.decisions.values()}
        return len(values) <= 1

    def decision_of(self, pid: int) -> Optional[Any]:
        rec = self.decisions.get(pid)
        return None if rec is None else rec.value

    def causal_depth(self) -> int:
        """Length of the longest chain of causally ordered counted messages.

        A chain ``m1, ..., ml`` is causal when each ``m_{i+1}`` leaves its
        source no earlier than ``m_i`` arrived there (Definition 2 in the
        paper).  This is an alternative, time-free view of "message delays".
        """
        messages = sorted(self.counted_messages(), key=lambda m: m.recv_time)
        depth_at_arrival: Dict[int, List[Tuple[float, int]]] = {}
        best = 0
        for m in messages:
            # longest chain ending with a message that arrived at m.src before m left
            prior = depth_at_arrival.get(m.src, [])
            inherited = 0
            for arrival, depth in prior:
                if arrival <= m.send_time + 1e-9:
                    inherited = max(inherited, depth)
            my_depth = inherited + 1
            depth_at_arrival.setdefault(m.dst, []).append((m.recv_time, my_depth))
            best = max(best, my_depth)
        return best

    # ------------------------------------------------------------------ #
    # canonical fingerprint (replay-determinism checks)
    # ------------------------------------------------------------------ #
    def _canonical(self) -> Dict[str, Any]:
        """Plain-data view of everything the trace recorded, in a fixed order."""
        canonical = {
            "level": self.trace_level,
            "n": self.n,
            "f": self.f,
            "u": self.u,
            "protocol": self.protocol,
            "messages": [
                [m.msg_id, m.src, m.dst, repr(m.payload), m.send_time,
                 m.recv_time, m.counted, m.module, m.delivered]
                for m in self.messages
            ],
            "decisions": {
                str(pid): [repr(rec.value), rec.time]
                for pid, rec in sorted(self.decisions.items())
            },
            "proposals": {
                str(pid): [repr(rec.value), rec.time]
                for pid, rec in sorted(self.proposals.items())
            },
            "crashes": {str(pid): t for pid, t in sorted(self.crashes.items())},
            "timers": [[t.pid, t.name, t.time] for t in self.timers],
            "end_time": self.end_time,
        }
        # recovery-free runs keep the exact canonical shape (and therefore
        # fingerprints) they had before recoveries existed
        if self.recoveries:
            canonical["recoveries"] = {
                str(pid): t for pid, t in sorted(self.recoveries.items())
            }
        return canonical

    def fingerprint(self) -> str:
        """Canonical digest of the recorded execution.

        Two runs of the same protocol under the same seeds, fault plan and
        schedule decisions must produce the same fingerprint — this is what
        the schedule-exploration subsystem's replay-determinism guarantees
        are asserted against.  Fingerprints are only comparable between
        traces of the same level (the counters level records strictly less).
        """
        canonical = json.dumps(
            self._canonical(), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Compact dictionary used by benchmarks and examples for reporting."""
        last = self.last_decision_time()
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "decided": len(self.decisions),
            "decision_values": sorted({str(v) for v in self.decision_values()}),
            "messages_total": self.message_count(),
            "messages_until_last_decision": (
                self.messages_received_by(last) if last is not None else 0
            ),
            "last_decision_time": last,
            "crashes": dict(self.crashes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(protocol={self.protocol!r}, n={self.n}, f={self.f}, "
            f"messages={self.message_count()}, decided={len(self.decisions)})"
        )


@dataclass
class CounterTrace(Trace):
    """Counters-only trace: aggregate tallies, no per-message records.

    Selected with ``trace_level="counters"`` on the scheduler.  Decisions,
    proposals and crashes are recorded exactly as in a full trace (they are
    O(n) per execution); messages are condensed on the fly into

    * ``counted_total`` — the counted-message total,
    * ``module_counts`` — counted messages per module tag,
    * ``recv_time_counts`` — receive time → multiplicity digest, from which
      ``messages_received_by`` answers exactly what a full trace would
      (the digest is bounded by the number of *distinct* receive times, not
      by the message count, for the deterministic delay models large sweeps
      use),

    so aggregate-level queries are byte-identical to a full-trace run while
    a trial never allocates a single :class:`MessageRecord`.  Per-message
    queries (``counted_messages``, ``messages_by_kind``, ``causal_depth``,
    ``sends_by_process``, ``messages_sent_by``) raise
    :class:`~repro.errors.SimulationError`: run at ``trace_level="full"``
    when an analysis needs them.
    """

    trace_level = "counters"

    counted_total: int = 0
    module_counts: Dict[str, int] = field(default_factory=dict)
    recv_time_counts: Dict[float, int] = field(default_factory=dict)
    timer_expiries: int = 0

    # ------------------------------------------------------------------ #
    # recording: tallies instead of records
    # ------------------------------------------------------------------ #
    def record_send(
        self,
        msg_id: int,
        src: int,
        dst: int,
        payload: Any,
        send_time: float,
        recv_time: float,
        counted: bool,
        module: str = "main",
    ) -> None:
        if counted:
            self.counted_total += 1
            counts = self.module_counts
            counts[module] = counts.get(module, 0) + 1
            digest = self.recv_time_counts
            digest[recv_time] = digest.get(recv_time, 0) + 1
        return None

    def record_timer(self, pid: int, name: str, time: float) -> None:
        self.timer_expiries += 1

    def adjust_recv_time(self, old_time: float, new_time: float) -> None:
        """Move one counted delivery between receive-time buckets.

        Called by the scheduler when a schedule controller defers a delivery
        (self-messages are never deferrable, so the occurrence is always in
        the digest).
        """
        digest = self.recv_time_counts
        count = digest.get(old_time, 0)
        if count <= 1:
            digest.pop(old_time, None)
        else:
            digest[old_time] = count - 1
        digest[new_time] = digest.get(new_time, 0) + 1

    # ------------------------------------------------------------------ #
    # aggregate queries: answered from the tallies
    # ------------------------------------------------------------------ #
    def message_count(self, module: Optional[str] = None) -> int:
        if module is None:
            return self.counted_total
        return self.module_counts.get(module, 0)

    def messages_received_by(self, deadline: float, module: Optional[str] = None) -> int:
        if module is not None:
            raise self._unavailable("messages_received_by(module=...)")
        cutoff = deadline + 1e-9
        return sum(
            count for time, count in self.recv_time_counts.items() if time <= cutoff
        )

    def module_histogram(self) -> Dict[str, int]:
        return dict(self.module_counts)

    # ------------------------------------------------------------------ #
    # per-message queries: not recorded at this level
    # ------------------------------------------------------------------ #
    def _unavailable(self, what: str) -> Exception:
        from repro.errors import SimulationError

        return SimulationError(
            f"{what} needs per-message records, which trace_level='counters' "
            f"does not keep; run with trace_level='full'"
        )

    def counted_messages(self, module: Optional[str] = None) -> List[MessageRecord]:
        raise self._unavailable("counted_messages()")

    def messages_sent_by(self, deadline: float, module: Optional[str] = None) -> int:
        raise self._unavailable("messages_sent_by()")

    def messages_by_kind(self) -> Dict[str, int]:
        raise self._unavailable("messages_by_kind()")

    def sends_by_process(self) -> Dict[int, int]:
        raise self._unavailable("sends_by_process()")

    def causal_depth(self) -> int:
        raise self._unavailable("causal_depth()")

    def _canonical(self) -> Dict[str, Any]:
        """Counters-level canonical view (strictly less than the full level)."""
        canonical = {
            "level": self.trace_level,
            "n": self.n,
            "f": self.f,
            "u": self.u,
            "protocol": self.protocol,
            "counted_total": self.counted_total,
            "module_counts": dict(sorted(self.module_counts.items())),
            "recv_time_counts": {
                str(t): c for t, c in sorted(self.recv_time_counts.items())
            },
            "timer_expiries": self.timer_expiries,
            "decisions": {
                str(pid): [repr(rec.value), rec.time]
                for pid, rec in sorted(self.decisions.items())
            },
            "proposals": {
                str(pid): [repr(rec.value), rec.time]
                for pid, rec in sorted(self.proposals.items())
            },
            "crashes": {str(pid): t for pid, t in sorted(self.crashes.items())},
            "end_time": self.end_time,
        }
        if self.recoveries:
            canonical["recoveries"] = {
                str(pid): t for pid, t in sorted(self.recoveries.items())
            }
        return canonical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterTrace(protocol={self.protocol!r}, n={self.n}, f={self.f}, "
            f"messages={self.counted_total}, decided={len(self.decisions)})"
        )
