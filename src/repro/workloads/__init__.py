"""Workload generators for the database benchmarks and examples.

* :mod:`repro.workloads.transactions` — multi-partition transaction workloads
  (uniform and Zipfian key access, configurable read/write mix, bank-transfer
  style transfers, adjustable contention).
* :mod:`repro.workloads.votes` — vote-pattern generators for protocol-level
  experiments (all-yes, one-no, random-no with a given probability).
"""

from repro.workloads.transactions import (
    TransactionWorkload,
    bank_transfer_workload,
    hotspot_workload,
    uniform_workload,
)
from repro.workloads.votes import all_yes, one_no, random_votes

__all__ = [
    "TransactionWorkload",
    "all_yes",
    "bank_transfer_workload",
    "hotspot_workload",
    "one_no",
    "random_votes",
    "uniform_workload",
]
