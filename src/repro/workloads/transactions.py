"""Multi-partition transaction workload generators.

All generators are deterministic given their seed and produce
:class:`~repro.db.transaction.Transaction` objects ready to be handed to
:func:`repro.db.cluster.run_cluster`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.db.transaction import Operation, Transaction
from repro.errors import ConfigurationError


@dataclass
class TransactionWorkload:
    """A named batch of transactions plus the parameters that produced it."""

    name: str
    transactions: List[Transaction]
    parameters: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.transactions)

    def participants_histogram(self) -> Dict[int, int]:
        """Histogram of the number of participants per transaction."""
        histogram: Dict[int, int] = {}
        for txn in self.transactions:
            count = len(txn.participants())
            histogram[count] = histogram.get(count, 0) + 1
        return histogram


def _key(partition: int, index: int) -> str:
    return f"p{partition}:k{index}"


def uniform_workload(
    num_transactions: int,
    num_partitions: int,
    keys_per_partition: int = 100,
    participants_per_txn: int = 3,
    writes_per_participant: int = 1,
    reads_per_participant: int = 1,
    inter_arrival: float = 4.0,
    seed: int = 0,
) -> TransactionWorkload:
    """Transactions touching uniformly random partitions and keys.

    ``inter_arrival`` spaces submissions apart (in message-delay units); small
    values create overlapping transactions and hence lock conflicts.
    """
    if participants_per_txn > num_partitions:
        raise ConfigurationError(
            f"participants_per_txn={participants_per_txn} exceeds partitions={num_partitions}"
        )
    rng = random.Random(seed)
    transactions: List[Transaction] = []
    for i in range(num_transactions):
        participants = rng.sample(range(1, num_partitions + 1), participants_per_txn)
        operations: List[Operation] = []
        for partition in participants:
            for _ in range(reads_per_participant):
                operations.append(
                    Operation.read(partition, _key(partition, rng.randrange(keys_per_partition)))
                )
            for _ in range(writes_per_participant):
                operations.append(
                    Operation.write(
                        partition,
                        _key(partition, rng.randrange(keys_per_partition)),
                        f"txn-{i}",
                    )
                )
        transactions.append(
            Transaction.of(f"tx-{i}", operations, submit_time=i * inter_arrival)
        )
    return TransactionWorkload(
        name="uniform",
        transactions=transactions,
        parameters={
            "num_transactions": num_transactions,
            "num_partitions": num_partitions,
            "participants_per_txn": participants_per_txn,
            "inter_arrival": inter_arrival,
            "seed": seed,
        },
    )


def hotspot_workload(
    num_transactions: int,
    num_partitions: int,
    hot_keys: int = 2,
    hot_probability: float = 0.8,
    participants_per_txn: int = 2,
    inter_arrival: float = 1.0,
    seed: int = 0,
) -> TransactionWorkload:
    """A contended workload: most writes hit a few hot keys.

    With a small ``inter_arrival`` several transactions are in flight at once
    and collide on the hot keys, so partitions vote 0 and the commit protocols
    abort — the conflict behaviour of the Helios scenario in the paper's
    introduction.
    """
    rng = random.Random(seed)
    transactions: List[Transaction] = []
    for i in range(num_transactions):
        participants = rng.sample(range(1, num_partitions + 1), participants_per_txn)
        operations: List[Operation] = []
        for partition in participants:
            if rng.random() < hot_probability:
                key = _key(partition, rng.randrange(hot_keys))
            else:
                key = _key(partition, hot_keys + rng.randrange(1000))
            operations.append(Operation.write(partition, key, f"txn-{i}"))
        transactions.append(
            Transaction.of(f"tx-{i}", operations, submit_time=i * inter_arrival)
        )
    return TransactionWorkload(
        name="hotspot",
        transactions=transactions,
        parameters={
            "hot_keys": hot_keys,
            "hot_probability": hot_probability,
            "participants_per_txn": participants_per_txn,
            "inter_arrival": inter_arrival,
            "seed": seed,
        },
    )


def bank_transfer_workload(
    num_transfers: int,
    num_partitions: int,
    accounts_per_partition: int = 10,
    initial_balance: int = 100,
    amount: int = 10,
    inter_arrival: float = 5.0,
    seed: int = 0,
) -> TransactionWorkload:
    """Classic cross-partition money transfers (the quickstart scenario).

    Each transfer reads the two account balances and writes them back with the
    amount moved; source and destination accounts always live on different
    partitions so every transfer requires a distributed commit.
    """
    if num_partitions < 2:
        raise ConfigurationError("bank transfers need at least 2 partitions")
    rng = random.Random(seed)
    transactions: List[Transaction] = []
    for i in range(num_transfers):
        src_partition, dst_partition = rng.sample(range(1, num_partitions + 1), 2)
        src_account = f"acct:{src_partition}:{rng.randrange(accounts_per_partition)}"
        dst_account = f"acct:{dst_partition}:{rng.randrange(accounts_per_partition)}"
        operations = [
            Operation.read(src_partition, src_account),
            Operation.read(dst_partition, dst_account),
            Operation.write(src_partition, src_account, initial_balance - amount),
            Operation.write(dst_partition, dst_account, initial_balance + amount),
        ]
        transactions.append(
            Transaction.of(f"transfer-{i}", operations, submit_time=i * inter_arrival)
        )
    return TransactionWorkload(
        name="bank-transfer",
        transactions=transactions,
        parameters={
            "num_transfers": num_transfers,
            "num_partitions": num_partitions,
            "amount": amount,
            "seed": seed,
        },
    )
