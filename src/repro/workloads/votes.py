"""Vote-pattern generators for protocol-level experiments."""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigurationError
from repro.protocols.base import ABORT, COMMIT


def all_yes(n: int) -> List[int]:
    """Every process votes 1 — the vote pattern of a nice execution."""
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    return [COMMIT] * n


def one_no(n: int, which: int = 1) -> List[int]:
    """Every process votes 1 except ``P_which``."""
    votes = all_yes(n)
    if not 1 <= which <= n:
        raise ConfigurationError(f"process index {which} out of range 1..{n}")
    votes[which - 1] = ABORT
    return votes


def random_votes(n: int, no_probability: float = 0.1, seed: int = 0) -> List[int]:
    """Independent votes, each 0 with probability ``no_probability``."""
    if not 0.0 <= no_probability <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {no_probability}")
    rng = random.Random(seed)
    return [ABORT if rng.random() < no_probability else COMMIT for _ in range(n)]
