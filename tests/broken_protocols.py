"""Deliberately broken commit protocols for the anomaly-hunting tests.

Not a test module (no ``test_`` prefix): these classes are fixtures imported
by ``tests/test_explore_cluster.py``, ``tests/test_db_invariants.py`` and
``scripts/smoke.sh`` stage 9 to prove that the cluster-invariant battery plus
schedule exploration actually *catches* bugs — every real protocol passes the
same battery clean, so a positive control is needed.
"""

from __future__ import annotations

from repro.protocols.base import ABORT, COMMIT
from repro.protocols.two_phase import TwoPhaseCommit


class SplitBrainCommit(TwoPhaseCommit):
    """2PC with an injected split-brain bug in the coordinator's timeout path.

    Correct 2PC aborts when a vote is missing at the end of the collection
    round (some participant crashed or its vote is late).  This subclass
    instead sends ``ABORT`` to the first half of the participants and
    ``COMMIT`` to the rest — so the bug is invisible in every nice execution
    (all votes arrive, the inherited path runs) and fires exactly when an
    adversarial schedule crashes a participant or defers a vote past the
    collect timer.  Partitions then apply a transaction other partitions
    aborted: a transaction-atomicity violation the cluster-invariant battery
    reports and ``explore(preset="cluster-anomaly")`` shrinks to a 1-minimal
    counterexample.
    """

    protocol_name = "SplitBrain2PC"

    def on_timeout(self, name: str) -> None:
        if name != "collect" or not self.is_coordinator or self._outcome_sent:
            return
        if len(self._votes) == self.n:
            # every vote arrived: behave exactly like correct 2PC
            super().on_timeout(name)
            return
        self._outcome_sent = True
        others = self.other_pids()
        half = len(others) // 2
        for q in others[:half]:
            self.send(q, ("OUTCOME", ABORT))
        for q in others[half:]:
            self.send(q, ("OUTCOME", COMMIT))  # the bug: a second outcome
        self.decide_once(ABORT)
