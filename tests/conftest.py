"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import pytest

from repro.core.checker import check_nbac
from repro.sim.faults import FaultPlan
from repro.sim.network import DelayModel, FixedDelay
from repro.sim.runner import Simulation, SimulationResult


def run_protocol(
    protocol_cls: type,
    n: int,
    f: int,
    votes: Union[Sequence[int], Dict[int, int]],
    fault_plan: Optional[FaultPlan] = None,
    delay_model: Optional[DelayModel] = None,
    max_time: float = 300.0,
    protocol_kwargs: Optional[Dict[str, Any]] = None,
    seed: int = 0,
) -> SimulationResult:
    """Run one execution of a protocol and return its result."""
    sim = Simulation(
        n=n,
        f=f,
        process_class=protocol_cls,
        fault_plan=fault_plan,
        delay_model=delay_model or FixedDelay(1.0),
        max_time=max_time,
        protocol_kwargs=protocol_kwargs,
        seed=seed,
    )
    return sim.run(votes)


def nbac_report(result: SimulationResult):
    """Property report of one execution result."""
    return check_nbac(result.trace)


def assert_all_decided(result: SimulationResult, value: Optional[int] = None) -> None:
    """Every correct process decided (optionally a specific value)."""
    trace = result.trace
    correct = trace.correct_pids()
    decided = set(trace.decisions)
    missing = [pid for pid in correct if pid not in decided]
    assert not missing, f"correct processes did not decide: {missing}"
    if value is not None:
        wrong = {pid: rec.value for pid, rec in trace.decisions.items() if rec.value != value}
        assert not wrong, f"unexpected decisions: {wrong}"


def assert_agreement(result: SimulationResult) -> None:
    values = {rec.value for rec in result.trace.decisions.values()}
    assert len(values) <= 1, f"agreement violated: {result.trace.decisions}"


@pytest.fixture
def small_system():
    """A small (n, f) pair used by many protocol tests."""
    return 4, 1


@pytest.fixture
def medium_system():
    """A medium (n, f) pair with f >= 2 (exercises the backup machinery)."""
    return 5, 2
