"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import signal
from typing import Any, Dict, List, Optional, Sequence, Union

import pytest

from repro.core.checker import check_nbac
from repro.sim.faults import FaultPlan
from repro.sim.network import DelayModel, FixedDelay
from repro.sim.runner import Simulation, SimulationResult


def run_protocol(
    protocol_cls: type,
    n: int,
    f: int,
    votes: Union[Sequence[int], Dict[int, int]],
    fault_plan: Optional[FaultPlan] = None,
    delay_model: Optional[DelayModel] = None,
    max_time: float = 300.0,
    protocol_kwargs: Optional[Dict[str, Any]] = None,
    seed: int = 0,
) -> SimulationResult:
    """Run one execution of a protocol and return its result."""
    sim = Simulation(
        n=n,
        f=f,
        process_class=protocol_cls,
        fault_plan=fault_plan,
        delay_model=delay_model or FixedDelay(1.0),
        max_time=max_time,
        protocol_kwargs=protocol_kwargs,
        seed=seed,
    )
    return sim.run(votes)


def nbac_report(result: SimulationResult):
    """Property report of one execution result."""
    return check_nbac(result.trace)


def assert_all_decided(result: SimulationResult, value: Optional[int] = None) -> None:
    """Every correct process decided (optionally a specific value)."""
    trace = result.trace
    correct = trace.correct_pids()
    decided = set(trace.decisions)
    missing = [pid for pid in correct if pid not in decided]
    assert not missing, f"correct processes did not decide: {missing}"
    if value is not None:
        wrong = {pid: rec.value for pid, rec in trace.decisions.items() if rec.value != value}
        assert not wrong, f"unexpected decisions: {wrong}"


def assert_agreement(result: SimulationResult) -> None:
    values = {rec.value for rec in result.trace.decisions.values()}
    assert len(values) <= 1, f"agreement violated: {result.trace.decisions}"


#: hard wall-clock ceiling for one @pytest.mark.runtime test, in seconds.
#: Generous: runtime tests are tuned to finish in well under a second each;
#: the guard only exists so a runtime deadlock fails the suite instead of
#: hanging it (pytest-timeout is not available in this environment).
RUNTIME_TEST_TIMEOUT_SECONDS = 60.0


@pytest.fixture(autouse=True)
def _runtime_timeout_guard(request):
    """SIGALRM-based per-test timeout for wall-clock runtime tests."""
    if request.node.get_closest_marker("runtime") is None:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"runtime test exceeded {RUNTIME_TEST_TIMEOUT_SECONDS:.0f}s "
            "wall-clock guard (likely a deadlocked event loop)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, RUNTIME_TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def small_system():
    """A small (n, f) pair used by many protocol tests."""
    return 4, 1


@pytest.fixture
def medium_system():
    """A medium (n, f) pair with f >= 2 (exercises the backup machinery)."""
    return 5, 2
