"""Fixture: DET001 — unsorted set iteration escaping into ordered results."""


def collect(items: set):
    out = []
    for item in items:
        out.append(item)
    return out


def freeze():
    values = {3, 1, 2}
    return list(values)
