"""Fixture: DET002 — numpy's interpreter-global RNG (module-level calls)."""

import numpy
import numpy as np
from numpy.random import uniform

np.random.seed(42)
DRAW = np.random.uniform(0.0, 1.0, size=8)
OTHER = numpy.random.rand(3)

# sanctioned: explicitly seeded generator objects never fire
STATE = np.random.RandomState(7)
GEN = np.random.default_rng(7)
OK = STATE.uniform(0.0, 1.0, size=8)
