"""Fixture: DET002 — wall clock reads and interpreter-global RNG."""

import random
import time
from datetime import datetime

SEED = random.random()
START = time.time()
STAMP = datetime.now()
