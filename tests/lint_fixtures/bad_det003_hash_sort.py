"""Fixture: DET003 — id()/hash()-keyed ordering."""


def order(items):
    return sorted(items, key=id)


def order_by_hash(items):
    items.sort(key=lambda x: hash(x))
    return items
