"""Fixture: FP001 — json.dumps without sort_keys=True in a digest function."""

import hashlib
import json


def fingerprint(payload):
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
