"""Fixture: FP002 — a set/frozenset inside a sent message payload."""


class Proto:
    def broadcast(self, votes):
        self.send(1, ("VOTES", frozenset(votes)))

    def helped(self, votes):
        ack = ("C", set(votes))
        self.send(2, ack)
