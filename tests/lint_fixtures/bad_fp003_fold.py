"""Fixture: FP003 — order-sensitive dict-view iteration in fold code."""


class Acc:
    def __init__(self):
        self.counts = {}

    def row(self):
        total = 0.0
        for value, count in self.counts.items():
            total += value * count
        return {"total": total}
