"""Fixture: LNT000 — allowlist pragma without a justification."""


def freeze(values: set):
    return list(values)  # lint: allow[DET001]
