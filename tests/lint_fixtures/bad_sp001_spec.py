"""Fixture: SP001 — lambda / local closure in a spec field."""

from repro.exp import GridSpec


def build():
    def local_delay(seed):
        return None

    return GridSpec(
        protocols=["2PC"],
        systems=[(3, 1)],
        delays=[("slow", lambda seed: seed)],
        workloads=[("w", local_delay)],
    )
