"""Fixture: deterministic idioms that must produce zero findings."""

import random


def canonical(values: set):
    return tuple(sorted(values))


def fold(values: set):
    total = set()
    for value in values:
        total.add(value)
    return sorted(total)


def draw(seed: int):
    rng = random.Random(seed)
    return rng.random()


def membership(values: set, needle):
    return needle in values and len(values) > 0


def tally(values: set):
    return sum(1 for v in values)
