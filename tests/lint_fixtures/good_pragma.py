"""Fixture: a justified allowlist pragma suppresses the finding."""


def freeze(values: set):
    return list(values)  # lint: allow[DET001] snapshot order is irrelevant to the caller
