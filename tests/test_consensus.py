"""Tests for the uniform-consensus substrate (Paxos and the fixed-leader stub)."""

from __future__ import annotations

import pytest

from repro.consensus import FixedLeaderConsensus, PaxosConsensus
from repro.sim.faults import FaultPlan
from repro.sim.process import Process
from repro.sim.runner import Simulation


class ConsensusHost(Process):
    """A minimal host that proposes its input value to the consensus module."""

    consensus_class = PaxosConsensus
    propose_delay = 0.0

    def __init__(self, pid, n, f, env):
        super().__init__(pid, n, f, env)
        self.cons = self.consensus_class(self, name="cons", on_decide=self._on_decide)
        self.attach_component(self.cons)

    def _on_decide(self, value):
        self.decide(value)

    def on_propose(self, value):
        if value is None:
            return  # this host never proposes but still acts as acceptor/learner
        if self.propose_delay:
            self._pending = value
            self.set_timer(self.propose_delay, name="later")
        else:
            self.cons.propose(value)

    def on_deliver(self, src, payload):  # pragma: no cover - components handle all
        pass

    def on_timeout(self, name):
        if name == "later":
            self.cons.propose(self._pending)


class PaxosHost(ConsensusHost):
    consensus_class = PaxosConsensus


class FixedLeaderHost(ConsensusHost):
    consensus_class = FixedLeaderConsensus


def run_consensus(host_cls, n, f, proposals, fault_plan=None, max_time=400):
    sim = Simulation(
        n=n, f=f, process_class=host_cls, fault_plan=fault_plan, max_time=max_time
    )
    return sim.run(proposals)


class TestPaxos:
    def test_failure_free_unanimous(self):
        result = run_consensus(PaxosHost, 3, 1, [1, 1, 1])
        assert set(result.decisions().values()) == {1}
        assert len(result.decisions()) == 3

    def test_decided_value_was_proposed(self):
        result = run_consensus(PaxosHost, 5, 2, [0, 1, 0, 1, 1])
        decided = set(result.decisions().values())
        assert len(decided) == 1
        assert decided.pop() in {0, 1}

    def test_agreement_and_termination_with_crashes(self):
        plan = FaultPlan.crashes_at({1: 0.5, 2: 2.0})
        result = run_consensus(PaxosHost, 5, 2, [0, 1, 1, 0, 1], fault_plan=plan)
        correct = [3, 4, 5]
        assert all(pid in result.decisions() for pid in correct)
        assert len({result.decisions()[pid] for pid in correct}) == 1

    def test_termination_with_delayed_messages(self):
        # a network-failure execution: everything from P1 is slow for a while
        plan = FaultPlan.delay_messages(src=1, delay=15.0, after_time=0.0)
        result = run_consensus(PaxosHost, 3, 1, [1, 0, 0], fault_plan=plan)
        assert len(result.decisions()) == 3
        assert len(set(result.decisions().values())) == 1

    def test_non_proposing_processes_learn_the_decision(self):
        result = run_consensus(PaxosHost, 4, 1, {1: 1, 2: None, 3: None, 4: None})
        assert len(result.decisions()) == 4
        assert set(result.decisions().values()) == {1}

    def test_staggered_proposals_still_agree(self):
        class Staggered(PaxosHost):
            propose_delay = 0.0

            def on_propose(self, value):
                # P1 proposes immediately, the rest three units later
                if self.pid == 1:
                    self.cons.propose(value)
                else:
                    self._pending = value
                    self.set_timer(3.0, name="later")

        result = run_consensus(Staggered, 4, 1, [0, 1, 1, 1])
        assert len(result.decisions()) == 4
        assert len(set(result.decisions().values())) == 1

    def test_consensus_messages_are_module_tagged(self):
        result = run_consensus(PaxosHost, 3, 1, [1, 1, 1])
        modules = {m.module for m in result.trace.counted_messages()}
        assert modules == {"cons"}

    def test_propose_twice_is_idempotent(self):
        result = run_consensus(PaxosHost, 3, 1, [1, 1, 1])
        proc = result.process(1)
        proc.cons.propose(0)  # ignored: already proposed/decided
        assert proc.cons.decision in {0, 1}
        assert result.decisions()[1] == proc.cons.decision


class TestFixedLeader:
    def test_failure_free_agreement(self):
        result = run_consensus(FixedLeaderHost, 4, 1, [1, 0, 1, 0])
        assert len(result.decisions()) == 4
        assert len(set(result.decisions().values())) == 1

    def test_leader_value_wins_when_leader_proposes_first(self):
        result = run_consensus(FixedLeaderHost, 3, 1, [0, 1, 1])
        assert set(result.decisions().values()) == {0}

    def test_blocks_if_leader_crashes(self):
        plan = FaultPlan.crash(1, at=0.0)
        result = run_consensus(FixedLeaderHost, 3, 1, [1, 1, 1], fault_plan=plan, max_time=30)
        assert result.decisions() == {}

    def test_majority_helper(self):
        sim = Simulation(n=5, f=2, process_class=FixedLeaderHost, max_time=10)
        result = sim.run([1] * 5)
        assert result.process(1).cons.majority() == 3
