"""Tests for the robustness lattice (repro.core.lattice)."""

from __future__ import annotations

import pytest

from repro.core.lattice import (
    ALL_PROPS,
    Prop,
    PropertyPair,
    all_cells,
    least_robust,
    local_maxima,
    prop_label,
    robustness_leq,
)
from repro.errors import ConfigurationError


class TestPropAndLabels:
    def test_three_properties(self):
        assert {p.value for p in Prop} == {"A", "V", "T"}

    def test_prop_label_empty_set(self):
        assert prop_label(frozenset()) == "∅"

    def test_prop_label_full_set(self):
        assert prop_label(ALL_PROPS) == "AVT"

    def test_prop_label_orders_canonically(self):
        assert prop_label(frozenset({Prop.TERMINATION, Prop.AGREEMENT})) == "AT"


class TestPropertyPairConstruction:
    def test_of_accepts_strings(self):
        pair = PropertyPair.of("AV", "A")
        assert pair.cf == frozenset({Prop.AGREEMENT, Prop.VALIDITY})
        assert pair.nf == frozenset({Prop.AGREEMENT})

    def test_of_accepts_prop_iterables(self):
        pair = PropertyPair.of([Prop.VALIDITY], [])
        assert pair.cf == frozenset({Prop.VALIDITY})
        assert pair.nf == frozenset()

    def test_unknown_property_rejected(self):
        with pytest.raises(ConfigurationError):
            PropertyPair.of("AX", "")

    def test_label(self):
        assert PropertyPair.of("AVT", "V").label() == ("AVT", "V")

    def test_named_problems(self):
        indulgent = PropertyPair.indulgent_atomic_commit()
        assert indulgent.cf == ALL_PROPS and indulgent.nf == ALL_PROPS
        sync = PropertyPair.synchronous_nbac()
        assert sync.cf == ALL_PROPS and sync.nf == frozenset()
        weakest = PropertyPair.weakest()
        assert weakest.cf == frozenset() and weakest.nf == frozenset()


class TestCanonicalisation:
    def test_canonical_iff_nf_subset_of_cf(self):
        assert PropertyPair.of("AV", "A").is_canonical()
        assert not PropertyPair.of("A", "AV").is_canonical()

    def test_canonicalised_unions_nf_into_cf(self):
        cell = PropertyPair.of("A", "V").canonicalised()
        assert cell.cf == frozenset({Prop.AGREEMENT, Prop.VALIDITY})
        assert cell.nf == frozenset({Prop.VALIDITY})
        assert cell.is_canonical()

    def test_canonicalised_is_identity_on_canonical_cells(self):
        cell = PropertyPair.of("AVT", "AT")
        assert cell.canonicalised() == cell


class TestAllCells:
    def test_exactly_27_cells(self):
        # 64 syntactic pairs collapse to 27 problems (Section 1.1)
        assert len(all_cells()) == 27

    def test_all_cells_canonical_and_unique(self):
        cells = all_cells()
        assert all(cell.is_canonical() for cell in cells)
        assert len(set(cells)) == 27

    def test_cells_per_nf_row_match_the_paper_table(self):
        # row ∅ has 8 non-empty cells, row A has 4, row V has 4, row T has 4,
        # rows AV / AT / VT have 2 each, row AVT has 1 (Table 1)
        rows = {}
        for cell in all_cells():
            rows.setdefault(prop_label(cell.nf), 0)
            rows[prop_label(cell.nf)] += 1
        assert rows == {"∅": 8, "A": 4, "V": 4, "T": 4, "AV": 2, "AT": 2, "VT": 2, "AVT": 1}


class TestRobustnessOrder:
    def test_reflexive(self):
        cell = PropertyPair.of("AV", "A")
        assert robustness_leq(cell, cell)

    def test_monotone_in_both_components(self):
        assert robustness_leq(PropertyPair.of("A", ""), PropertyPair.of("AVT", "A"))
        assert not robustness_leq(PropertyPair.of("AVT", "A"), PropertyPair.of("A", ""))

    def test_incomparable_cells(self):
        a = PropertyPair.of("AV", "")
        b = PropertyPair.of("AT", "")
        assert not robustness_leq(a, b)
        assert not robustness_leq(b, a)

    def test_indulgent_is_the_global_maximum(self):
        top = PropertyPair.indulgent_atomic_commit()
        assert all(robustness_leq(cell, top) for cell in all_cells())

    def test_weakest_is_the_global_minimum(self):
        bottom = PropertyPair.weakest()
        assert all(robustness_leq(bottom, cell) for cell in all_cells())


class TestGroupExtremes:
    def test_least_robust_of_all_cells_is_the_weakest(self):
        assert least_robust(all_cells()) == [PropertyPair.weakest()]

    def test_local_maxima_of_all_cells_is_indulgent(self):
        assert local_maxima(all_cells()) == [PropertyPair.indulgent_atomic_commit()]

    def test_one_delay_group_has_three_local_maxima(self):
        # Section 4.1: cells with a 1-delay bound have local maxima
        # (AV, AV), (AT, AT) and (AVT, VT)
        from repro.core.table1 import delay_lower_bound

        one_delay = [cell for cell in all_cells() if delay_lower_bound(cell) == 1]
        maxima = {cell.label() for cell in local_maxima(one_delay)}
        assert maxima == {("AV", "AV"), ("AT", "AT"), ("AVT", "VT")}
