"""Tests for the complexity measures (repro.core.metrics)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    causal_message_delays,
    decision_message_delays,
    first_decision_delays,
    messages_exchanged,
    messages_until_last_decision,
    nice_execution_complexity,
)
from repro.protocols import INBAC, OneNBAC, TwoPhaseCommit
from repro.sim.runner import run_nice_execution
from repro.sim.trace import Trace


def synthetic_trace():
    """P1 -> P2 at [0,1]; P2 -> P3 at [1,2]; decisions at 2 (P3) and 1 (P2)."""
    trace = Trace(n=3, f=1, protocol="synthetic")
    trace.record_proposal(1, 1, 0.0)
    trace.record_proposal(2, 1, 0.0)
    trace.record_proposal(3, 1, 0.0)
    trace.record_send(1, 1, 2, ("a",), 0.0, 1.0, counted=True)
    trace.record_send(2, 2, 3, ("b",), 1.0, 2.0, counted=True)
    trace.record_send(3, 2, 2, ("self",), 1.0, 1.0, counted=False)
    trace.record_send(4, 3, 1, ("late",), 2.0, 3.0, counted=True)
    trace.record_decision(2, 1, 1.0)
    trace.record_decision(3, 1, 2.0)
    trace.record_decision(1, 1, 2.0)
    return trace


class TestMessageCounts:
    def test_total_excludes_self_messages(self):
        assert messages_exchanged(synthetic_trace()) == 3

    def test_until_last_decision_excludes_in_flight_messages(self):
        # the message sent at 2 arrives at 3, after the last decision at 2
        assert messages_until_last_decision(synthetic_trace()) == 2

    def test_until_last_decision_falls_back_to_total_without_decisions(self):
        trace = Trace(n=2, f=1)
        trace.record_send(1, 1, 2, ("x",), 0.0, 1.0, counted=True)
        assert messages_until_last_decision(trace) == 1

    def test_module_filter(self):
        trace = Trace(n=2, f=1)
        trace.record_send(1, 1, 2, ("x",), 0.0, 1.0, counted=True, module="main")
        trace.record_send(2, 2, 1, ("y",), 0.0, 1.0, counted=True, module="cons")
        assert messages_exchanged(trace, module="main") == 1
        assert messages_exchanged(trace, module="cons") == 1
        assert messages_exchanged(trace) == 2


class TestDelays:
    def test_decision_delays_is_latest_decision_time(self):
        assert decision_message_delays(synthetic_trace()) == 2.0

    def test_first_decision_delays(self):
        assert first_decision_delays(synthetic_trace()) == 1.0

    def test_per_process_delays(self):
        per_process = decision_message_delays(synthetic_trace(), per_process=True)
        assert per_process == {1: 2.0, 2: 1.0, 3: 2.0}

    def test_no_decisions_gives_none(self):
        assert decision_message_delays(Trace(n=2, f=1)) is None
        assert first_decision_delays(Trace(n=2, f=1)) is None

    def test_causal_depth_counts_chained_messages(self):
        assert causal_message_delays(synthetic_trace()) == 3  # a -> b -> late


class TestNiceExecutionComplexity:
    @pytest.mark.parametrize(
        "protocol,n,f,delays,messages",
        [
            (INBAC, 5, 2, 2.0, 20),
            (OneNBAC, 4, 1, 1.0, 12),
            (TwoPhaseCommit, 6, 1, 2.0, 10),
        ],
    )
    def test_matches_protocol_formulas(self, protocol, n, f, delays, messages):
        result = run_nice_execution(protocol, n=n, f=f)
        stats = nice_execution_complexity(result.trace)
        assert stats.message_delays == delays
        assert stats.messages == messages
        assert stats.consensus_messages == 0
        assert stats.n == n and stats.f == f

    def test_as_row_contains_all_fields(self):
        result = run_nice_execution(INBAC, n=4, f=1)
        row = nice_execution_complexity(result.trace).as_row()
        assert set(row) >= {"protocol", "n", "f", "delays", "messages", "causal_depth"}
