"""Tests for the property checkers and the problem evaluator."""

from __future__ import annotations

import pytest

from repro.core.checker import (
    check_nbac,
    evaluate_problem,
    required_properties,
    robustness_row,
)
from repro.core.lattice import ALL_PROPS, Prop, PropertyPair
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
    is_nice_execution,
    solves_nbac,
)
from repro.sim.trace import Trace


def make_trace(n=3, votes=None, decisions=None, crashes=None, execution_class="failure-free"):
    """Build a synthetic trace for checker tests."""
    trace = Trace(n=n, f=1, protocol="synthetic")
    votes = votes if votes is not None else {pid: 1 for pid in range(1, n + 1)}
    for pid, vote in votes.items():
        trace.record_proposal(pid, vote, 0.0)
    for pid, (value, time) in (decisions or {}).items():
        trace.record_decision(pid, value, time)
    for pid, time in (crashes or {}).items():
        trace.record_crash(pid, time)
    trace.metadata["execution_class"] = execution_class
    return trace


class TestValidity:
    def test_commit_with_all_yes_is_valid(self):
        trace = make_trace(decisions={1: (1, 2), 2: (1, 2), 3: (1, 2)})
        assert check_validity(trace).holds

    def test_abort_with_all_yes_and_no_failure_is_invalid(self):
        trace = make_trace(decisions={1: (0, 2), 2: (0, 2), 3: (0, 2)})
        check = check_validity(trace)
        assert not check.holds
        assert len(check.violations) == 3

    def test_abort_with_all_yes_but_a_crash_is_valid(self):
        trace = make_trace(decisions={1: (0, 2), 2: (0, 2)}, crashes={3: 0.0})
        assert check_validity(trace).holds

    def test_abort_with_all_yes_but_network_failure_is_valid(self):
        trace = make_trace(
            decisions={1: (0, 2)}, execution_class="network-failure"
        )
        assert check_validity(trace).holds

    def test_commit_despite_a_no_vote_is_invalid(self):
        trace = make_trace(votes={1: 1, 2: 0, 3: 1}, decisions={1: (1, 2)})
        check = check_validity(trace)
        assert not check.holds
        assert "proposed 0" in check.violations[0]

    def test_abort_with_a_no_vote_is_valid(self):
        trace = make_trace(votes={1: 1, 2: 0, 3: 1}, decisions={1: (0, 2), 2: (0, 2)})
        assert check_validity(trace).holds


class TestAgreementAndTermination:
    def test_agreement_holds_when_all_equal(self):
        trace = make_trace(decisions={1: (1, 2), 2: (1, 3), 3: (1, 2)})
        assert check_agreement(trace).holds

    def test_agreement_violated_when_values_differ(self):
        trace = make_trace(decisions={1: (1, 2), 2: (0, 3)})
        check = check_agreement(trace)
        assert not check.holds
        assert "P1" in check.violations[0] and "P2" in check.violations[0]

    def test_agreement_vacuously_holds_with_no_decisions(self):
        assert check_agreement(make_trace()).holds

    def test_termination_requires_every_correct_process_to_decide(self):
        trace = make_trace(decisions={1: (1, 2), 2: (1, 2)})
        check = check_termination(trace)
        assert not check.holds
        assert "P3" in check.violations[0]

    def test_crashed_processes_are_exempt_from_termination(self):
        trace = make_trace(decisions={1: (1, 2), 2: (1, 2)}, crashes={3: 0.5})
        assert check_termination(trace).holds

    def test_solves_nbac_combines_all_three(self):
        good = make_trace(decisions={1: (1, 2), 2: (1, 2), 3: (1, 2)})
        assert solves_nbac(good).holds
        bad = make_trace(decisions={1: (1, 2), 2: (0, 2), 3: (1, 2)})
        assert not solves_nbac(bad).holds


class TestNiceExecution:
    def test_all_yes_failure_free_is_nice(self):
        assert is_nice_execution(make_trace())

    def test_a_no_vote_is_not_nice(self):
        assert not is_nice_execution(make_trace(votes={1: 1, 2: 0, 3: 1}))

    def test_a_crash_is_not_nice(self):
        assert not is_nice_execution(make_trace(crashes={1: 0.0}))

    def test_network_failure_is_not_nice(self):
        assert not is_nice_execution(make_trace(execution_class="network-failure"))


class TestProblemEvaluation:
    def test_required_properties_per_execution_class(self):
        cell = PropertyPair.of("AV", "A")
        assert required_properties(cell, "failure-free") == ALL_PROPS
        assert required_properties(cell, "crash-failure") == cell.cf
        assert required_properties(cell, "network-failure") == cell.nf
        with pytest.raises(ValueError):
            required_properties(cell, "martian-failure")

    def test_evaluation_ignores_properties_the_cell_does_not_require(self):
        # termination violated, but the cell only requires agreement under crashes
        trace = make_trace(decisions={1: (1, 2)}, crashes={2: 0.0}, execution_class="crash-failure")
        evaluation = evaluate_problem(trace, PropertyPair.of("A", "A"))
        assert evaluation.satisfied
        assert Prop.TERMINATION not in evaluation.required

    def test_evaluation_fails_on_required_property(self):
        trace = make_trace(
            decisions={1: (1, 2), 2: (0, 2)}, crashes={3: 0.0}, execution_class="crash-failure"
        )
        evaluation = evaluate_problem(trace, PropertyPair.of("A", ""))
        assert not evaluation.satisfied
        assert evaluation.failures

    def test_report_satisfied_labels(self):
        trace = make_trace(decisions={1: (1, 2), 2: (1, 2), 3: (1, 2)})
        assert check_nbac(trace).satisfied_labels() == "AVT"

    def test_robustness_row_takes_the_intersection_over_traces(self):
        good = make_trace(decisions={1: (1, 2), 2: (1, 2), 3: (1, 2)})
        no_termination = make_trace(decisions={1: (1, 2)}, execution_class="crash-failure",
                                    crashes={2: 0.0})
        row = robustness_row({"crash-failure": [good, no_termination]})
        assert "T" not in row["crash-failure"]
        assert "A" in row["crash-failure"]


class TestDelayOnlyNetworkFailures:
    """Validity's "or a failure occurs" clause when the *only* failure is a
    delay beyond ``U`` — no crash appears anywhere in the trace, so the
    checker must rely on the execution class stamped into the metadata (or
    passed explicitly)."""

    def run_delayed(self, execution_class=None, **kwargs):
        from repro.protocols.one_nbac import OneNBAC
        from repro.sim.faults import FaultPlan
        from repro.sim.runner import Simulation

        sim = Simulation(n=4, f=1, process_class=OneNBAC, max_time=60, **kwargs)
        # P1's votes arrive after everyone's round-1 timer: a pure
        # network-failure execution, no crash involved
        plan = FaultPlan.delay_messages(src=1, delay=40.0)
        return sim.run([1, 1, 1, 1], fault_plan=plan)

    def test_metadata_stamping_classifies_the_run(self):
        trace = self.run_delayed().trace
        assert not trace.crashes
        assert trace.metadata["execution_class"] == "network-failure"

    def test_abort_on_all_yes_votes_is_excused_by_the_delay(self):
        trace = self.run_delayed().trace
        # the synchronous protocol times out on the missing votes and aborts
        assert 0 in {rec.value for rec in trace.decisions.values()}
        assert check_validity(trace).holds
        assert check_nbac(trace).validity.holds

    def test_same_trace_without_the_stamp_would_violate_validity(self):
        trace = self.run_delayed().trace
        # control: strip the stamp and the abort becomes a violation,
        # proving the network-failure clause (not the crash clause) excused it
        del trace.metadata["execution_class"]
        assert not check_validity(trace).holds
        # an explicit class argument overrides the (missing) metadata
        assert check_validity(trace, "network-failure").holds
        assert check_nbac(trace, "network-failure").validity.holds

    def test_schedule_deferral_stamps_the_class_without_any_fault_plan(self):
        # the schedule controller is the other source of delay-only failures:
        # deferring a delivery beyond U upgrades the class dynamically
        from repro.explore import ScheduleController
        from repro.protocols.two_phase import TwoPhaseCommit
        from repro.sim.runner import Simulation

        class DeferOnce(ScheduleController):
            def __init__(self):
                super().__init__()
                self._done = False

            def intercept(self, scheduler, event, step):
                from repro.sim.events import MessageDeliveryEvent

                if not self._done and isinstance(event, MessageDeliveryEvent) \
                        and event.src != event.dst:
                    self._done = True
                    return ("defer", 3.0)
                return None

        sim = Simulation(n=4, f=1, process_class=TwoPhaseCommit, max_time=60)
        trace = sim.run([1, 1, 1, 1], controller=DeferOnce()).trace
        assert not trace.crashes
        assert trace.metadata["execution_class"] == "network-failure"
        # 2PC aborts when a vote misses the collect deadline; the deferred
        # delivery is a failure, so validity still holds
        assert check_validity(trace).holds
