"""Tests for the Table 1 lower bounds (repro.core.table1).

The paper's Table 1 is transcribed literally below and compared cell by cell
against the closed-form rules used by the library.
"""

from __future__ import annotations

import pytest

from repro.core.lattice import PropertyPair, all_cells
from repro.core.table1 import (
    cell_bound,
    complexity_groups,
    delay_groups,
    delay_lower_bound,
    message_lower_bound,
    table1_bounds,
    tradeoff_cells,
)
from repro.errors import ConfigurationError

# (CF, NF) -> (delays, symbolic messages) exactly as printed in Table 1.
PAPER_TABLE_1 = {
    # NF = ∅ row
    ("∅", "∅"): (1, "0"),
    ("A", "∅"): (1, "0"),
    ("V", "∅"): (1, "n-1+f"),
    ("T", "∅"): (1, "0"),
    ("AV", "∅"): (1, "n-1+f"),
    ("AT", "∅"): (1, "0"),
    ("VT", "∅"): (1, "n-1+f"),
    ("AVT", "∅"): (1, "n-1+f"),
    # NF = A row
    ("A", "A"): (1, "0"),
    ("AV", "A"): (1, "n-1+f"),
    ("AT", "A"): (1, "0"),
    ("AVT", "A"): (2, "2n-2+f"),
    # NF = V row
    ("V", "V"): (1, "2n-2"),
    ("AV", "V"): (1, "2n-2"),
    ("VT", "V"): (1, "2n-2"),
    ("AVT", "V"): (1, "2n-2"),
    # NF = T row
    ("T", "T"): (1, "0"),
    ("AT", "T"): (1, "0"),
    ("VT", "T"): (1, "n-1+f"),
    ("AVT", "T"): (1, "n-1+f"),
    # NF = AV row
    ("AV", "AV"): (1, "2n-2"),
    ("AVT", "AV"): (2, "2n-2+f"),
    # NF = AT row
    ("AT", "AT"): (1, "0"),
    ("AVT", "AT"): (2, "2n-2+f"),
    # NF = VT row
    ("VT", "VT"): (1, "2n-2"),
    ("AVT", "VT"): (1, "2n-2"),
    # NF = AVT row
    ("AVT", "AVT"): (2, "2n-2+f"),
}


class TestAgainstThePaperTable:
    def test_paper_table_has_27_entries(self):
        assert len(PAPER_TABLE_1) == 27

    @pytest.mark.parametrize("labels,expected", sorted(PAPER_TABLE_1.items()))
    def test_every_cell_matches_the_paper(self, labels, expected):
        cf, nf = labels
        cell = PropertyPair.of(cf if cf != "∅" else "", nf if nf != "∅" else "")
        expected_delays, expected_messages = expected
        assert delay_lower_bound(cell) == expected_delays
        assert message_lower_bound(cell) == expected_messages

    def test_table1_bounds_covers_all_cells(self):
        bounds = table1_bounds()
        assert len(bounds) == 27
        assert set(bounds) == {cell.label() for cell in all_cells()}


class TestNumericBounds:
    @pytest.mark.parametrize("n,f", [(3, 1), (5, 2), (8, 7), (10, 4)])
    def test_symbolic_formulas_evaluate_correctly(self, n, f):
        assert message_lower_bound(PropertyPair.of("V", ""), n, f) == n - 1 + f
        assert message_lower_bound(PropertyPair.of("V", "V"), n, f) == 2 * n - 2
        assert message_lower_bound(PropertyPair.of("AVT", "AVT"), n, f) == 2 * n - 2 + f
        assert message_lower_bound(PropertyPair.of("", ""), n, f) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            message_lower_bound(PropertyPair.of("V", ""), 1, 1)
        with pytest.raises(ConfigurationError):
            message_lower_bound(PropertyPair.of("V", ""), 4, 4)
        with pytest.raises(ConfigurationError):
            cell_bound(PropertyPair.of("V", "")).messages_for(3, 0)

    def test_non_canonical_cell_uses_its_canonical_equivalent(self):
        # empty cell (A, V) is equivalent to (AV, V) per the table's footnote
        assert message_lower_bound(PropertyPair.of("A", "V")) == message_lower_bound(
            PropertyPair.of("AV", "V")
        )
        assert delay_lower_bound(PropertyPair.of("T", "AVT")) == 2

    def test_as_fraction_rendering(self):
        bound = cell_bound(PropertyPair.indulgent_atomic_commit())
        assert bound.as_fraction() == "2/2n-2+f"
        assert bound.as_fraction(5, 2) == "2/10"


class TestGroupsAndTradeoffs:
    def test_delay_groups(self):
        groups = delay_groups()
        assert set(groups) == {1, 2}
        assert len(groups[2]) == 4  # (AVT, A), (AVT, AV), (AVT, AT), (AVT, AVT)
        assert len(groups[1]) == 23

    def test_message_groups_partition_the_cells(self):
        groups = complexity_groups()
        assert set(groups) == {"0", "n-1+f", "2n-2", "2n-2+f"}
        assert sum(len(v) for v in groups.values()) == 27

    def test_group_sizes_match_the_paper(self):
        groups = complexity_groups()
        # 9 cells with 0 messages, 7 with n-1+f, 7 with 2n-2, 4 with 2n-2+f
        assert {name: len(v) for name, v in groups.items()} == {
            "0": 9,
            "n-1+f": 7,
            "2n-2": 7,
            "2n-2+f": 4,
        }

    def test_tradeoff_in_18_of_27_problems(self):
        # Section 3.2: 14 problems with bounds n-1+f or 2n-2 plus the 4 most
        # robust ones exhibit a delay/message tradeoff.
        assert len(tradeoff_cells()) == 18

    def test_two_delay_cells_require_agreement_under_network_failures(self):
        for cell in all_cells():
            if delay_lower_bound(cell) == 2:
                assert cell.label()[0] == "AVT"
                assert "A" in cell.label()[1]
