"""Integration tests of the simulated cluster (partitions + coordinator)."""

from __future__ import annotations

import pytest

from repro.db import ClusterConfig, run_cluster
from repro.db.transaction import Operation, Transaction
from repro.errors import ConfigurationError
from repro.protocols.base import ABORT, COMMIT
from repro.sim.faults import FaultPlan
from repro.workloads import bank_transfer_workload, hotspot_workload, uniform_workload

PROTOCOLS = ["2PC", "INBAC", "PaxosCommit", "FasterPaxosCommit", "1NBAC", "3PC"]


def simple_transfer(txn_id="t1", submit_time=0.0):
    return Transaction.of(
        txn_id,
        [
            Operation.write(1, "a", 90),
            Operation.write(2, "b", 110),
            Operation.read(1, "a"),
        ],
        submit_time=submit_time,
    )


class TestClusterBasics:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            run_cluster(ClusterConfig(num_partitions=1), [simple_transfer()])
        with pytest.raises(ConfigurationError):
            run_cluster(ClusterConfig(num_partitions=3), [])

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_single_transaction_commits_with_every_protocol(self, protocol):
        config = ClusterConfig(num_partitions=3, commit_protocol=protocol, commit_f=1)
        report = run_cluster(config, [simple_transfer()])
        assert report.committed == 1
        assert report.aborted == 0
        assert report.incomplete == 0
        assert report.store_snapshots[1]["a"] == 90
        assert report.store_snapshots[2]["b"] == 110

    def test_single_partition_transaction_needs_no_commit_protocol(self):
        config = ClusterConfig(num_partitions=2, commit_protocol="INBAC")
        txn = Transaction.of("local", [Operation.write(1, "k", 5)])
        report = run_cluster(config, [txn])
        assert report.committed == 1
        assert report.messages_by_module.get("commit:main", 0) == 0

    def test_writes_not_applied_on_abort(self):
        # two transactions race for the same key on partition 1: one must abort
        config = ClusterConfig(num_partitions=2, commit_protocol="INBAC")
        t1 = Transaction.of(
            "t1",
            [Operation.write(1, "hot", "t1"), Operation.write(2, "x", 1)],
            submit_time=0.0,
        )
        t2 = Transaction.of(
            "t2",
            [Operation.write(1, "hot", "t2"), Operation.write(2, "y", 2)],
            submit_time=0.2,
        )
        report = run_cluster(config, [t1, t2])
        assert report.committed == 1
        assert report.aborted == 1
        committed_value = report.store_snapshots[1]["hot"]
        committed_txn = "t1" if committed_value == "t1" else "t2"
        aborted_txn = "t2" if committed_txn == "t1" else "t1"
        # the aborted transaction's writes are nowhere in the stores
        for snapshot in report.store_snapshots.values():
            assert aborted_txn not in snapshot.values()

    def test_partition_wal_and_locks_are_clean_after_the_run(self):
        config = ClusterConfig(num_partitions=3, commit_protocol="2PC")
        report = run_cluster(config, [simple_transfer()])
        for stats in report.partition_stats.values():
            assert stats["prepared"] >= 0
        # all partitions report done; report end time is bounded
        assert report.end_time < 50


class TestClusterWorkloads:
    @pytest.mark.parametrize("protocol", ["2PC", "INBAC"])
    def test_bank_transfers_all_commit_without_contention(self, protocol):
        workload = bank_transfer_workload(num_transfers=8, num_partitions=4, seed=3)
        config = ClusterConfig(num_partitions=4, commit_protocol=protocol, seed=1)
        report = run_cluster(config, workload.transactions)
        assert report.committed + report.aborted == 8
        assert report.incomplete == 0
        # transfers are spaced out, so conflicts are rare: most must commit
        assert report.committed >= 7

    def test_hotspot_workload_produces_aborts(self):
        workload = hotspot_workload(
            num_transactions=20, num_partitions=4, inter_arrival=0.4, seed=5
        )
        config = ClusterConfig(num_partitions=4, commit_protocol="INBAC", seed=1)
        report = run_cluster(config, workload.transactions)
        assert report.aborted > 0
        assert report.committed > 0
        assert report.incomplete == 0

    def test_uniform_workload_message_accounting(self):
        workload = uniform_workload(
            num_transactions=6, num_partitions=4, participants_per_txn=3, seed=2
        )
        config = ClusterConfig(num_partitions=4, commit_protocol="2PC", seed=1)
        report = run_cluster(config, workload.transactions)
        assert report.messages_total > 0
        assert report.messages_per_transaction() > 0
        # EXEC / DONE traffic is tagged "main", commit traffic "commit:main"
        assert "main" in report.messages_by_module
        assert "commit:main" in report.messages_by_module

    def test_latency_reflects_protocol_round_structure(self):
        """1NBAC (1 commit delay) < 2PC/INBAC (2) < 3PC (3+) end-to-end."""
        workload = bank_transfer_workload(num_transfers=5, num_partitions=4, seed=7)
        latencies = {}
        for protocol in ["1NBAC", "2PC", "INBAC", "3PC"]:
            config = ClusterConfig(num_partitions=4, commit_protocol=protocol, seed=1)
            report = run_cluster(config, workload.transactions)
            assert report.incomplete == 0
            latencies[protocol] = report.mean_commit_latency()
        assert latencies["1NBAC"] < latencies["INBAC"]
        assert latencies["INBAC"] <= latencies["3PC"]
        assert latencies["2PC"] <= latencies["INBAC"]

    def test_inbac_keeps_committing_when_a_partition_crashes_mid_run(self):
        # crash a partition after the first transactions have completed: INBAC
        # transactions involving the crashed partition abort or complete via
        # consensus, but the coordinator is never left waiting forever on the
        # transactions whose participants are all alive
        workload = bank_transfer_workload(num_transfers=6, num_partitions=4, seed=11)
        config = ClusterConfig(
            num_partitions=4,
            commit_protocol="INBAC",
            commit_f=1,
            seed=1,
            fault_plan=FaultPlan.crash(2, at=12.0),
            max_time=4000.0,
        )
        report = run_cluster(config, workload.transactions)
        unaffected = [
            outcome
            for outcome in report.outcomes
            if 2 not in outcome.participants or (outcome.decide_time or 1e9) < 12.0
        ]
        assert all(o.completed for o in unaffected)
        assert report.committed >= len(unaffected) - 2


class TestReportAggregates:
    def test_summary_row_fields(self):
        config = ClusterConfig(num_partitions=3, commit_protocol="2PC")
        report = run_cluster(config, [simple_transfer()])
        row = report.summary_row()
        assert row["protocol"] == "2PC"
        assert row["txns"] == 1
        assert row["committed"] == 1
        assert row["mean_latency"] is not None
        assert row["p95_latency"] is not None

    def test_percentile_with_no_completed_transactions(self):
        from repro.db.cluster import ClusterReport

        empty = ClusterReport(
            protocol="x",
            num_partitions=2,
            outcomes=[],
            messages_total=0,
            messages_by_module={},
            end_time=0.0,
            partition_stats={},
            store_snapshots={},
        )
        assert empty.mean_commit_latency() is None
        assert empty.p95_commit_latency() is None
        assert empty.messages_per_transaction() is None
