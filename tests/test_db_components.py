"""Unit tests for the database substrate components (store, locks, WAL, ...)."""

from __future__ import annotations

import pytest

from repro.db.conflict import ConflictDetector
from repro.db.locks import LockManager, LockMode
from repro.db.store import VersionedStore
from repro.db.transaction import Operation, Transaction
from repro.db.wal import ABORT, COMMIT, PREPARE, WriteAheadLog
from repro.errors import ConfigurationError, StorageError


class TestVersionedStore:
    def test_put_and_get(self):
        store = VersionedStore()
        store.apply("x", 1)
        assert store.get("x") == 1

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            VersionedStore().get("missing")

    def test_get_or_default(self):
        store = VersionedStore()
        assert store.get_or_default("missing", 42) == 42

    def test_versions_are_monotone(self):
        store = VersionedStore()
        v1 = store.apply("x", 1)
        v2 = store.apply("x", 2)
        assert v2 > v1
        assert store.get("x") == 2
        assert store.latest_version("x") == v2

    def test_snapshot_reads(self):
        store = VersionedStore()
        v1 = store.apply("x", "old")
        store.apply("y", "other")
        store.apply("x", "new")
        assert store.get("x", at_version=v1) == "old"
        assert store.get("x") == "new"

    def test_snapshot_read_before_first_version_raises(self):
        store = VersionedStore()
        store.apply("y", 1)
        store.apply("x", 1)
        with pytest.raises(StorageError):
            store.get("x", at_version=0)

    def test_apply_many_is_one_version(self):
        store = VersionedStore()
        version = store.apply_many({"a": 1, "b": 2}, txn_id="t1")
        assert store.latest_version("a") == version
        assert store.latest_version("b") == version
        assert store.snapshot() == {"a": 1, "b": 2}

    def test_history_records_txn_ids(self):
        store = VersionedStore()
        store.apply("x", 1, txn_id="t1")
        store.apply("x", 2, txn_id="t2")
        assert [rec.txn_id for rec in store.history("x")] == ["t1", "t2"]

    def test_len_and_keys(self):
        store = VersionedStore()
        store.apply("b", 1)
        store.apply("a", 1)
        assert len(store) == 2
        assert store.keys() == ["a", "b"]


class TestLockManager:
    def test_exclusive_conflicts_with_exclusive(self):
        locks = LockManager()
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_shared_locks_are_compatible(self):
        locks = LockManager()
        assert locks.try_acquire("t1", "x", LockMode.SHARED)
        assert locks.try_acquire("t2", "x", LockMode.SHARED)
        assert locks.holders("x") == {"t1", "t2"}

    def test_shared_then_exclusive_conflicts(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.SHARED)
        assert not locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_reentrant_upgrade_by_same_transaction(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.SHARED)
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not locks.try_acquire("t2", "x", LockMode.SHARED)

    def test_release_frees_the_key(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.release("t1", "x")
        assert locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)
        assert not locks.is_locked("x") or locks.holders("x") == {"t2"}

    def test_release_all(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.try_acquire("t1", "y", LockMode.SHARED)
        locks.release_all("t1")
        assert locks.keys_held_by("t1") == set()
        assert locks.locked_keys() == []

    def test_try_acquire_all_is_atomic(self):
        locks = LockManager()
        locks.try_acquire("t1", "y", LockMode.EXCLUSIVE)
        ok = locks.try_acquire_all(
            "t2", {"x": LockMode.EXCLUSIVE, "y": LockMode.EXCLUSIVE}
        )
        assert not ok
        # the partial acquisition of x must have been rolled back
        assert not locks.is_locked("x")

    def test_release_of_unknown_key_is_a_noop(self):
        LockManager().release("t1", "nothing")

    def test_failed_acquire_all_keeps_preheld_locks(self):
        # regression: rollback used to release every key it touched,
        # including keys the transaction already held before the call
        locks = LockManager()
        assert locks.try_acquire("t1", "a", LockMode.EXCLUSIVE)
        locks.try_acquire("t2", "b", LockMode.EXCLUSIVE)
        ok = locks.try_acquire_all("t1", {"a": LockMode.EXCLUSIVE, "b": LockMode.SHARED})
        assert not ok
        # t1 must still hold a, exclusively
        assert locks.holders("a") == {"t1"}
        assert locks.keys_held_by("t1") == {"a"}
        assert not locks.try_acquire("t2", "a", LockMode.SHARED)

    def test_failed_acquire_all_reverts_shared_to_exclusive_upgrade(self):
        # regression: a rolled-back SHARED -> EXCLUSIVE upgrade stayed
        # EXCLUSIVE, blocking readers that the failed call never entitled
        # the transaction to block
        locks = LockManager()
        assert locks.try_acquire("t1", "a", LockMode.SHARED)
        locks.try_acquire("t2", "z", LockMode.EXCLUSIVE)
        ok = locks.try_acquire_all("t1", {"a": LockMode.EXCLUSIVE, "z": LockMode.SHARED})
        assert not ok
        # a is still held by t1, but back in SHARED mode: other readers join
        assert locks.holders("a") == {"t1"}
        assert locks.try_acquire("t3", "a", LockMode.SHARED)

    def test_failed_acquire_all_releases_only_new_keys(self):
        locks = LockManager()
        locks.try_acquire("t1", "a", LockMode.SHARED)
        locks.try_acquire("t2", "z", LockMode.EXCLUSIVE)
        ok = locks.try_acquire_all(
            "t1",
            {"a": LockMode.SHARED, "c": LockMode.EXCLUSIVE, "z": LockMode.EXCLUSIVE},
        )
        assert not ok
        # the freshly-taken c was rolled back, the pre-held a was not
        assert not locks.is_locked("c")
        assert locks.keys_held_by("t1") == {"a"}
        assert locks.holders("z") == {"t2"}

    def test_successful_acquire_all_keeps_upgrade(self):
        locks = LockManager()
        locks.try_acquire("t1", "a", LockMode.SHARED)
        assert locks.try_acquire_all("t1", {"a": LockMode.EXCLUSIVE, "b": LockMode.SHARED})
        # the upgrade sticks on success: readers are now locked out
        assert not locks.try_acquire("t2", "a", LockMode.SHARED)
        assert locks.keys_held_by("t1") == {"a", "b"}


class TestWriteAheadLog:
    def test_append_and_outcome(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        assert wal.outcome_of("t1") is None
        wal.append(COMMIT, "t1", writes={"x": 1})
        assert wal.outcome_of("t1") == COMMIT

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            WriteAheadLog().append("FLUSH", "t1")

    def test_in_doubt_transactions(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(PREPARE, "t2", writes={"y": 1})
        wal.append(ABORT, "t2")
        assert wal.in_doubt() == ["t1"]

    def test_replay_rebuilds_only_committed_state(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(COMMIT, "t1", writes={"x": 1})
        wal.append(PREPARE, "t2", writes={"x": 99, "y": 2})
        wal.append(ABORT, "t2")
        wal.append(PREPARE, "t3", writes={"z": 3})
        store = wal.replay()
        assert store.snapshot() == {"x": 1}

    def test_replay_uses_prepare_writes_when_commit_is_bare(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 7})
        wal.append(COMMIT, "t1")
        assert wal.replay().snapshot() == {"x": 7}

    def test_lsn_monotone_and_len(self):
        wal = WriteAheadLog()
        r1 = wal.append(PREPARE, "t1")
        r2 = wal.append(ABORT, "t1")
        assert (r1.lsn, r2.lsn) == (1, 2)
        assert len(wal) == 2
        assert [r.kind for r in wal.records_for("t1")] == [PREPARE, ABORT]

    # -- the edge cases the durability invariant leans on ----------------- #
    def test_replay_of_an_empty_log_is_an_empty_store(self):
        store = WriteAheadLog().replay()
        assert store.snapshot() == {}
        assert len(store) == 0
        assert WriteAheadLog().tear_final_record() is None

    def test_torn_final_commit_is_invisible_to_recovery(self):
        # a crash mid-append leaves a torn COMMIT tail: recovery must treat
        # the transaction as in doubt, not as committed
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(COMMIT, "t1", writes={"x": 1})
        wal.append(PREPARE, "t2", writes={"y": 2})
        torn = wal.tear_final_record()
        wal.append(COMMIT, "t2", writes={"y": 2})
        wal.tear_final_record()
        assert torn.torn
        assert wal.outcome_of("t1") == COMMIT
        assert wal.outcome_of("t2") is None
        assert wal.in_doubt() == []  # t2's PREPARE is torn too: never happened
        assert wal.replay().snapshot() == {"x": 1}
        assert wal.transaction_ids() == ["t1"]

    def test_torn_prepare_leaves_an_intact_earlier_prepare_in_doubt(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(PREPARE, "t2", writes={"y": 2})
        wal.tear_final_record()
        assert wal.in_doubt() == ["t1"]

    def test_replay_twice_is_idempotent_at_the_snapshot_level(self):
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(COMMIT, "t1", writes={"x": 1})
        wal.append(PREPARE, "t2", writes={"x": 5, "y": 2})
        wal.append(COMMIT, "t2", writes={"x": 5, "y": 2})
        store = wal.replay()
        once = store.snapshot()
        again = wal.replay(store).snapshot()
        assert once == again == {"x": 5, "y": 2}
        # and a fresh replay agrees with the incremental one
        assert wal.replay().snapshot() == once

    def test_torn_abort_means_locks_stay_with_an_in_doubt_transaction(self):
        # cross-layer: outcome_of drives the lock-safety invariant, so a torn
        # ABORT must flip the transaction back to in-doubt
        wal = WriteAheadLog()
        wal.append(PREPARE, "t1", writes={"x": 1})
        wal.append(ABORT, "t1")
        assert wal.outcome_of("t1") == ABORT
        wal.tear_final_record()
        assert wal.outcome_of("t1") is None
        assert wal.in_doubt() == ["t1"]


class TestTransactions:
    def test_participants_and_sets(self):
        txn = Transaction.of(
            "t1",
            [
                Operation.read(2, "a"),
                Operation.write(1, "b", 10),
                Operation.write(2, "c", 20),
            ],
        )
        assert txn.participants() == [1, 2]
        assert txn.read_set(2) == ["a"]
        assert txn.write_set() == {"b": 10, "c": 20}
        assert txn.write_set(1) == {"b": 10}
        assert txn.is_distributed()

    def test_single_partition_transaction(self):
        txn = Transaction.of("t1", [Operation.write(3, "k", 1)])
        assert not txn.is_distributed()
        assert txn.operations_for(3) == txn.operations

    def test_empty_transaction_rejected(self):
        with pytest.raises(ConfigurationError):
            Transaction.of("t1", [])

    def test_invalid_operations_rejected(self):
        with pytest.raises(ConfigurationError):
            Operation(kind="delete", partition=1, key="x")
        with pytest.raises(ConfigurationError):
            Operation(kind="write", partition=1, key="x")


class TestConflictDetector:
    def test_no_conflict_for_disjoint_footprints(self):
        detector = ConflictDetector()
        detector.begin("t1", reads={"a"}, writes={"b"})
        detector.begin("t2", reads={"c"}, writes={"d"})
        assert detector.vote("t1") == 1
        assert detector.vote("t2") == 1

    def test_write_write_conflict(self):
        detector = ConflictDetector()
        detector.begin("t1", reads=set(), writes={"x"})
        detector.begin("t2", reads=set(), writes={"x"})
        assert detector.conflicts_of("t1") == ["t2"]
        assert detector.vote("t1") == 0

    def test_read_write_conflict_both_directions(self):
        detector = ConflictDetector()
        detector.begin("t1", reads={"x"}, writes=set())
        detector.begin("t2", reads=set(), writes={"x"})
        assert detector.vote("t1") == 0
        assert detector.vote("t2") == 0

    def test_read_read_is_not_a_conflict(self):
        detector = ConflictDetector()
        detector.begin("t1", reads={"x"}, writes=set())
        detector.begin("t2", reads={"x"}, writes=set())
        assert detector.vote("t1") == 1

    def test_finish_clears_the_footprint(self):
        detector = ConflictDetector()
        detector.begin("t1", reads=set(), writes={"x"})
        detector.begin("t2", reads=set(), writes={"x"})
        detector.finish("t1")
        assert detector.vote("t2") == 1
        assert detector.inflight() == ["t2"]

    def test_unknown_transaction_has_no_conflicts(self):
        assert ConflictDetector().conflicts_of("ghost") == []
