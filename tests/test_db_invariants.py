"""Unit tests for the cluster-invariant battery (repro.db.invariants)."""

from __future__ import annotations

import pytest

from broken_protocols import SplitBrainCommit
from repro.db import ClusterConfig, run_cluster
from repro.db.invariants import (
    InvariantReport,
    check_atomicity,
    check_cluster,
    check_durability,
    check_lock_safety,
)
from repro.db.locks import LockManager, LockMode, _KeyLock
from repro.db.store import VersionedStore
from repro.db.wal import ABORT, COMMIT, PREPARE, WriteAheadLog
from repro.explore import CrashPoint
from repro.workloads import bank_transfer_workload


class FakePartition:
    """Just the three components the invariant checks read."""

    def __init__(self):
        self.wal = WriteAheadLog()
        self.store = VersionedStore()
        self.locks = LockManager()

    def commit(self, txn_id, writes):
        self.wal.append(PREPARE, txn_id, writes=writes)
        self.wal.append(COMMIT, txn_id, writes=writes)
        self.store.apply_many(writes, txn_id=txn_id)

    def abort(self, txn_id, writes):
        self.wal.append(PREPARE, txn_id, writes=writes)
        self.wal.append(ABORT, txn_id)


class TestAtomicity:
    def test_consistent_outcomes_pass(self):
        a, b = FakePartition(), FakePartition()
        a.commit("t1", {"x": 1})
        b.commit("t1", {"y": 2})
        a.abort("t2", {"x": 9})
        b.abort("t2", {"y": 9})
        assert check_atomicity({1: a, 2: b}) == []

    def test_commit_abort_split_is_reported(self):
        a, b = FakePartition(), FakePartition()
        a.commit("t1", {"x": 1})
        b.abort("t1", {"y": 2})
        violations = check_atomicity({1: a, 2: b})
        assert len(violations) == 1
        assert "'t1'" in violations[0]
        assert "committed on partitions [1]" in violations[0]
        assert "aborted on partitions [2]" in violations[0]

    def test_applied_without_commit_record_is_reported(self):
        a = FakePartition()
        a.abort("t1", {"x": 1})
        a.store.apply_many({"x": 1}, txn_id="t1")  # sneaky apply after abort
        violations = check_atomicity({1: a})
        assert any("without a COMMIT record" in v for v in violations)

    def test_in_doubt_alongside_commit_is_not_a_violation(self):
        # a crashed participant that never decided is in doubt, not conflicting
        a, b = FakePartition(), FakePartition()
        a.commit("t1", {"x": 1})
        b.wal.append(PREPARE, "t1", writes={"y": 2})
        assert check_atomicity({1: a, 2: b}) == []


class TestDurability:
    def test_replay_matching_store_passes(self):
        a = FakePartition()
        a.commit("t1", {"x": 1})
        a.commit("t2", {"x": 2, "y": 3})
        a.abort("t3", {"x": 99})
        assert check_durability({1: a}) == []

    def test_unlogged_write_is_reported(self):
        a = FakePartition()
        a.commit("t1", {"x": 1})
        a.store.apply("y", 42, txn_id=None)  # store mutation the WAL never saw
        violations = check_durability({1: a})
        assert len(violations) == 1
        assert "partition 1" in violations[0] and "['y']" in violations[0]

    def test_lost_write_is_reported(self):
        a = FakePartition()
        a.wal.append(PREPARE, "t1", writes={"x": 1})
        a.wal.append(COMMIT, "t1", writes={"x": 1})  # committed but never applied
        violations = check_durability({1: a})
        assert violations and "'x'" in violations[0]


class TestLockSafety:
    def test_clean_table_passes(self):
        a = FakePartition()
        a.commit("t1", {"x": 1})
        a.locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)  # undecided holder: fine
        a.wal.append(PREPARE, "t2", writes={"x": 5})
        assert check_lock_safety({1: a}) == []

    def test_locks_surviving_a_decision_are_reported(self):
        a = FakePartition()
        a.locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        a.commit("t1", {"x": 1})  # decided, but the lock was never released
        violations = check_lock_safety({1: a})
        assert len(violations) == 1
        assert "after COMMIT" in violations[0] and "'x'" in violations[0]

    def test_two_exclusive_holders_are_reported(self):
        a = FakePartition()
        # corrupt the table directly: the public API cannot produce this state
        a.locks._locks["x"] = _KeyLock(
            mode=LockMode.EXCLUSIVE, holders={"t1", "t2"}
        )
        violations = check_lock_safety({1: a})
        assert violations and "EXCLUSIVE with 2 holders" in violations[0]

    def test_mode_of_accessor(self):
        locks = LockManager()
        assert locks.mode_of("x") is None
        locks.try_acquire("t1", "x", LockMode.SHARED)
        assert locks.mode_of("x") == LockMode.SHARED
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.mode_of("x") == LockMode.EXCLUSIVE
        locks.release_all("t1")
        assert locks.mode_of("x") is None


class TestInvariantReport:
    def test_broken_names_in_order(self):
        report = InvariantReport(
            atomicity=False, durability=True, lock_safety=False,
            violations=["atomicity: x", "lock-safety: y"],
        )
        assert not report.holds
        assert report.broken() == ("atomicity", "lock-safety")
        assert "atomicity: x" in report.describe()

    def test_clean_report(self):
        report = InvariantReport()
        assert report.holds and report.broken() == ()
        assert report.describe() == "all cluster invariants hold"


class TestClusterIntegration:
    def test_every_real_cluster_run_carries_a_clean_battery(self):
        workload = bank_transfer_workload(num_transfers=5, num_partitions=3, seed=4)
        for protocol in ("2PC", "INBAC", "PaxosCommit"):
            report = run_cluster(
                ClusterConfig(num_partitions=3, commit_protocol=protocol),
                workload.transactions,
            )
            assert report.invariants is not None
            assert report.invariants.holds, report.invariants.violations

    def test_crashed_partition_still_passes_the_battery(self):
        # a crash freezes the partition's WAL and store together, so replay
        # still reconstructs exactly its committed prefix
        from repro.sim.faults import FaultPlan

        workload = bank_transfer_workload(num_transfers=5, num_partitions=3, seed=4)
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol="INBAC",
                fault_plan=FaultPlan.crash(2, at=8.0),
                max_time=400.0,
            ),
            workload.transactions,
        )
        assert report.execution_class == "crash-failure"
        assert report.invariants.holds, report.invariants.violations

    def test_split_brain_fixture_breaks_atomicity_under_a_crash(self):
        # positive control: the broken coordinator commits on one partition
        # and aborts on another once a participant crash makes a vote go
        # missing — the battery must say so, naming the transaction.  The
        # transactions need >= 3 participants: with two, the buggy second
        # outcome only ever reaches the crashed process.
        from repro.workloads import uniform_workload

        workload = uniform_workload(
            4, num_partitions=3, participants_per_txn=3, seed=1
        )
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol=SplitBrainCommit,
                controller=CrashPoint(pid=2, point=4),
                max_time=400.0,
            ),
            workload.transactions,
        )
        assert report.invariants is not None
        assert not report.invariants.atomicity
        assert "atomicity" in report.invariants.broken()
        assert any("committed on partitions" in v for v in report.invariants.violations)
        # the run records what the controller did, replayably
        assert report.schedule_decisions
        assert report.trace_fingerprint is not None

    def test_blocked_partitions_reported_in_doubt(self):
        # crash a participant early: 2PC instances whose embedded coordinator
        # died leave the surviving participants prepared-but-undecided, and
        # the report names those partitions and transactions
        from repro.workloads import uniform_workload

        workload = uniform_workload(
            4, num_partitions=3, participants_per_txn=3, seed=1
        )
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol="2PC",
                controller=CrashPoint(pid=1, point=1),
                max_time=400.0,
            ),
            workload.transactions,
        )
        assert report.incomplete > 0
        assert report.in_doubt_by_partition
        for pid, txns in report.in_doubt_by_partition.items():
            assert 1 <= pid <= 3 and txns
        # blocked, but safe: the battery still holds
        assert report.invariants.holds, report.invariants.violations

    def test_pending_transactions_reported_when_client_is_crashed(self):
        workload = bank_transfer_workload(num_transfers=3, num_partitions=3, seed=1)
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol="2PC",
                controller=CrashPoint(pid=4, point=0),  # pid 4 = the client
                max_time=200.0,
            ),
            workload.transactions,
        )
        # the client died before submitting anything: no outcome records exist
        # (so `incomplete` sees nothing), but pending_transactions still
        # reports the whole workload as unfinished
        assert report.incomplete == 0
        assert report.pending_transactions == [t.txn_id for t in workload.transactions]
        # safety is untouched by losing the client
        assert report.invariants.holds, report.invariants.violations
