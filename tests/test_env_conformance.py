"""The ProcessEnv contract, executed against both runtimes.

Three layers:

* every conformance scenario passes on the simulator harness (the reference)
  and on the asyncio harness — the same probe processes, the same checkers;
* the suite itself is falsifiable: an inert environment that ignores timers
  and accepts double decides fails multiple scenarios;
* sim-vs-runtime agreement: every registered commit protocol, run unmodified
  and fault-free on both runtimes with the same votes, reaches the same
  decision.
"""

from __future__ import annotations

import pytest

from repro.env.conformance import (
    SCENARIOS,
    HarnessResult,
    SimHarness,
    run_conformance,
    run_scenario,
)
from repro.protocols.base import ABORT, COMMIT
from repro.protocols.registry import get_protocol, protocol_names
from repro.runtime import AsyncHarness, run_commit

from conftest import run_protocol

HARNESSES = {
    "sim": lambda: SimHarness(),
    "asyncio": lambda: AsyncHarness(),
}


def _harness_params():
    # the asyncio harness runs on the wall clock: mark it `runtime` so the
    # SIGALRM guard covers it
    return [
        pytest.param("sim", id="sim"),
        pytest.param("asyncio", id="asyncio", marks=pytest.mark.runtime),
    ]


# --------------------------------------------------------------------------- #
# the contract holds on both runtimes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("harness_name", _harness_params())
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_scenario_passes(harness_name, scenario):
    harness = HARNESSES[harness_name]()
    assert run_scenario(harness, scenario) == []


@pytest.mark.runtime
def test_full_conformance_both_runtimes():
    assert run_conformance(SimHarness()) == []
    assert run_conformance(AsyncHarness()) == []


# --------------------------------------------------------------------------- #
# the suite can fail: an environment that breaks the contract is caught
# --------------------------------------------------------------------------- #
class _InertEnv:
    """Deliberately broken: timers never fire, decide never raises."""

    def __init__(self, decisions, pid):
        self._decisions = decisions
        self._pid = pid

    def send(self, dst, payload, module="main"):
        pass

    def set_timer(self, at_units, name="timer"):
        pass

    def cancel_timer(self, name="timer"):
        pass

    def decide(self, value):
        self._decisions[self._pid] = value  # silently accepts duplicates

    def now(self):
        return 0.0


class _InertHarness:
    name = "inert"
    tolerance_units = 0.0

    def run(self, factories, n, f, *, duration_units, proposals=None):
        decisions = {}
        processes = {}
        for pid in range(1, n + 1):
            factory = factories[pid]
            processes[pid] = factory(pid, n, f, _InertEnv(decisions, pid))
        for pid in range(1, n + 1):
            processes[pid].on_start()
        return HarnessResult(processes=processes, decisions=decisions)


def test_conformance_suite_catches_a_broken_environment():
    failures = run_conformance(_InertHarness())
    text = "\n".join(failures)
    # no timer ever fires: rearm, cancel-sentinel and monotonic all complain
    assert "timer-rearm" in text
    assert "sentinel" in text
    # double decide was silently accepted and the last value stuck
    assert "decide-once" in text


# --------------------------------------------------------------------------- #
# sim-vs-runtime agreement: every protocol, unmodified, fault-free
# --------------------------------------------------------------------------- #
AGREEMENT_N, AGREEMENT_F = 4, 1


def _sim_decision(name: str, votes):
    info = get_protocol(name)
    result = run_protocol(info.cls, AGREEMENT_N, AGREEMENT_F, votes)
    values = {rec.value for rec in result.trace.decisions.values()}
    assert len(values) == 1, f"sim split decision for {name}: {values}"
    return next(iter(values))


@pytest.mark.runtime
@pytest.mark.parametrize("name", protocol_names())
@pytest.mark.parametrize(
    "votes", [(1, 1, 1, 1), (1, 0, 1, 1)], ids=["all-yes", "one-no"]
)
def test_sim_and_runtime_agree(name, votes):
    expected = _sim_decision(name, list(votes))
    # The timer-driven protocols terminate only while the synchronous-model
    # assumption (delay <= 1 U) holds; a long event-loop stall on a loaded
    # host violates it, and the paper then permits non-termination.  The
    # harness answer to that wall-clock reality is a bounded retry, not a
    # wider timeout.
    for _ in range(3):
        result = run_commit(name, AGREEMENT_N, AGREEMENT_F, list(votes))
        if not result.timed_out:
            break
    assert not result.timed_out, f"{name} timed out on the asyncio runtime"
    assert result.errors == []
    assert result.all_agree, f"{name} split decision: {result.decisions}"
    assert result.decision == expected
    # fault-free all-yes must commit; any no-vote must abort (validity)
    if all(votes):
        assert result.decision == COMMIT
    else:
        assert result.decision == ABORT
    assert len(result.decisions) == AGREEMENT_N
