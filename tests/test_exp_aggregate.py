"""Tests for the streaming aggregate-only sweep mode (:mod:`repro.exp`).

The contract pillars:

* **streaming == in-memory** — ``mode="aggregate"`` produces byte-identical
  aggregate tables (rows, fingerprints, robustness summaries) to the
  ``mode="full"`` path on the same grid and seeds;
* **parallel == serial** in aggregate mode, exactly as in full mode;
* **bounded memory** — the streaming path never retains trial results (each
  one is garbage-collected before the next fold) and a ~50k-trial sweep runs
  through per-cell accumulators only;
* **cluster workload axis** — :mod:`repro.db` transaction batteries run as
  grid trials and aggregate like any other coordinate.
"""

from __future__ import annotations

import weakref

import pytest

from repro.db import ClusterConfig, run_cluster
from repro.errors import ConfigurationError
from repro.exp import GridSpec, SweepAggregate, run_sweep
from repro.sim.faults import FaultPlan
from repro.sim.network import UniformDelay
from repro.workloads import bank_transfer_workload


def stochastic_grid(seeds=(0, 1, 2)):
    """A grid whose aggregates depend on real latency distributions."""
    return GridSpec(
        protocols=["INBAC", "2PC", "PaxosCommit"],
        systems=[(4, 1), (5, 2)],
        delays=[None, ("uniform", lambda seed: UniformDelay(0.2, 1.0, seed=seed))],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.0))],
        seeds=list(seeds),
    )


# --------------------------------------------------------------------------- #
# streaming == in-memory
# --------------------------------------------------------------------------- #
class TestStreamingEquivalence:
    def test_aggregate_rows_byte_identical_to_full_mode(self):
        full = run_sweep(stochastic_grid(), workers=1)
        agg = run_sweep(stochastic_grid(), workers=1, mode="aggregate")
        assert isinstance(agg, SweepAggregate)
        assert agg.aggregate_rows() == full.aggregate_rows()
        assert agg.aggregate_fingerprint() == full.aggregate_fingerprint()

    def test_robustness_rows_identical_to_full_mode(self):
        full = run_sweep(stochastic_grid(), workers=1)
        agg = run_sweep(stochastic_grid(), workers=1, mode="aggregate")
        assert agg.robustness_rows() == full.robustness_rows()

    def test_counts_and_cells(self):
        grid = stochastic_grid()
        agg = run_sweep(grid, workers=1, mode="aggregate")
        assert len(agg) == grid.size
        # one accumulator per (protocol, system, delay, fault) cell; the
        # seed axis is folded into the cells rather than multiplying them
        assert agg.cell_count == grid.size // len(grid.seeds)
        assert agg.error_count == 0 and agg.sample_errors == []

    def test_error_trials_are_counted_and_sampled(self):
        grid = GridSpec(
            protocols=["INBAC"],
            systems=[(5, 2)],
            votes=[("truncated", [1, 1])],  # wrong arity: every trial fails
            seeds=[0, 1, 2],
        )
        agg = run_sweep(grid, workers=1, mode="aggregate")
        full = run_sweep(grid, workers=1)
        assert agg.error_count == 3
        assert agg.sample_errors and "ConfigurationError" in agg.sample_errors[0]
        # failed trials aggregate exactly as the in-memory path aggregates them
        assert agg.aggregate_rows() == full.aggregate_rows()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(stochastic_grid(), workers=1, mode="streaming")

    def test_parallel_aggregate_reproduces_serial_exactly(self):
        serial = run_sweep(stochastic_grid(), workers=1, mode="aggregate")
        parallel = run_sweep(stochastic_grid(), workers=3, mode="aggregate")
        assert serial.meta["mode"] == "serial"
        if parallel.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert parallel.aggregate_rows() == serial.aggregate_rows()
        assert parallel.aggregate_fingerprint() == serial.aggregate_fingerprint()
        assert parallel.robustness_rows() == serial.robustness_rows()

    def test_meta_records_streaming_mode(self):
        agg = run_sweep(stochastic_grid(seeds=(0,)), workers=1, mode="aggregate")
        assert agg.meta["sweep_mode"] == "aggregate"
        assert agg.meta["trials"] == stochastic_grid(seeds=(0,)).size
        full = run_sweep(stochastic_grid(seeds=(0,)), workers=1)
        assert full.meta["sweep_mode"] == "full"


# --------------------------------------------------------------------------- #
# bounded memory
# --------------------------------------------------------------------------- #
class _RetentionProbe:
    """Reducer that proves each TrialResult is dropped before the next fold."""

    def __init__(self):
        self.folded = 0
        self.previous_ref = None
        self.leaked = 0

    def fold(self, trial):
        if self.previous_ref is not None and self.previous_ref() is not None:
            self.leaked += 1
        self.previous_ref = weakref.ref(trial)
        self.folded += 1


class TestBoundedMemory:
    def test_streaming_does_not_retain_trial_results(self):
        # CPython refcounting frees each result as soon as the engine drops
        # it; if the serial streaming path kept a hidden list, every previous
        # weakref would still be alive at the next fold
        probe = _RetentionProbe()
        grid = GridSpec(protocols=["INBAC", "2PC"], systems=[(5, 2)], seeds=range(10))
        returned = run_sweep(grid, workers=1, reducer=probe)
        assert returned is probe
        assert probe.folded == grid.size
        assert probe.leaked == 0

    def test_custom_reducer_gets_meta(self):
        probe = _RetentionProbe()
        probe.meta = {}
        run_sweep(GridSpec(protocols=["2PC"], systems=[(4, 1)]), workers=1, reducer=probe)
        assert probe.meta["sweep_mode"] == "aggregate"

    def test_50k_trial_sweep_in_bounded_memory(self):
        # the acceptance-scale smoke: >= 50k trials, no per-trial storage —
        # the aggregate holds one accumulator for the single grid cell, and
        # the latency digest stays tiny because FixedDelay quantises latencies
        grid = GridSpec(protocols=["0NBAC"], systems=[(2, 1)], seeds=range(50_000))
        agg = run_sweep(grid, mode="aggregate")
        assert len(agg) == 50_000
        assert agg.error_count == 0
        assert agg.cell_count == 1
        assert not hasattr(agg, "trials")
        (row,) = agg.aggregate_rows()
        assert row["trials"] == 50_000
        assert row["commit_rate"] == 1.0
        assert row["properties"] == "AVT"
        # exact-digest percentiles over 50k latencies from O(1) distinct values
        cell = next(iter(agg._cells.values()))
        assert len(cell.latency_counts) <= 4


# --------------------------------------------------------------------------- #
# cluster workload axis
# --------------------------------------------------------------------------- #
class TestClusterWorkloadAxis:
    def workload(self):
        return bank_transfer_workload(num_transfers=6, num_partitions=4, seed=13)

    def cluster_grid(self, **overrides):
        params = dict(
            protocols=["2PC", "INBAC"],
            systems=[(4, 1)],
            workloads=[("bank", self.workload())],
            seeds=[7],
            max_time=2000.0,
        )
        params.update(overrides)
        return GridSpec(**params)

    def test_cluster_trials_match_direct_run_cluster(self):
        sweep = run_sweep(self.cluster_grid(), workers=1)
        assert not sweep.errors(), [t.error for t in sweep.errors()]
        for trial in sweep.trials:
            config = ClusterConfig(
                num_partitions=4,
                commit_protocol=trial.protocol,
                commit_f=1,
                seed=trial.derived_seed,
            )
            report = run_cluster(config, self.workload().transactions)
            assert trial.extra["committed"] == report.committed
            assert trial.extra["mean_latency"] == report.mean_commit_latency()
            assert trial.messages_total == report.messages_total
            assert trial.termination and trial.extra["incomplete"] == 0

    def test_cluster_trial_shape(self):
        sweep = run_sweep(self.cluster_grid(protocols=["INBAC"]), workers=1)
        (trial,) = sweep.trials
        assert trial.workload_label == "bank"
        assert trial.execution_class == "failure-free"
        # one decision entry per transaction, all commits
        assert len(trial.decisions) == 6
        assert trial.all_committed
        assert trial.decision_latencies == sorted(trial.decision_latencies)
        assert trial.last_decision == trial.decision_latencies[-1]

    def test_cluster_aggregate_mode_matches_full(self):
        full = run_sweep(self.cluster_grid(), workers=1)
        agg = run_sweep(self.cluster_grid(), workers=1, mode="aggregate")
        assert agg.aggregate_rows() == full.aggregate_rows()
        assert agg.aggregate_fingerprint() == full.aggregate_fingerprint()
        # the workload is a first-class coordinate of the aggregate rows
        assert {row["workload"] for row in agg.aggregate_rows()} == {"bank"}

    def test_workload_axis_multiplies_grid_size(self):
        two = self.cluster_grid(
            workloads=[("bank", self.workload()), ("bank-2", self.workload())]
        )
        assert two.size == 2 * self.cluster_grid().size
        labels = {t.workload_label for t in two.trials()}
        assert labels == {"bank", "bank-2"}
        # different workload labels derive different trial seeds
        seeds = {t.workload_label: t.derived_seed for t in two.trials() if t.protocol.label == "2PC"}
        assert seeds["bank"] != seeds["bank-2"]

    def test_workload_factory_receives_n_and_seed(self):
        seen = []

        def factory(n, seed):
            seen.append((n, seed))
            return self.workload().transactions

        sweep = run_sweep(
            self.cluster_grid(protocols=["2PC"], workloads=[("factory", factory)]),
            workers=1,
        )
        assert not sweep.errors()
        assert seen == [(4, sweep.trials[0].derived_seed)]

    def test_bad_workload_axis_value_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["2PC"], workloads=[42])

    def test_workload_with_multi_valued_votes_axis_rejected(self):
        # votes come from lock conflicts in cluster trials; a votes axis
        # would replay identical runs under different labels
        with pytest.raises(ConfigurationError, match="votes"):
            self.cluster_grid(votes=["all-yes", "all-no"])

    def test_cluster_message_accounting_distinguishes_sent_from_received(self):
        sweep = run_sweep(self.cluster_grid(protocols=["INBAC"]), workers=1)
        (trial,) = sweep.trials
        # the received-by-last-decision count excludes post-decision traffic
        # (DONE acks, protocol help rounds), so it is strictly below total
        assert trial.messages_until_last_decision < trial.messages_total
        assert trial.messages_until_last_decision > 0
